"""Documentation checker: links, paths, CLI invocations, docstrings.

Run from the repository root (CI runs it in the docs job)::

    python -m scripts.check_docs

Checks, over ``README.md``, ``ROADMAP.md`` and every ``docs/*.md``:

1. relative markdown links ``[text](target)`` point at files/directories
   that exist (anchors are stripped; external ``http(s)://`` links are
   not fetched);
2. repository paths mentioned in prose or tables — ``benchmarks/*.py``,
   ``examples/*.py``, ``tests/**.py``, ``docs/*.md``, ``scripts/*.py`` —
   exist;
3. absolute filesystem paths (``/root/...``, ``/home/...``, ``/opt/...``,
   ``/tmp/...``) mentioned in the documents exist on this machine —
   references to container-local material that has since been removed
   (e.g. a retrieval scratch directory) are dangling pointers for every
   reader and fail the check;
4. documented CLI entry points parse: every ``python -m repro.eval ...``
   invocation found in the documents is validated against the real
   argument parser (no network, no training — parse only);

and, over the public API:

5. every public symbol exported from the ``repro.faults``, ``repro.eval``
   and ``repro.tensor`` package ``__init__`` (their ``__all__``) that is
   a class, function, or module carries a docstring — the docs suite
   links into these namespaces, so an undocumented export is a
   documentation failure, not just a style nit.  Plain data constants
   (tuples like ``EXECUTORS``, dicts like ``PRESETS``) are exempt:
   they cannot carry their own ``__doc__``.

Exits non-zero listing every failure, so CI catches stale docs the moment
a file moves, a flag is renamed, or an export loses its docstring.
"""

from __future__ import annotations

import inspect
import pathlib
import re
import shlex
import sys
from typing import List

ROOT = pathlib.Path(__file__).resolve().parents[1]

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
PATH_RE = re.compile(
    r"\b((?:benchmarks|examples|tests|docs|scripts)/[\w./-]+?\.(?:py|md))\b"
)
#: Absolute paths outside the repository (container-local directories a
#: doc might dangle at after the material is removed).  ``/tmp`` is
#: included so tests can exercise the check against real paths.
ABS_PATH_RE = re.compile(
    r"(/(?:root|home|opt|srv|mnt|data|tmp)/[\w][\w./*<>-]*)"
)
CLI_RE = re.compile(r"python -m repro\.eval[^\n`|]*")

#: Public namespaces whose exports must be documented (check 4).
AUDITED_MODULES = ("repro.faults", "repro.eval", "repro.tensor")


def _rel(doc: pathlib.Path) -> str:
    """Repo-relative label for failure messages (plain path outside ROOT)."""
    try:
        return str(doc.relative_to(ROOT))
    except ValueError:
        return str(doc)


def _doc_files() -> List[pathlib.Path]:
    docs = [ROOT / "README.md", ROOT / "ROADMAP.md"]
    docs.extend(sorted((ROOT / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def _check_links(doc: pathlib.Path, text: str) -> List[str]:
    errors = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (doc.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{_rel(doc)}: broken link -> {target}")
    return errors


def _check_paths(doc: pathlib.Path, text: str) -> List[str]:
    errors = []
    for path in set(PATH_RE.findall(text)):
        if "*" in path or "<" in path:
            continue
        if not (ROOT / path).exists():
            errors.append(f"{_rel(doc)}: missing path -> {path}")
    return errors


def _check_external_paths(doc: pathlib.Path, text: str) -> List[str]:
    """Flag absolute filesystem references that do not exist (check 3)."""
    errors = []
    cleaned_paths = {
        path.rstrip(".,;:") for path in ABS_PATH_RE.findall(text)
    }
    for cleaned in sorted(cleaned_paths):
        if "*" in cleaned or "<" in cleaned:
            continue  # glob/placeholder, not a concrete reference
        if not pathlib.Path(cleaned).exists():
            errors.append(
                f"{_rel(doc)}: dangling filesystem path -> {cleaned}"
            )
    return errors


def _check_cli_commands(doc: pathlib.Path, text: str) -> List[str]:
    sys.path.insert(0, str(ROOT / "src"))
    try:
        from repro.eval.cli import build_parser
    finally:
        sys.path.pop(0)
    parser = build_parser()
    errors = []
    # Join backslash line continuations first, so flags on continuation
    # lines are part of the matched command and get validated too.
    joined = re.sub(r"\\\s*\n\s*", " ", text)
    for command in CLI_RE.findall(joined):
        if "..." in command:  # schematic example, not a runnable invocation
            continue
        argv = shlex.split(command)[3:]  # drop python -m repro.eval
        try:
            parser.parse_args(argv)
        except SystemExit:
            errors.append(
                f"{_rel(doc)}: CLI invocation does not parse -> "
                f"{command.strip()}"
            )
    return errors


def _module_docstring_errors(module) -> List[str]:
    """Missing-docstring failures for one imported package namespace."""
    errors = []
    name = module.__name__
    exported = getattr(module, "__all__", None)
    if exported is None:
        return [f"{name}: public namespace has no __all__ to audit"]
    for symbol in exported:
        obj = getattr(module, symbol, None)
        if obj is None and symbol not in vars(module):
            errors.append(f"{name}.{symbol}: listed in __all__ but missing")
            continue
        if not (
            inspect.isclass(obj)
            or inspect.isroutine(obj)
            or inspect.ismodule(obj)
        ):
            continue  # data constants cannot carry their own __doc__
        doc = inspect.getdoc(obj)
        if not doc or not doc.strip():
            kind = (
                "class" if inspect.isclass(obj)
                else "module" if inspect.ismodule(obj)
                else "function"
            )
            errors.append(f"{name}.{symbol}: public {kind} has no docstring")
    return errors


def _check_docstrings(module_names=AUDITED_MODULES) -> List[str]:
    import importlib

    sys.path.insert(0, str(ROOT / "src"))
    try:
        errors: List[str] = []
        for name in module_names:
            errors += _module_docstring_errors(importlib.import_module(name))
        return errors
    finally:
        sys.path.pop(0)


def main() -> int:
    failures: List[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        failures += _check_links(doc, text)
        failures += _check_paths(doc, text)
        failures += _check_external_paths(doc, text)
        failures += _check_cli_commands(doc, text)
    failures += _check_docstrings()
    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(
        f"check_docs: {len(_doc_files())} documents OK, "
        f"{len(AUDITED_MODULES)} public namespaces documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
