"""Repository maintenance scripts (run as ``python -m scripts.<name>``)."""
