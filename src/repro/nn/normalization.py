"""Conventional normalization layers (Section II-B of the paper).

These are the layers the proposed inverted normalization replaces.  They all
follow the conventional order: normalize first, then apply the learnable
affine transformation ``y_hat * gamma + beta``.

Shapes follow the computer-vision convention ``(N, C, H, W)`` (or ``(N, C,
L)`` for 1-D): BatchNorm normalizes over ``(N, H, W)`` per channel with
running statistics; LayerNorm over ``(C, H, W)`` per instance; InstanceNorm
over ``(H, W)`` per instance and channel; GroupNorm over channel groups per
instance.

Under an active chip batch (:func:`repro.tensor.chipbatch.chip_batch`, the
campaign engine's ``batched`` executor) every activation carries a leading
chip axis, so the channel axis shifts from 1 to 2 and per-instance
statistics are computed per (chip, instance).  Statistics never mix across
chips — each chip's slice normalizes exactly as it would serially.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops
from ..tensor.chipbatch import chip_axes
from .module import Module, Parameter


def normalize(x: Tensor, axes: Tuple[int, ...], eps: float) -> Tensor:
    """``(x - mean) / sqrt(var + eps)`` over ``axes`` (differentiable)."""
    mu = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    return (x - mu) / ops.sqrt(var + eps)


def _affine_shape(ndim: int, channels: int) -> Tuple[int, ...]:
    """Broadcastable per-channel parameter shape for an ndim input."""
    shape = [1] * ndim
    shape[chip_axes(1)] = channels
    return tuple(shape)


class _AffineNormBase(Module):
    """Shared affine-parameter handling for conventional norm layers."""

    def __init__(self, num_features: int, eps: float, affine: bool):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_features))
            self.bias = Parameter(np.zeros(num_features))

    def _apply_affine(self, x_hat: Tensor) -> Tensor:
        if not self.affine:
            return x_hat
        shape = _affine_shape(x_hat.ndim, self.num_features)
        return x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, affine={self.affine}"


class BatchNorm2d(_AffineNormBase):
    """Batch normalization over ``(N, H, W)`` with running statistics."""

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
        affine: bool = True,
    ):
        super().__init__(num_features, eps, affine)
        self.momentum = momentum
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _stat_axes(self, ndim: int) -> Tuple[int, ...]:
        return (0,) + tuple(range(2, ndim))

    def forward(self, x: Tensor) -> Tensor:
        axes = self._stat_axes(x.ndim)
        shape = _affine_shape(x.ndim, self.num_features)
        if self.training:
            mu = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self._buffers["running_mean"] = (
                (1 - m) * self._buffers["running_mean"] + m * mu.data.reshape(-1)
            )
            self._buffers["running_var"] = (
                (1 - m) * self._buffers["running_var"] + m * var.data.reshape(-1)
            )
            x_hat = (x - mu) / ops.sqrt(var + self.eps)
        else:
            mu = self._buffers["running_mean"].reshape(shape)
            var = self._buffers["running_var"].reshape(shape)
            x_hat = (x - mu) / np.sqrt(var + self.eps)
        return self._apply_affine(x_hat)


class BatchNorm1d(BatchNorm2d):
    """Batch normalization for ``(N, C)`` or ``(N, C, L)`` inputs."""

    def _stat_axes(self, ndim: int) -> Tuple[int, ...]:
        return (0,) if ndim == 2 else (0,) + tuple(range(2, ndim))


class LayerNorm(_AffineNormBase):
    """Per-instance normalization over all non-batch dimensions.

    Matches the paper's usage for CNNs: every instance's whole feature
    volume ``(C, H, W)`` is standardized, with per-channel affine
    parameters.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = True):
        super().__init__(num_features, eps, affine)

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(chip_axes(1), x.ndim))
        x_hat = normalize(x, axes, self.eps)
        return self._apply_affine(x_hat)


class InstanceNorm2d(_AffineNormBase):
    """Per-instance, per-channel normalization over spatial dims."""

    def __init__(self, num_features: int, eps: float = 1e-5, affine: bool = True):
        super().__init__(num_features, eps, affine)

    def forward(self, x: Tensor) -> Tensor:
        axes = tuple(range(chip_axes(2), x.ndim))
        x_hat = normalize(x, axes, self.eps)
        return self._apply_affine(x_hat)


class GroupNorm(_AffineNormBase):
    """Normalization over channel groups per instance.

    Parameters
    ----------
    num_groups:
        Number of channel groups; ``num_channels`` must divide evenly.
    """

    def __init__(
        self,
        num_groups: int,
        num_channels: int,
        eps: float = 1e-5,
        affine: bool = True,
    ):
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels={num_channels} not divisible by "
                f"num_groups={num_groups}"
            )
        super().__init__(num_channels, eps, affine)
        self.num_groups = num_groups

    def forward(self, x: Tensor) -> Tensor:
        c_axis = chip_axes(1)
        lead, c = x.shape[:c_axis], x.shape[c_axis]
        spatial = x.shape[c_axis + 1 :]
        grouped = x.reshape(*lead, self.num_groups, c // self.num_groups, *spatial)
        axes = tuple(range(c_axis + 1, grouped.ndim))
        x_hat = normalize(grouped, axes, self.eps).reshape(*lead, c, *spatial)
        return self._apply_affine(x_hat)

    def extra_repr(self) -> str:
        return (
            f"num_groups={self.num_groups}, num_channels={self.num_features}, "
            f"eps={self.eps}, affine={self.affine}"
        )
