"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality (last axis of the input).
    bias:
        Include the additive bias term (default True).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, gain=1.0)
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
