"""Convolutional layer modules wrapping the tensor-level kernels."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from ..tensor import conv as F
from . import init
from .module import Module, Parameter


class Conv2d(Module):
    """2-D convolution over NCHW tensors.

    Weight layout ``(out_channels, in_channels, kh, kw)``; He-initialized.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple,
        stride: int | tuple = 1,
        padding: int | tuple = 0,
        bias: bool = True,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kh, kw)))
        init.kaiming_normal_(self.weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None}"
        )


class Conv1d(Module):
    """1-D convolution over NCL tensors (audio / sequence front-ends)."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size)))
        init.kaiming_normal_(self.weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}"
        )


class ConvTranspose2d(Module):
    """2-D transposed convolution (up-sampling path of U-Net).

    Weight layout ``(in_channels, out_channels, kh, kw)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple,
        stride: int | tuple = 1,
        bias: bool = True,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.weight = Parameter(np.empty((in_channels, out_channels, kh, kw)))
        init.kaiming_normal_(self.weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv_transpose2d(x, self.weight, self.bias, stride=self.stride)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}"
        )
