"""Activation-function layer modules."""

from __future__ import annotations

from ..tensor import Tensor, ops
from .module import Module


class ReLU(Module):
    """Rectified linear unit: ``max(x, 0)``."""
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class LeakyReLU(Module):
    """Leaky ReLU: ``x`` if positive, else ``negative_slope * x``."""
    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return ops.leaky_relu(x, self.negative_slope)

    def extra_repr(self) -> str:
        return f"negative_slope={self.negative_slope}"


class Tanh(Module):
    """Hyperbolic-tangent activation."""
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sigmoid(Module):
    """Logistic activation (numerically stable)."""
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class HardTanh(Module):
    """Clamp to ``[min_val, max_val]`` with pass-through gradient."""
    def __init__(self, min_val: float = -1.0, max_val: float = 1.0):
        super().__init__()
        self.min_val = min_val
        self.max_val = max_val

    def forward(self, x: Tensor) -> Tensor:
        return ops.hardtanh(x, self.min_val, self.max_val)

    def extra_repr(self) -> str:
        return f"min_val={self.min_val}, max_val={self.max_val}"


class Softmax(Module):
    """Softmax over ``axis`` (stable, max-shifted)."""
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return ops.softmax(x, axis=self.axis)


class LogSoftmax(Module):
    """Log-softmax over ``axis`` (stable, max-shifted)."""
    def __init__(self, axis: int = -1):
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return ops.log_softmax(x, axis=self.axis)
