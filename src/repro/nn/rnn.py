"""Recurrent layers: LSTM cell and multi-layer LSTM.

Built for the paper's autoregressive CO2 forecasting task (two LSTM layers
followed by a classifier/regressor layer).  Gate weights use the standard
fused layout: ``weight_ih`` has shape ``(4 * hidden, input)`` with gate order
``[input, forget, cell, output]``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops, stack_tensors
from ..tensor.random import get_rng
from .module import Module, ModuleList, Parameter


class LSTMCell(Module):
    """Single LSTM step: ``(x_t, (h, c)) -> (h', c')``."""

    def __init__(self, input_size: int, hidden_size: int):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        rng = get_rng()
        self.weight_ih = Parameter(
            rng.uniform(-bound, bound, size=(4 * hidden_size, input_size))
        )
        self.weight_hh = Parameter(
            rng.uniform(-bound, bound, size=(4 * hidden_size, hidden_size))
        )
        self.bias_ih = Parameter(np.zeros(4 * hidden_size))
        self.bias_hh = Parameter(np.zeros(4 * hidden_size))
        # Initialize forget-gate bias to 1 (standard trick for gradient flow).
        self.bias_ih.data[hidden_size : 2 * hidden_size] = 1.0

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        h, c = state
        gates = x @ self.weight_ih.T + self.bias_ih + h @ self.weight_hh.T + self.bias_hh
        hs = self.hidden_size
        i = ops.sigmoid(gates[:, 0 * hs : 1 * hs])
        f = ops.sigmoid(gates[:, 1 * hs : 2 * hs])
        g = ops.tanh(gates[:, 2 * hs : 3 * hs])
        o = ops.sigmoid(gates[:, 3 * hs : 4 * hs])
        c_new = f * c + i * g
        h_new = o * ops.tanh(c_new)
        return h_new, c_new

    def extra_repr(self) -> str:
        return f"input_size={self.input_size}, hidden_size={self.hidden_size}"


class LSTM(Module):
    """Multi-layer LSTM over batch-first sequences ``(n, t, features)``.

    Returns the full output sequence of the last layer plus the final
    ``(h, c)`` of every layer.
    """

    def __init__(self, input_size: int, hidden_size: int, num_layers: int = 1):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells: List[LSTMCell] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size))
        self.cells = ModuleList(cells)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        n, t = x.shape[0], x.shape[1]
        if state is None:
            state = [
                (
                    Tensor(np.zeros((n, self.hidden_size))),
                    Tensor(np.zeros((n, self.hidden_size))),
                )
                for _ in range(self.num_layers)
            ]
        outputs: List[Tensor] = []
        for step in range(t):
            inp = x[:, step, :]
            new_state: List[Tuple[Tensor, Tensor]] = []
            for layer, cell in enumerate(self.cells):
                h, c = cell(inp, state[layer])
                new_state.append((h, c))
                inp = h
            state = new_state
            outputs.append(inp)
        return stack_tensors(outputs, axis=1), state

    def extra_repr(self) -> str:
        return (
            f"input_size={self.input_size}, hidden_size={self.hidden_size}, "
            f"num_layers={self.num_layers}"
        )
