"""Parameter initialization schemes (Kaiming / Xavier families).

All initializers mutate the parameter's array in place and draw from the
library-wide seeded generator, so model construction is reproducible.
"""

from __future__ import annotations

import math

import numpy as np

from ..tensor import Tensor
from ..tensor.random import get_rng


def _mark(param: Tensor) -> Tensor:
    """Bump the parameter's version counter after an in-place rewrite."""
    mark = getattr(param, "mark_updated", None)
    if mark is not None:
        mark()
    return param


def _fan_in_out(shape) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        fan_out, fan_in = shape
        return fan_in, fan_out
    # conv weights: (out, in, *kernel)
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive


def kaiming_normal_(param: Tensor, gain: float = math.sqrt(2.0)) -> Tensor:
    """He initialization, normal variant (for ReLU networks)."""
    fan_in, _ = _fan_in_out(param.shape)
    std = gain / math.sqrt(fan_in)
    param.data[...] = get_rng().normal(0.0, std, size=param.shape)
    return _mark(param)


def kaiming_uniform_(param: Tensor, gain: float = math.sqrt(2.0)) -> Tensor:
    """He initialization, uniform variant."""
    fan_in, _ = _fan_in_out(param.shape)
    bound = gain * math.sqrt(3.0 / fan_in)
    param.data[...] = get_rng().uniform(-bound, bound, size=param.shape)
    return _mark(param)


def xavier_normal_(param: Tensor, gain: float = 1.0) -> Tensor:
    """Glorot initialization, normal variant (for tanh/sigmoid networks)."""
    fan_in, fan_out = _fan_in_out(param.shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    param.data[...] = get_rng().normal(0.0, std, size=param.shape)
    return _mark(param)


def xavier_uniform_(param: Tensor, gain: float = 1.0) -> Tensor:
    """Glorot initialization, uniform variant."""
    fan_in, fan_out = _fan_in_out(param.shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    param.data[...] = get_rng().uniform(-bound, bound, size=param.shape)
    return _mark(param)


def normal_(param: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    param.data[...] = get_rng().normal(mean, std, size=param.shape)
    return _mark(param)


def uniform_(param: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    param.data[...] = get_rng().uniform(low, high, size=param.shape)
    return _mark(param)


def constant_(param: Tensor, value: float) -> Tensor:
    param.data[...] = value
    return _mark(param)


def zeros_(param: Tensor) -> Tensor:
    return constant_(param, 0.0)


def ones_(param: Tensor) -> Tensor:
    return constant_(param, 1.0)
