"""Neural-network layers built on the :mod:`repro.tensor` autograd engine.

Provides the module system (:class:`Module`, :class:`Parameter`,
:class:`Sequential`), linear / convolutional / recurrent layers, pooling,
activations, the conventional normalization family the paper's inverted
normalization replaces, and the dropout variants used by the baselines.
"""

from . import init
from .activations import (
    HardTanh,
    LeakyReLU,
    LogSoftmax,
    ReLU,
    Sigmoid,
    Softmax,
    Tanh,
)
from .conv import Conv1d, Conv2d, ConvTranspose2d
from .dropout import (
    DropConnect,
    resample_masks,
    set_mask_scope,
    Dropout,
    GaussianDropout,
    SpatialDropout1d,
    SpatialDropout2d,
    StochasticModule,
)
from .linear import Linear
from .module import Identity, Lambda, Module, ModuleList, Parameter, Sequential
from .normalization import (
    BatchNorm1d,
    BatchNorm2d,
    GroupNorm,
    InstanceNorm2d,
    LayerNorm,
    normalize,
)
from .pooling import (
    AvgPool1d,
    AvgPool2d,
    Flatten,
    GlobalAvgPool1d,
    GlobalAvgPool2d,
    MaxPool1d,
    MaxPool2d,
    UpsampleNearest2d,
)
from .rnn import LSTM, LSTMCell

__all__ = [
    "init",
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Identity",
    "Lambda",
    "Linear",
    "Conv1d",
    "Conv2d",
    "ConvTranspose2d",
    "LSTM",
    "LSTMCell",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "HardTanh",
    "Softmax",
    "LogSoftmax",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "InstanceNorm2d",
    "GroupNorm",
    "normalize",
    "Dropout",
    "SpatialDropout1d",
    "SpatialDropout2d",
    "GaussianDropout",
    "DropConnect",
    "StochasticModule",
    "resample_masks",
    "set_mask_scope",
    "MaxPool1d",
    "MaxPool2d",
    "AvgPool1d",
    "AvgPool2d",
    "GlobalAvgPool1d",
    "GlobalAvgPool2d",
    "UpsampleNearest2d",
    "Flatten",
]
