"""Module system: parameter containers with PyTorch-like ergonomics.

A :class:`Module` automatically registers :class:`Parameter` and child
``Module`` attributes, exposes recursive iteration (``parameters``,
``named_modules`` ...), train/eval mode switching, and ``state_dict``
serialization (plain numpy arrays, so checkpoints are ``np.savez``-able).
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor
from ..tensor import plan as _plan

# Process-wide monotonic ids for Parameter identity in deployment caches.
# Never recycled (unlike ``id()``), so a (uid, version) pair uniquely names
# one state of one parameter for the lifetime of the process.
_PARAM_UIDS = itertools.count(1)


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a :class:`Module`.

    Every parameter carries a *version counter* (``_version``) bumped by
    :meth:`mark_updated` whenever its values change — optimizer steps,
    ``load_state_dict``, initializers.  Deployment-time consumers (the
    quantization cache of :class:`repro.quant.layers.QuantizedComputeLayer`)
    key derived state on ``(uid, version)``: unchanged weights serve cached
    codes, a training step transparently invalidates them.
    """

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        self._uid = next(_PARAM_UIDS)
        self._version = 0

    def mark_updated(self) -> None:
        """Record that the parameter's values changed (invalidates caches)."""
        self._version += 1

    @property
    def version_key(self) -> Tuple[int, int]:
        """Hashable fingerprint of this parameter's current state."""
        return (self._uid, self._version)


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            # Reassigning a registered name with a non-param/module clears it.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        # Only called when normal lookup fails.
        for store in ("_parameters", "_modules", "_buffers"):
            registry = self.__dict__.get(store)
            if registry is not None and name in registry:
                return registry[name]
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. running statistics)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)

    def register_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield prefix + name, buf
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        """Apply ``fn`` to self and every submodule (depth-first)."""
        for module in self.modules():
            fn(module)
        return self

    # ------------------------------------------------------------------
    # Mode and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters and buffers as a flat dict of copies."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load values saved by :meth:`state_dict` (strict shapes)."""
        params = dict(self.named_parameters())
        loaded = set()
        for name, value in state.items():
            if name.startswith("buffer:"):
                continue
            if name not in params:
                raise KeyError(f"unexpected parameter {name!r} in state dict")
            if params[name].shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name!r}: "
                    f"{params[name].shape} vs {value.shape}"
                )
            params[name].data[...] = value
            params[name].mark_updated()
            loaded.add(name)
        missing = set(params) - loaded
        if missing:
            raise KeyError(f"missing parameters in state dict: {sorted(missing)}")
        self._load_buffers(state)

    def _load_buffers(self, state: Dict[str, np.ndarray]) -> None:
        buffer_owners: Dict[str, Tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                buffer_owners[full] = (module, buf_name)
        for name, value in state.items():
            if not name.startswith("buffer:"):
                continue
            key = name[len("buffer:") :]
            if key in buffer_owners:
                module, buf_name = buffer_owners[key]
                module._buffers[buf_name] = value.copy()

    def save(self, path: str) -> None:
        """Persist the state dict with ``np.savez_compressed``."""
        np.savez_compressed(path, **self.state_dict())

    def load(self, path: str) -> None:
        """Load a checkpoint written by :meth:`save`."""
        with np.load(path) as archive:
            self.load_state_dict({k: archive[k] for k in archive.files})

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        # Root calls under active plan routing (the campaign engine's
        # trace-compiled execution, see repro.tensor.plan) go through the
        # plan cache: first gradient-free forward per key traces, later
        # ones replay a flat numpy kernel sequence.  Nested module calls
        # during a trace, training forwards, and `--no-plan` runs all take
        # this interpreted path.
        if _plan.plan_routing_active():
            return _plan.call_planned(self, args, kwargs)
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {repr(mod)}".replace("\n", "\n  ")
            for name, mod in self._modules.items()
        ]
        header = self.extra_repr()
        if not child_lines:
            return f"{type(self).__name__}({header})"
        body = "\n".join(child_lines)
        return f"{type(self).__name__}({header}\n{body}\n)"

    def extra_repr(self) -> str:
        return ""


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for i, module in enumerate(modules):
            self.register_module(str(i), module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._modules)), module)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """List container whose elements are registered as submodules."""

    def __init__(self, modules: Optional[List[Module]] = None):
        super().__init__()
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and cannot be called")


class Identity(Module):
    """No-op module (placeholder for optional layers)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Lambda(Module):
    """Wrap an arbitrary tensor function as a module."""

    def __init__(self, fn: Callable[[Tensor], Tensor], name: str = "fn"):
        super().__init__()
        self._fn = fn
        self._name = name

    def forward(self, x: Tensor) -> Tensor:
        return self._fn(x)

    def extra_repr(self) -> str:
        return self._name
