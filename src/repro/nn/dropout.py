"""Dropout variants (Section II-C of the paper).

These implement the stochastic baselines the paper compares against:

* :class:`Dropout` — conventional Bernoulli unit dropout (SpinDrop [8] uses
  this after conv blocks of a binary NN).
* :class:`SpatialDropout2d` / :class:`SpatialDropout1d` — drop whole feature
  maps (SpatialSpinDrop [7]).
* :class:`DropConnect` — drop weights of a wrapped linear layer.
* :class:`GaussianDropout` — multiplicative Gaussian noise variant.

All of them inherit :class:`StochasticModule`: they are active during
training and — for Bayesian Monte Carlo inference — whenever
``stochastic_inference`` is switched on (see
:func:`repro.core.bayesian.enable_stochastic_inference`).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from ..tensor import plan as _plan
from ..tensor.chipbatch import active_chip_count, chip_axes
from ..tensor.random import get_rng
from .module import Module


class StochasticModule(Module):
    """Base for modules that sample noise per forward pass.

    ``stochastic_inference`` keeps sampling active in ``eval()`` mode; this
    is how Monte Carlo Bayesian inference is realized across the library.

    ``mask_scope`` controls the sampling cadence: ``"call"`` (default)
    draws a fresh mask on every forward call, while ``"frozen"`` reuses one
    cached mask until :meth:`resample` is invoked.  Recurrent models use
    the frozen scope so that one mask is held across all timesteps of a
    sequence (variational-RNN-style, and what a hardware RNG sampled once
    per inference pass would do), resampling once per sequence.
    """

    def __init__(self) -> None:
        super().__init__()
        self.stochastic_inference = False
        self.mask_scope = "call"
        self._mask_cache = None

    @property
    def sampling(self) -> bool:
        return self.training or self.stochastic_inference

    def resample(self) -> None:
        """Invalidate the frozen mask so the next forward draws a new one."""
        self._mask_cache = None

    def _scoped_mask(self, sample_fn, shape_key):
        """Sample via ``sample_fn`` honouring the mask scope.

        Under an active forward-plan trace the draw is recorded as a
        *source step*, so every replay re-runs ``sample_fn`` against the
        engine's scoped generator — one fresh draw per replayed forward,
        exactly the interpreted cadence.  A frozen mask that was drawn
        *before* the trace began cannot be re-derived and poisons the
        trace (the key falls back to interpretation).
        """
        if self.mask_scope != "frozen":
            return _plan.traced_source(sample_fn)
        if self._mask_cache is None or self._mask_cache[0] != shape_key:
            self._mask_cache = (shape_key, _plan.traced_source(sample_fn))
        else:
            _plan.ensure_known(self._mask_cache[1])
        return self._mask_cache[1]


def resample_masks(module: Module) -> None:
    """Resample frozen masks of every stochastic submodule of ``module``."""
    for m in module.modules():
        if isinstance(m, StochasticModule):
            m.resample()


def set_mask_scope(module: Module, scope: str) -> None:
    """Set the mask scope (``"call"`` / ``"frozen"``) on all submodules."""
    if scope not in ("call", "frozen"):
        raise ValueError(f"scope must be 'call' or 'frozen', got {scope!r}")
    for m in module.modules():
        if isinstance(m, StochasticModule):
            m.mask_scope = scope
            m.resample()


class Dropout(StochasticModule):
    """Conventional inverted dropout with keep-probability rescaling."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.sampling or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        shape = x.shape  # bind the shape, not the tensor: plans keep the thunk
        mask = self._scoped_mask(
            lambda: (get_rng().random(shape) < keep).astype(np.float64), shape
        )
        return ops.dropout_mask_apply(x, mask, scale=1.0 / keep)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class SpatialDropout2d(StochasticModule):
    """Drop entire channels of an NCHW tensor (a.k.a. Dropout2d)."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.sampling or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        # Mask over (batch, channels) — plus the leading chip axis when a
        # chip batch is active, so each simulated chip drops its own maps.
        lead = 2 + chip_axes()
        mask_shape = x.shape[:lead] + (1,) * (x.ndim - lead)
        mask = self._scoped_mask(
            lambda: (get_rng().random(mask_shape) < keep).astype(np.float64),
            mask_shape,
        )
        return ops.dropout_mask_apply(x, mask, scale=1.0 / keep)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class SpatialDropout1d(SpatialDropout2d):
    """Drop entire channels of an NCL tensor."""


class GaussianDropout(StochasticModule):
    """Multiplicative Gaussian noise ``x * N(1, p/(1-p))``."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        if not 0.0 < p < 1.0:
            raise ValueError(f"gaussian dropout rate must be in (0, 1), got {p}")
        self.p = p
        self._std = float(np.sqrt(p / (1.0 - p)))

    def forward(self, x: Tensor) -> Tensor:
        if not self.sampling:
            return x
        shape = x.shape
        noise = _plan.traced_source(
            lambda: get_rng().normal(1.0, self._std, size=shape)
        )
        return ops.dropout_mask_apply(x, noise, scale=1.0)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class DropConnect(StochasticModule):
    """Linear layer whose weights are randomly dropped per forward pass.

    Functional re-implementation of DropConnect for fully-connected layers:
    a fresh Bernoulli mask is applied to the weight matrix (with keep-prob
    rescaling) on every sampled forward pass, and gradients flow through the
    masked weights correctly.
    """

    def __init__(self, linear: "Module", p: float = 0.5):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropconnect probability must be in [0, 1), got {p}")
        if not hasattr(linear, "weight"):
            raise TypeError("DropConnect requires a linear module with .weight")
        self.linear = linear
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        if not self.sampling or self.p == 0.0:
            return self.linear(x)
        weight = self.linear.weight
        keep = 1.0 - self.p
        n_chips = active_chip_count()
        mask_shape = ((n_chips,) if n_chips else ()) + weight.shape
        mask = _plan.traced_source(
            lambda: (get_rng().random(mask_shape) < keep).astype(np.float64)
        )
        masked = ops.dropout_mask_apply(weight, mask, scale=1.0 / keep)
        out = x @ masked.swapaxes(-1, -2)
        if getattr(self.linear, "bias", None) is not None:
            out = out + self.linear.bias
        return out

    def extra_repr(self) -> str:
        return f"p={self.p}"
