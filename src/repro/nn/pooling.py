"""Pooling and resampling layer modules."""

from __future__ import annotations

from typing import Optional

from ..tensor import Tensor
from ..tensor import conv as F
from .module import Module


class MaxPool2d(Module):
    """Max pooling over NCHW tensors (no padding)."""
    def __init__(self, kernel_size: int | tuple, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling over NCHW tensors (no padding)."""
    def __init__(self, kernel_size: int | tuple, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class MaxPool1d(Module):
    """Max pooling over NCL tensors."""
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool1d(Module):
    """Average pooling over NCL tensors."""
    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool1d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    """Average over the spatial dimensions → ``(n, c)``.

    Reduces the trailing two axes, so chip-batched ``(C, n, c, h, w)``
    activations map to ``(C, n, c)``.
    """

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=(-2, -1))


class GlobalAvgPool1d(Module):
    """Average over the length dimension → ``(n, c)``.

    Reduces the trailing axis, so chip-batched ``(C, n, c, l)``
    activations map to ``(C, n, c)``.
    """

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=-1)


class UpsampleNearest2d(Module):
    """Nearest-neighbour spatial up-sampling by an integer factor."""
    def __init__(self, scale: int = 2):
        super().__init__()
        self.scale = scale

    def forward(self, x: Tensor) -> Tensor:
        return F.upsample_nearest2d(x, self.scale)

    def extra_repr(self) -> str:
        return f"scale={self.scale}"


class Flatten(Module):
    """Flatten all dimensions from ``start_dim`` onward."""
    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=self.start_dim)
