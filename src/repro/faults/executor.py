"""Parallel execution engine for Monte Carlo fault campaigns.

A fault campaign is an embarrassingly parallel grid: every
(scenario, chip-run) pair — a :class:`WorkCell` — is an independent
evaluation of the model under one frozen fault realization.  This module
flattens that grid and executes it on a pluggable backend:

* ``"serial"`` — the reference implementation, a plain loop;
* ``"thread"`` — a pool of worker threads, each owning its own model
  replica (fault hooks are per-model mutable state, so replicas are
  mandatory);
* ``"process"`` — a :class:`concurrent.futures.ProcessPoolExecutor`;
  workers receive a pickled :class:`EvalHandle` and rebuild the
  (model, evaluator) pair once per worker, caching it for subsequent cells.
* ``"batched"`` — groups the grid by scenario and evaluates each group's
  chips as *one* stacked tensor pass: fault patterns are generated per
  chip from the same per-cell streams and stacked along a leading chip
  axis (:meth:`~repro.faults.campaign.FaultInjector.attach_batched`), and
  evaluation randomness is routed through a
  :class:`~repro.tensor.chipbatch.ChipBatchRng` over the per-cell
  evaluation streams.  With ``mc_batched`` (the default) the Monte Carlo
  sample loop of Bayesian evaluators folds into the same pass, and with
  ``scenario_batched`` (also the default) consecutive same-kind severity
  levels fold into it too, so one forward carries a
  ``scenarios x chips x mc_samples`` instance axis (scenario-major; see
  :func:`evaluate_cells_scenario_batched`).  This is the backend that
  actually wins on a single core — one vectorized forward replaces
  ``K x C x S`` Python-dispatched ones.
  It requires a *chip-aware* evaluator (everything built by
  :func:`repro.eval.evaluators.make_evaluator` qualifies): under an
  active chip batch the evaluator must return a ``(n_chips,)`` metric
  vector instead of a float.

Determinism
-----------
Results are bit-identical across backends, worker counts, and scheduling
orders.  Each cell derives every random stream it touches from
``SeedSequence(base_seed, spawn_key=(scenario_index, run_index))``:

* the first spawned child seeds the fault-injection RNG handed to
  :class:`~repro.faults.campaign.FaultInjector.attach`;
* the second seeds a generator installed via
  :func:`~repro.tensor.random.scoped_rng` for the duration of the
  evaluation, so dropout masks / affine-dropout noise / activation faults
  drawn through ``get_rng()`` are a pure function of the cell coordinates
  rather than of whatever ran before.

Cell values are written back by submission index, never completion order.
"""

from __future__ import annotations

import copy
import queue
import threading
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.dropout import resample_masks
from ..nn.module import Module
from ..tensor import plan as _plan
from ..tensor.chipbatch import ChipBatchRng, chip_batch, mc_batching, scenario_axis
from ..tensor.random import scoped_rng
from .models import FaultSpec

EXECUTORS = ("serial", "thread", "process", "batched")

Evaluator = Callable[[Module], float]


@dataclass(frozen=True)
class WorkCell:
    """One independent unit of campaign work: a (scenario, chip-run) pair."""

    scenario_index: int
    run_index: int
    spec: FaultSpec


def cell_rngs(
    base_seed: int, scenario_index: int, run_index: int
) -> Tuple[np.random.Generator, np.random.Generator]:
    """Derive the (fault, evaluation) generator pair for one cell.

    Both streams are children of the campaign's canonical
    ``SeedSequence(base_seed, spawn_key=(scenario, run))``, so they depend
    only on the cell coordinates.
    """
    seq = np.random.SeedSequence(
        entropy=base_seed, spawn_key=(scenario_index, run_index)
    )
    fault_seq, eval_seq = seq.spawn(2)
    return np.random.default_rng(fault_seq), np.random.default_rng(eval_seq)


def cell_eval_rng(
    base_seed: int, scenario_index: int, run_index: int
) -> np.random.Generator:
    """Only the evaluation generator of one cell's stream pair.

    The amortized attach path (see
    :meth:`repro.faults.campaign.FaultInjector.program`) serves fault
    hooks from the program registry without consuming the fault stream,
    so steady-state cells skip instantiating the fault generator
    entirely; the derivation of the evaluation stream is identical to
    :func:`cell_rngs`.

    The child sequence is constructed directly — ``spawn(n)`` extends
    the parent's ``spawn_key`` with the child index, so
    ``SeedSequence(base_seed, spawn_key=(scenario, run, 1))`` is the
    same stream ``cell_rngs`` returns, without hashing the parent's
    entropy or materializing the unused fault child (this derivation
    runs once per cell per sweep on the hot skip path).
    """
    eval_seq = np.random.SeedSequence(
        entropy=base_seed, spawn_key=(scenario_index, run_index, 1)
    )
    return np.random.default_rng(eval_seq)


def _resolve_amortize(attach_amortize: Optional[bool]) -> bool:
    from .campaign import attach_amortize_default  # local import breaks the cycle

    return (
        attach_amortize_default()
        if attach_amortize is None
        else bool(attach_amortize)
    )


def evaluate_cell(
    model: Module,
    evaluator: Evaluator,
    cell: WorkCell,
    base_seed: int,
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> float:
    """Evaluate one cell hermetically: attach faults, score, detach.

    All stochasticity (fault patterns, dropout masks, activation noise) is
    scoped to generators derived from the cell coordinates, and frozen
    dropout masks are invalidated first, so the returned value does not
    depend on prior use of ``model``.

    ``plan`` routes the cell's gradient-free forwards through
    trace-compiled plans (:mod:`repro.tensor.plan`): the first forward per
    (shape, layout, weights, hooks) key traces, subsequent ones replay a
    flat numpy kernel sequence — bit-identical either way.  ``plan=False``
    (the ``--no-plan`` switch) keeps the fully interpreted path.

    ``plan_opt`` toggles the trace-time IR optimizer
    (:mod:`repro.tensor.plan_passes`; fold/eliminate/fuse) for plans
    traced by this cell: ``None`` inherits the ambient default (on unless
    ``REPRO_PLAN_OPT=0``), ``False`` (the ``--no-plan-opt`` switch)
    replays the raw traced step list — bit-identical either way.

    ``attach_amortize`` routes the attach through the campaign-level
    program registry (:meth:`FaultInjector.program
    <repro.faults.campaign.FaultInjector.program>`): a repeat of an
    already-programmed cell re-installs its stored hooks without drawing
    a seed.  ``None`` inherits the ambient default (on unless
    ``REPRO_ATTACH_AMORTIZE=0``) — bit-identical either way.
    """
    from .campaign import FaultInjector  # local import breaks the cycle

    amortize = _resolve_amortize(attach_amortize)
    if amortize:
        eval_rng = cell_eval_rng(base_seed, cell.scenario_index, cell.run_index)
    else:
        fault_rng, eval_rng = cell_rngs(
            base_seed, cell.scenario_index, cell.run_index
        )
    injector = FaultInjector(model)
    with scoped_rng(eval_rng):
        resample_masks(model)
        if amortize:
            injector.program(
                cell.spec, base_seed, cell.scenario_index, cell.run_index
            )
        else:
            with _plan.stage("attach"):
                injector.attach(cell.spec, fault_rng)
        try:
            with _plan.plan_execution(plan, optimize=plan_opt), _plan.stage("metric"):
                return float(evaluator(model))
        finally:
            injector.detach()


def evaluate_cells_batched(
    model: Module,
    evaluator: Evaluator,
    cells: Sequence[WorkCell],
    base_seed: int,
    mc_batched: bool = True,
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Evaluate one scenario's chip instances as a single stacked pass.

    All ``cells`` must belong to one scenario (same spec and scenario
    index).  Per-cell (fault, evaluation) streams are derived exactly as
    :func:`evaluate_cell` derives them; the fault streams drive
    :meth:`~repro.faults.campaign.FaultInjector.attach_batched` (stacked
    frozen patterns, one per chip) and the evaluation streams back a
    :class:`~repro.tensor.chipbatch.ChipBatchRng`, so chip ``i``'s slice
    of every mask, noise draw, and fault pattern is bit-identical to a
    serial evaluation of ``cells[i]``.

    ``mc_batched`` (default on) additionally folds the Monte Carlo sample
    loop of Bayesian evaluators into the same stacked pass: one forward
    carries a ``chips x mc_samples`` instance axis (see
    :func:`repro.core.bayesian.mc_forward`), with per-chip metrics still
    bit-identical to the looped reference.

    ``evaluator`` must be chip-aware: under the active chip batch it
    receives chip-stacked activations and returns a ``(n_chips,)`` metric
    vector (see :func:`repro.eval.evaluators.make_evaluator`).
    """
    from .campaign import FaultInjector  # local import breaks the cycle

    if not cells:
        return np.empty(0)
    spec = cells[0].spec
    scenario = cells[0].scenario_index
    for cell in cells:
        if cell.spec is not spec and cell.spec != spec:
            raise ValueError("batched evaluation needs a single-scenario group")
        if cell.scenario_index != scenario:
            raise ValueError("batched evaluation needs a single-scenario group")
    amortize = _resolve_amortize(attach_amortize)
    if amortize:
        eval_rngs = [
            cell_eval_rng(base_seed, cell.scenario_index, cell.run_index)
            for cell in cells
        ]
    else:
        pairs = [
            cell_rngs(base_seed, cell.scenario_index, cell.run_index)
            for cell in cells
        ]
        fault_rngs = [fault for fault, _ in pairs]
        eval_rngs = [ev for _, ev in pairs]
    injector = FaultInjector(model)
    with chip_batch(len(cells)), scoped_rng(ChipBatchRng(eval_rngs)), mc_batching(
        mc_batched
    ):
        resample_masks(model)
        if amortize:
            injector.program_batched(
                spec, base_seed, scenario, [cell.run_index for cell in cells]
            )
        else:
            with _plan.stage("attach"):
                injector.attach_batched(spec, fault_rngs)
        try:
            with _plan.plan_execution(plan, optimize=plan_opt), _plan.stage("metric"):
                values = np.asarray(evaluator(model), dtype=np.float64)
        finally:
            injector.detach()
    if values.shape != (len(cells),):
        raise RuntimeError(
            f"chip-aware evaluator returned shape {values.shape} for "
            f"{len(cells)} chips; the batched backend needs a per-chip "
            "metric vector (see repro.eval.evaluators.make_evaluator)"
        )
    return values


def evaluate_cells_scenario_batched(
    model: Module,
    evaluator: Evaluator,
    cell_groups: Sequence[Sequence[WorkCell]],
    base_seed: int,
    mc_batched: bool = True,
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Evaluate several scenarios' chip instances as ONE stacked pass.

    ``cell_groups[k]`` holds scenario ``k``'s cells (one spec per group,
    every group the same fault kind and the same chip count), and the
    stacked pass carries a scenario-major instance axis of
    ``n_scenarios * n_chips`` — times ``mc_samples`` under ``mc_batched``.
    Per-cell (fault, evaluation) streams are derived exactly as
    :func:`evaluate_cell` derives them, fault patterns are generated per
    (scenario, chip) from each cell's own fault stream
    (:meth:`~repro.faults.campaign.FaultInjector.attach_scenario_batched`,
    heterogeneous severities stacked by
    :class:`~repro.faults.models.ScenarioBatchedWeightFault`), and
    evaluation randomness goes through a
    :class:`~repro.tensor.chipbatch.ChipBatchRng` over the flattened
    per-cell streams — so every (scenario, chip) slice is bit-identical to
    a serial evaluation of that cell.

    Returns the metric values flattened scenario-major, aligned with
    ``[cell for group in cell_groups for cell in group]``.
    """
    from .campaign import FaultInjector  # local import breaks the cycle

    if not cell_groups:
        return np.empty(0)
    chip_counts = {len(group) for group in cell_groups}
    if 0 in chip_counts:
        raise ValueError("scenario batching needs non-empty scenario groups")
    if len(chip_counts) > 1:
        raise ValueError(
            "scenario batching needs the same chip count per scenario, got "
            f"{sorted(chip_counts)}"
        )
    specs: List[FaultSpec] = []
    for group in cell_groups:
        spec = group[0].spec
        scenario = group[0].scenario_index
        for cell in group:
            if cell.spec is not spec and cell.spec != spec:
                raise ValueError(
                    "each scenario group needs a single-scenario cell list"
                )
            if cell.scenario_index != scenario:
                raise ValueError(
                    "each scenario group needs a single-scenario cell list"
                )
        specs.append(spec)
    amortize = _resolve_amortize(attach_amortize)
    fault_rng_groups: List[List[np.random.Generator]] = []
    eval_rngs: List[np.random.Generator] = []
    for group in cell_groups:
        if amortize:
            eval_rngs.extend(
                cell_eval_rng(base_seed, cell.scenario_index, cell.run_index)
                for cell in group
            )
            continue
        pairs = [
            cell_rngs(base_seed, cell.scenario_index, cell.run_index)
            for cell in group
        ]
        fault_rng_groups.append([fault for fault, _ in pairs])
        eval_rngs.extend(ev for _, ev in pairs)
    n_scenarios = len(cell_groups)
    n_chips = len(cell_groups[0])
    injector = FaultInjector(model)
    with scenario_axis(n_scenarios), chip_batch(n_chips), scoped_rng(
        ChipBatchRng(eval_rngs)
    ), mc_batching(mc_batched):
        resample_masks(model)
        if amortize:
            injector.program_scenario_batched(
                specs,
                base_seed,
                [group[0].scenario_index for group in cell_groups],
                [[cell.run_index for cell in group] for group in cell_groups],
            )
        else:
            with _plan.stage("attach"):
                injector.attach_scenario_batched(specs, fault_rng_groups)
        try:
            with _plan.plan_execution(plan, optimize=plan_opt), _plan.stage("metric"):
                values = np.asarray(evaluator(model), dtype=np.float64)
        finally:
            injector.detach()
    if values.shape != (len(eval_rngs),):
        raise RuntimeError(
            f"chip-aware evaluator returned shape {values.shape} for "
            f"{len(eval_rngs)} stacked instances; the scenario-batched "
            "backend needs a per-instance metric vector (see "
            "repro.eval.evaluators.make_evaluator)"
        )
    return values


def _scenario_groups(cells: Sequence[WorkCell]) -> List[Tuple[int, int]]:
    """Split the grid into maximal runs of consecutive same-scenario cells."""
    groups: List[Tuple[int, int]] = []
    start = 0
    for i in range(1, len(cells)):
        if cells[i].scenario_index != cells[start].scenario_index:
            groups.append((start, i))
            start = i
    if len(cells):
        groups.append((start, len(cells)))
    return groups


def _stackable(cells: Sequence[WorkCell], start: int, stop: int) -> bool:
    """True when a scenario range can join a cross-scenario stacked pass."""
    spec = cells[start].spec
    return stop - start > 1 and spec.kind != "none" and spec.level != 0.0


def _kind_groups(
    cells: Sequence[WorkCell],
) -> List[List[Tuple[int, int]]]:
    """Coalesce consecutive same-kind scenario ranges for cross-scenario
    stacking.

    Returns a list of kind groups, each a list of ``(start, stop)``
    scenario ranges.  Ranges merge only when every member is stackable
    (multi-chip, non-degenerate spec), shares the fault kind, and has the
    same chip count — the rectangular layout the scenario axis requires.
    Unstackable ranges come back as singleton groups and keep the
    per-scenario (or serial fall-back) path.
    """
    groups: List[List[Tuple[int, int]]] = []
    for start, stop in _scenario_groups(cells):
        if groups and _stackable(cells, start, stop):
            prev_start, prev_stop = groups[-1][-1]
            if (
                _stackable(cells, prev_start, prev_stop)
                and cells[prev_start].spec.kind == cells[start].spec.kind
                and prev_stop - prev_start == stop - start
            ):
                groups[-1].append((start, stop))
                continue
        groups.append([(start, stop)])
    return groups


def _run_batched(
    cells: Sequence[WorkCell],
    base_seed: int,
    model: Module,
    evaluator: Evaluator,
    on_cell_done: Optional[Callable[[int, int], None]],
    chip_limit: Optional[int] = None,
    mc_batched: bool = True,
    scenario_batched: bool = True,
    scenario_limit: Optional[int] = None,
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Chip-batched backend: one vectorized pass per (stacked) group.

    With ``scenario_batched`` (default on) consecutive multi-chip
    scenarios of the same fault kind stack into ONE pass carrying a
    scenario-major instance axis — a severity sweep pays one stacked
    forward per (task, fault-kind) group instead of one per level.
    ``scenario_limit`` caps the scenarios stacked per pass and
    ``chip_limit`` the chips per scenario per pass; both only bound the
    working set — every sub-batch derives the same per-cell streams, so
    results never change.  Fault-free scenarios (single-cell groups by
    construction, and faultless in general) fall back to the serial
    reference — with no fault hooks attached nothing introduces the chip
    axis, so there is nothing to vectorize.
    """
    if chip_limit is not None and chip_limit < 1:
        raise ValueError(f"chip_limit must be >= 1, got {chip_limit}")
    if scenario_limit is not None and scenario_limit < 1:
        raise ValueError(f"scenario_limit must be >= 1, got {scenario_limit}")
    total = len(cells)
    values = np.empty(total)
    done = 0

    def _report(n: int) -> None:
        nonlocal done
        done += n
        if on_cell_done is not None:
            on_cell_done(done, total)

    for ranges in _kind_groups(cells):
        if (
            scenario_batched
            and len(ranges) > 1
            and _stackable(cells, *ranges[0])
        ):
            n_chips = ranges[0][1] - ranges[0][0]
            chip_step = chip_limit if chip_limit else n_chips
            scen_step = scenario_limit if scenario_limit else len(ranges)
            for scen_sub in range(0, len(ranges), scen_step):
                sub_ranges = ranges[scen_sub : scen_sub + scen_step]
                for chip_sub in range(0, n_chips, chip_step):
                    chip_stop = min(chip_sub + chip_step, n_chips)
                    groups = [
                        cells[start + chip_sub : start + chip_stop]
                        for start, _ in sub_ranges
                    ]
                    if len(groups) == 1:
                        stacked = evaluate_cells_batched(
                            model, evaluator, groups[0], base_seed,
                            mc_batched=mc_batched, plan=plan,
                            plan_opt=plan_opt,
                            attach_amortize=attach_amortize,
                        )
                    else:
                        stacked = evaluate_cells_scenario_batched(
                            model, evaluator, groups, base_seed,
                            mc_batched=mc_batched, plan=plan,
                            plan_opt=plan_opt,
                            attach_amortize=attach_amortize,
                        )
                    width = chip_stop - chip_sub
                    for g, (start, _) in enumerate(sub_ranges):
                        values[start + chip_sub : start + chip_stop] = stacked[
                            g * width : (g + 1) * width
                        ]
                    _report(width * len(sub_ranges))
            continue
        for start, stop in ranges:
            spec = cells[start].spec
            if stop - start == 1 or spec.kind == "none" or spec.level == 0.0:
                for index in range(start, stop):
                    values[index] = evaluate_cell(
                        model, evaluator, cells[index], base_seed, plan=plan,
                        plan_opt=plan_opt, attach_amortize=attach_amortize,
                    )
            else:
                step = chip_limit if chip_limit else stop - start
                for sub in range(start, stop, step):
                    sub_stop = min(sub + step, stop)
                    values[sub:sub_stop] = evaluate_cells_batched(
                        model,
                        evaluator,
                        cells[sub:sub_stop],
                        base_seed,
                        mc_batched=mc_batched,
                        plan=plan,
                        plan_opt=plan_opt,
                        attach_amortize=attach_amortize,
                    )
            _report(stop - start)
    return values


# ----------------------------------------------------------------------
# Evaluation handles: picklable recipes for (model, evaluator)
# ----------------------------------------------------------------------
class EvalHandle:
    """Recipe that (re)creates a ``(model, evaluator)`` pair in a worker.

    Process workers cannot receive live models (fault hooks, closures and
    autograd state do not ship well), so they receive a handle instead and
    build the pair locally, once, keyed by :meth:`key`.
    """

    def key(self) -> Hashable:
        raise NotImplementedError

    def build(self) -> Tuple[Module, Evaluator]:
        raise NotImplementedError


@dataclass(frozen=True)
class FactoryHandle(EvalHandle):
    """Handle around a top-level factory function.

    ``factory(*args)`` must return ``(model, evaluator)`` and must be a
    module-level callable (picklable by reference) whose result is
    deterministic — typically it seeds model construction internally.
    """

    factory: Callable[..., Tuple[Module, Evaluator]]
    args: Tuple = ()

    def key(self) -> Hashable:
        return (self.factory.__module__, self.factory.__qualname__, self.args)

    def build(self) -> Tuple[Module, Evaluator]:
        return self.factory(*self.args)


# Per-process build cache: a forked/spawned worker builds each distinct
# handle once and reuses the pair for every subsequent cell it executes.
_WORKER_PAIRS: Dict[Hashable, Tuple[Module, Evaluator]] = {}


def _worker_pair(handle: EvalHandle) -> Tuple[Module, Evaluator]:
    key = handle.key()
    if key not in _WORKER_PAIRS:
        _WORKER_PAIRS[key] = handle.build()
    return _WORKER_PAIRS[key]


def _run_cell_from_handle(
    handle: EvalHandle, index: int, cell: WorkCell, base_seed: int,
    plan: bool = True, plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> Tuple[int, float]:
    model, evaluator = _worker_pair(handle)
    return index, evaluate_cell(
        model, evaluator, cell, base_seed, plan=plan, plan_opt=plan_opt,
        attach_amortize=attach_amortize,
    )


# ----------------------------------------------------------------------
# Grid execution
# ----------------------------------------------------------------------
def run_cells(
    cells: Sequence[WorkCell],
    base_seed: int,
    *,
    model: Optional[Module] = None,
    evaluator: Optional[Evaluator] = None,
    handle: Optional[EvalHandle] = None,
    executor: str = "serial",
    workers: Optional[int] = None,
    on_cell_done: Optional[Callable[[int, int], None]] = None,
    chip_limit: Optional[int] = None,
    mc_batched: Optional[bool] = None,
    scenario_batched: Optional[bool] = None,
    scenario_limit: Optional[int] = None,
    plan: Optional[bool] = None,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Execute a flat cell grid and return values aligned with ``cells``.

    Parameters
    ----------
    cells:
        The flattened (scenario, run) grid.
    base_seed:
        Campaign seed from which every cell derives its streams.
    model, evaluator:
        A live pair, sufficient for ``serial`` and ``thread`` execution
        (thread workers evaluate deep copies of ``model``).
    handle:
        Picklable :class:`EvalHandle`; required for ``process`` execution
        and preferred for ``thread`` (each worker builds its own pair).
    executor:
        One of :data:`EXECUTORS`.  ``"batched"`` evaluates each scenario's
        chips in one stacked pass and needs a chip-aware ``evaluator``.
    workers:
        Worker count for the parallel backends (default: 4).
    on_cell_done:
        Callback ``(done, total)`` fired after each completed cell —
        throughput/ETA reporting hooks onto this.  The batched backend
        fires it once per stacked pass.
    chip_limit:
        ``"batched"`` only: maximum chips stacked per vectorized pass
        (default: a scenario's full chip count).  Smaller caps bound the
        activation working set without changing results.
    mc_batched:
        ``"batched"`` only: stack the Monte Carlo sample axis of Bayesian
        evaluators into the same pass (default on; results are
        bit-identical to the looped reference either way).
    scenario_batched:
        ``"batched"`` only: stack consecutive same-kind severity levels
        along a scenario-major sub-axis above the chip axis, so a sweep
        pays one pass per (task, fault-kind) group (default on; results
        are bit-identical to the looped reference either way).
    scenario_limit:
        ``"batched"`` only: maximum scenarios stacked per pass (default:
        the whole same-kind group).  Smaller caps bound the activation /
        stacked-weight working set without changing results — the
        scenario-axis counterpart of ``chip_limit``.
    plan:
        Route gradient-free evaluation forwards through trace-compiled
        plans (default on for every backend; see
        :mod:`repro.tensor.plan`).  The first forward per (input shape,
        instance layout, parameter versions, fault-hook signatures) key
        runs interpreted while a tracer records the flat numpy kernel
        sequence; subsequent forwards replay it with reused buffers.
        Results are bit-identical either way; ``plan=False`` (CLI
        ``--no-plan``) forces the interpreted path throughout.
    plan_opt:
        Run the trace-time IR optimizer over every plan traced by this
        grid (:mod:`repro.tensor.plan_passes`: constant folding,
        dead-step elimination, kernel fusion).  ``None`` (default)
        inherits the ambient setting — on unless ``REPRO_PLAN_OPT=0`` —
        and ``False`` (CLI ``--no-plan-opt``) replays the raw traced
        step list.  Results are bit-identical either way.
    attach_amortize:
        Serve repeated identical cells from the campaign-level program
        registry (:meth:`FaultInjector.program
        <repro.faults.campaign.FaultInjector.program>`): a cell whose
        (coordinates, fault config) were already programmed re-installs
        its stored hooks and skips attach entirely.  ``None`` (default)
        inherits the ambient setting — on unless
        ``REPRO_ATTACH_AMORTIZE=0`` — and ``False`` (CLI
        ``--no-attach-amortize``) runs a full attach per cell.  Results
        are bit-identical either way.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    if handle is None and (model is None or evaluator is None):
        raise ValueError("run_cells needs either (model, evaluator) or a handle")
    if mc_batched and executor != "batched":
        raise ValueError(
            "mc_batched requires the 'batched' executor (the other backends "
            "evaluate Monte Carlo samples with the looped reference path)"
        )
    if scenario_batched and executor != "batched":
        raise ValueError(
            "scenario_batched requires the 'batched' executor (the other "
            "backends evaluate scenarios cell by cell)"
        )
    total = len(cells)
    if total == 0:
        return np.empty(0)
    workers = max(1, int(workers) if workers is not None else 4)
    plan = True if plan is None else bool(plan)
    plan_opt = None if plan_opt is None else bool(plan_opt)
    attach_amortize = _resolve_amortize(attach_amortize)

    if executor == "batched":
        if model is None or evaluator is None:
            model, evaluator = handle.build()
        return _run_batched(
            cells,
            base_seed,
            model,
            evaluator,
            on_cell_done,
            chip_limit,
            mc_batched=True if mc_batched is None else bool(mc_batched),
            scenario_batched=(
                True if scenario_batched is None else bool(scenario_batched)
            ),
            scenario_limit=scenario_limit,
            plan=plan,
            plan_opt=plan_opt,
            attach_amortize=attach_amortize,
        )

    if executor == "serial" or workers == 1 or total == 1:
        if model is None or evaluator is None:
            model, evaluator = handle.build()
        values = np.empty(total)
        for i, cell in enumerate(cells):
            values[i] = evaluate_cell(
                model, evaluator, cell, base_seed, plan=plan,
                plan_opt=plan_opt, attach_amortize=attach_amortize,
            )
            if on_cell_done is not None:
                on_cell_done(i + 1, total)
        return values

    if executor == "thread":
        return _run_threaded(
            cells, base_seed, model, evaluator, handle, workers, on_cell_done,
            plan=plan, plan_opt=plan_opt, attach_amortize=attach_amortize,
        )
    return _run_process(
        cells, base_seed, model, evaluator, handle, workers, on_cell_done,
        plan=plan, plan_opt=plan_opt, attach_amortize=attach_amortize,
    )


def _run_threaded(
    cells: Sequence[WorkCell],
    base_seed: int,
    model: Optional[Module],
    evaluator: Optional[Evaluator],
    handle: Optional[EvalHandle],
    workers: int,
    on_cell_done: Optional[Callable[[int, int], None]],
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Thread-pool backend: one model replica per worker thread.

    Replicas are built up front on the calling thread (handle builds may
    seed the process-global generator, which must not race), then worker
    threads only evaluate — and evaluation randomness is thread-local via
    :func:`scoped_rng`.
    """
    workers = min(workers, len(cells))
    pairs: List[Tuple[Module, Evaluator]] = []
    seen_models: set = set()

    def _replica(source: Module) -> Module:
        replica = copy.deepcopy(source)
        # Warmed quantization caches (codes + dequantized weight stacks)
        # would otherwise be duplicated per worker; each replica rebuilds
        # its own on first gradient-free forward for the cost of one
        # requantization.
        for module in replica.modules():
            if hasattr(module, "invalidate_quant_cache"):
                module.invalidate_quant_cache()
        return replica

    for _ in range(workers):
        if model is not None and evaluator is not None:
            # Deep-copying the live pair is strictly cheaper than
            # handle.build() (which may re-synthesize datasets).
            pairs.append((_replica(model), evaluator))
            continue
        worker_model, worker_evaluator = handle.build()
        # Handles backed by an in-process cache (e.g. TaskEvalHandle →
        # trained_model's memory cache) return the SAME model object on
        # every build; fault hooks are per-model state, so aliased
        # replicas would race.  Copy any repeat.
        if id(worker_model) in seen_models:
            worker_model = _replica(worker_model)
        seen_models.add(id(worker_model))
        pairs.append((worker_model, worker_evaluator))

    values = np.empty(len(cells))
    work: "queue.SimpleQueue[Optional[Tuple[int, WorkCell]]]" = queue.SimpleQueue()
    for item in enumerate(cells):
        work.put(item)
    for _ in range(workers):
        work.put(None)

    lock = threading.Lock()
    done = 0
    errors: List[BaseException] = []
    abort = threading.Event()

    def drain(pair: Tuple[Module, Evaluator]) -> None:
        nonlocal done
        worker_model, worker_evaluator = pair
        while True:
            item = work.get()
            if item is None:
                return
            if abort.is_set():  # fail fast: discard remaining cells
                continue
            index, cell = item
            try:
                value = evaluate_cell(
                    worker_model, worker_evaluator, cell, base_seed,
                    plan=plan, plan_opt=plan_opt,
                    attach_amortize=attach_amortize,
                )
            except BaseException as exc:  # surface on the caller's thread
                with lock:
                    errors.append(exc)
                abort.set()
                continue
            values[index] = value
            with lock:
                done += 1
                if on_cell_done is not None:
                    on_cell_done(done, len(cells))

    threads = [
        threading.Thread(target=drain, args=(pair,), daemon=True) for pair in pairs
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return values


def _run_process(
    cells: Sequence[WorkCell],
    base_seed: int,
    model: Optional[Module],
    evaluator: Optional[Evaluator],
    handle: Optional[EvalHandle],
    workers: int,
    on_cell_done: Optional[Callable[[int, int], None]],
    plan: bool = True,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> np.ndarray:
    """Process-pool backend: workers rebuild (model, evaluator) from a handle."""
    if handle is None:
        raise ValueError(
            "process execution needs a picklable EvalHandle; live models and "
            "evaluator closures do not survive pickling — wrap construction "
            "in a FactoryHandle (or use run_robustness_sweep, which builds a "
            "handle automatically)"
        )
    workers = min(workers, len(cells))
    values = np.empty(len(cells))
    done = 0
    with ProcessPoolExecutor(max_workers=workers) as pool:
        pending = {
            pool.submit(
                _run_cell_from_handle, handle, i, cell, base_seed, plan,
                plan_opt, attach_amortize,
            )
            for i, cell in enumerate(cells)
        }
        try:
            while pending:
                finished, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in finished:
                    index, value = future.result()  # re-raises worker exceptions
                    values[index] = value
                    done += 1
                    if on_cell_done is not None:
                        on_cell_done(done, len(cells))
        except BaseException:
            for future in pending:  # fail fast: drop unstarted cells
                future.cancel()
            raise
    return values
