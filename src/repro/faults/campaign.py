"""Fault-injection orchestration and Monte Carlo campaigns.

:class:`FaultInjector` wires a :class:`~repro.faults.models.FaultSpec` into
a model: every :class:`~repro.quant.layers.QuantizedComputeLayer` gets a
dedicated, independently-seeded weight-fault model, and — for conductance
*variation* on binary networks — every
:class:`~repro.quant.layers.SignActivation` gets an activation-noise hook
(the paper injects variation into normalized activations before the
``Sign``, Section IV-A-2).

:class:`MonteCarloCampaign` repeats an evaluation over ``n_runs`` simulated
chip instances (the paper uses 100) with independent fault realizations and
reports mean and standard deviation — the shaded bands of Figs. 5 and 6.

Attach amortization
-------------------
Fault patterns are a pure function of the cell coordinates: every hook an
attach installs derives from seeds drawn from ``SeedSequence(base_seed,
spawn_key=(scenario, run))``.  The campaign-level *program registry*
exploits that purity: the first time a (task, fault-kind) group's cells
are attached, the built hook set is **programmed** into a per-model LRU
registry keyed by the cell coordinates and fault configs, and any later
identical attach — e.g. the steady-state sweeps of a benchmark loop, or a
re-entered severity sweep — *skips* seed drawing and hook construction
entirely and re-installs the stored hooks (:meth:`FaultInjector.program`,
:meth:`~FaultInjector.program_batched`,
:meth:`~FaultInjector.program_scenario_batched`).  Because the frozen
weight-fault hooks keep their identity (stable ``fault_token`` /
value-based ``plan_signature``), the forward-plan cache hits the same key
and replays — a steady-state severity sweep does no Python work besides
RNG source steps and metric reduction.  Stateful activation-noise hooks
are *rebuilt* from their stored seeds on every install, so their streams
restart exactly as a fresh serial attach would.  ``REPRO_ATTACH_AMORTIZE=0``
(environment) or ``attach_amortize=False`` (API; CLI
``--no-attach-amortize``) disables the registry — bit-identical either
way.

Since the campaign-engine refactor, the campaign itself is a thin
*scheduler*: it flattens the (scenario × chip-run) grid into
:class:`~repro.faults.executor.WorkCell` units and hands them to
:func:`~repro.faults.executor.run_cells`, which executes them on a
``serial``, ``thread``, ``process``, or ``batched`` backend.  Every cell
derives all of its randomness from ``SeedSequence(base_seed,
spawn_key=(scenario, run))`` and evaluates under a scoped generator, so
campaign results are bit-identical across backends, worker counts, and
scheduling orders.  :meth:`MonteCarloCampaign.sweep` submits *all*
scenarios' cells as one grid, so parallel workers stay busy across
scenario boundaries and the ``batched`` backend can vectorize each
scenario's chips — and, with scenario batching (default), all severity
levels of the same fault kind at once — into a single stacked forward
(:meth:`FaultInjector.attach_batched`,
:meth:`FaultInjector.attach_scenario_batched`).
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from ..quant.layers import QuantLSTMCell, QuantizedComputeLayer, SignActivation
from ..tensor import plan as _plan
from .executor import EvalHandle, WorkCell, cell_rngs, run_cells
from .models import (
    ChipBatchedActivationNoise,
    ChipBatchedWeightFault,
    FaultSpec,
    ScenarioBatchedWeightFault,
)

#: Process-wide default for attach amortization (the program registry).
#: CI's third batched-identity run sets ``REPRO_ATTACH_AMORTIZE=0`` to
#: exercise every cell through the full attach path.
_AMORTIZE_DEFAULT = os.environ.get("REPRO_ATTACH_AMORTIZE", "1") != "0"

#: Programmed hook sets kept per model (LRU).  Entries rotate with the
#: (base_seed, coordinates, fault config) key, so the registry is bounded
#: to keep frozen fault patterns from accumulating across long campaigns.
MAX_PROGRAMS_PER_MODULE = 16


def attach_amortize_default() -> bool:
    """Ambient attach-amortization default (off under ``REPRO_ATTACH_AMORTIZE=0``)."""
    return _AMORTIZE_DEFAULT


@dataclass
class _FaultProgram:
    """One programmed hook set: the result of a full attach, stored for reuse.

    ``weight_hooks`` / ``hh_hooks`` are aligned with the injector's weight
    sites and hold the *same* frozen hook objects a full attach built —
    they are pure functions of their seeds (patterns frozen per shape), so
    re-installing the identical objects keeps their ``fault_token`` /
    value-based ``plan_signature`` stable and lets forward plans replay.
    ``act_factories`` is aligned with the sign-activation sites and holds
    rebuild closures instead: activation-noise hooks are *stateful* (their
    generators advance per forward, their MC children are spawned lazily),
    so every install rebuilds them from the stored seeds, restarting the
    streams exactly as a fresh serial attach would.
    """

    weight_hooks: List[Optional[object]]
    hh_hooks: List[Optional[object]]
    act_factories: List[Optional[Callable[[], object]]]


@dataclass
class ProgramStats:
    """Per-model program registry: stored hook sets + attach accounting.

    ``attached`` counts cells whose fault patterns were programmed by a
    full attach (seeds drawn, hooks built); ``skipped`` counts cells
    served from the registry with no attach work at all.  A steady-state
    amortized sweep increments only ``skipped``.
    """

    programs: "OrderedDict[tuple, _FaultProgram]" = field(
        default_factory=OrderedDict
    )
    max_programs: int = MAX_PROGRAMS_PER_MODULE
    attached: int = 0
    skipped: int = 0

    def fetch(self, key: tuple) -> Optional[_FaultProgram]:
        entry = self.programs.get(key)
        if entry is not None:
            self.programs.move_to_end(key)
        return entry

    def store(self, key: tuple, entry: _FaultProgram) -> None:
        self.programs[key] = entry
        while len(self.programs) > self.max_programs:
            self.programs.popitem(last=False)


_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def program_stats(model) -> ProgramStats:
    """The model's program registry (counters + stored hook sets), lazily."""
    stats = _PROGRAMS.get(model)
    if stats is None:
        stats = ProgramStats()
        _PROGRAMS[model] = stats
    return stats


def clear_programs(model=None) -> None:
    """Drop programmed hook sets for ``model`` (or every model when ``None``)."""
    if model is not None:
        _PROGRAMS.pop(model, None)
    else:
        _PROGRAMS.clear()


class FaultInjector:
    """Attach / detach fault hooks on a model for one chip instance."""

    def __init__(self, model: Module):
        self.model = model

    def _weight_sites(self) -> List[QuantizedComputeLayer]:
        return [
            m for m in self.model.modules() if isinstance(m, QuantizedComputeLayer)
        ]

    def _activation_sites(self) -> List[SignActivation]:
        return [m for m in self.model.modules() if isinstance(m, SignActivation)]

    def _stream_draws(
        self,
        spec: FaultSpec,
        weight_sites: Sequence[QuantizedComputeLayer],
        act_sites: Sequence[SignActivation],
    ) -> int:
        """Scalar seed draws one cell's fault stream makes under ``spec``.

        Mirrors the serial draw order exactly: one draw per weight site
        (made even when the variation routing skips the hook), one extra
        per LSTM cell whose hook *is* installed, and — for variation
        kinds — one per sign-activation site.  Knowing the count up front
        lets every attach flavor draw a whole stream's seeds in a single
        batched ``integers`` call (bit-identical to sequential scalar
        draws, including the generator's end state) instead of one Python
        round-trip per site.
        """
        has_sign_sites = bool(act_sites)
        draws = 0
        for layer in weight_sites:
            draws += 1
            if spec.is_variation and layer.weight_bits == 1 and has_sign_sites:
                continue  # hook skipped: no recurrent-matrix draw either
            if isinstance(layer, QuantLSTMCell):
                draws += 1
        if spec.is_variation:
            draws += len(act_sites)
        return draws

    @staticmethod
    def _draw_seeds(rng: np.random.Generator, n: int) -> List[int]:
        """All of one stream's layer seeds in one batched draw.

        ``rng.integers(0, 2**63, size=n)`` consumes the stream exactly as
        ``n`` sequential scalar draws would (same values, same end state),
        so batching never shifts the seed-stream contract.
        """
        return rng.integers(0, 2**63, size=n).tolist() if n else []

    def attach(self, spec: FaultSpec, rng: np.random.Generator) -> None:
        """Install hooks for ``spec`` using chip-specific randomness.

        Routing follows the paper: conductance variation (additive /
        multiplicative / uniform) targets multi-bit weights directly but is
        injected at the pre-sign activations of binary layers (Section
        IV-A-2); bit flips and stuck-at faults always target the stored
        weight codes.  In networks with binary weights but no sign
        activations (the PACT-activated U-Net), the variation falls back to
        the binary weight codes themselves — the conductance of every
        stored cell varies regardless of the activation function.
        """
        self.detach()
        if spec.kind == "none" or spec.level == 0.0:
            return
        self._attach_serial(spec, rng)

    def _attach_serial(
        self, spec: FaultSpec, rng: np.random.Generator
    ) -> _FaultProgram:
        """The serial attach body; returns the installed hook set."""
        weight_sites = self._weight_sites()
        act_sites = self._activation_sites()
        has_sign_sites = bool(act_sites)
        seeds = iter(
            self._draw_seeds(rng, self._stream_draws(spec, weight_sites, act_sites))
        )
        weight_hooks: List[Optional[object]] = []
        hh_hooks: List[Optional[object]] = []
        for layer in weight_sites:
            layer_seed = next(seeds)
            if spec.is_variation and layer.weight_bits == 1 and has_sign_sites:
                weight_hooks.append(None)
                hh_hooks.append(None)
                continue  # binary layers receive variation at activations
            hook = spec.build_weight_model(np.random.default_rng(layer_seed))
            layer.weight_fault = hook
            weight_hooks.append(hook)
            hh_hook = None
            if isinstance(layer, QuantLSTMCell):
                hh_hook = spec.build_weight_model(
                    np.random.default_rng(next(seeds))
                )
                layer.weight_fault_hh = hh_hook
            hh_hooks.append(hh_hook)
        act_factories: List[Optional[Callable[[], object]]] = []
        if spec.is_variation:
            for act in act_sites:
                act_seed = next(seeds)

                def factory(seed=act_seed, spec=spec):
                    return spec.build_activation_model(
                        np.random.default_rng(seed)
                    )

                act.pre_fault = factory()
                act_factories.append(factory)
        else:
            act_factories = [None] * len(act_sites)
        return _FaultProgram(weight_hooks, hh_hooks, act_factories)

    def attach_batched(
        self, spec: FaultSpec, rngs: Sequence[np.random.Generator]
    ) -> None:
        """Install stacked fault hooks for ``len(rngs)`` chips at once.

        The chip-batched counterpart of :meth:`attach` used by the
        ``batched`` executor backend: ``rngs[i]`` is chip ``i``'s
        cell-derived fault generator, and every per-layer seed is drawn
        from it in exactly the order :meth:`attach` draws — including the
        draw-then-skip for binary layers under variation and the extra
        recurrent-matrix draw for LSTM cells — so each chip's frozen
        patterns are bit-identical to a serial evaluation of that cell.
        """
        self.detach()
        if spec.kind == "none" or spec.level == 0.0:
            return
        self._attach_chips(spec, rngs)

    def _attach_chips(
        self, spec: FaultSpec, rngs: Sequence[np.random.Generator]
    ) -> _FaultProgram:
        """The chip-batched attach body; returns the installed hook set."""
        weight_sites = self._weight_sites()
        act_sites = self._activation_sites()
        has_sign_sites = bool(act_sites)
        n_draws = self._stream_draws(spec, weight_sites, act_sites)
        # One batched draw per chip stream; each stream's seeds come out in
        # the serial order, and streams are independent, so hoisting the
        # per-layer loop never changes a value.
        rows = [self._draw_seeds(rng, n_draws) for rng in rngs]
        cursor = 0
        weight_hooks: List[Optional[object]] = []
        hh_hooks: List[Optional[object]] = []
        for layer in weight_sites:
            seeds = [row[cursor] for row in rows]
            cursor += 1
            if spec.is_variation and layer.weight_bits == 1 and has_sign_sites:
                weight_hooks.append(None)
                hh_hooks.append(None)
                continue  # binary layers receive variation at activations
            hook = ChipBatchedWeightFault(spec, seeds)
            layer.weight_fault = hook
            weight_hooks.append(hook)
            hh_hook = None
            if isinstance(layer, QuantLSTMCell):
                hh_seeds = [row[cursor] for row in rows]
                cursor += 1
                hh_hook = ChipBatchedWeightFault(spec, hh_seeds)
                layer.weight_fault_hh = hh_hook
            hh_hooks.append(hh_hook)
        act_factories: List[Optional[Callable[[], object]]] = []
        if spec.is_variation:
            for act in act_sites:
                act_seeds = [row[cursor] for row in rows]
                cursor += 1

                def factory(seeds=act_seeds, spec=spec):
                    return ChipBatchedActivationNoise(
                        [
                            spec.build_activation_model(
                                np.random.default_rng(seed)
                            )
                            for seed in seeds
                        ]
                    )

                act.pre_fault = factory()
                act_factories.append(factory)
        else:
            act_factories = [None] * len(act_sites)
        return _FaultProgram(weight_hooks, hh_hooks, act_factories)

    def attach_scenario_batched(
        self,
        specs: Sequence[FaultSpec],
        rng_groups: Sequence[Sequence[np.random.Generator]],
    ) -> None:
        """Install stacked hooks for several severity levels of one kind.

        The scenario-batched counterpart of :meth:`attach_batched`:
        ``specs[k]`` is scenario ``k``'s fault spec (all the same kind,
        all non-degenerate) and ``rng_groups[k]`` its chips' cell-derived
        fault generators.  Per-layer seeds are drawn from each generator
        in exactly the order :meth:`attach` draws them serially — every
        generator is only ever consumed for its own cell, so stacking
        scenarios changes nothing about any individual stream — and the
        hooks hold one frozen pattern per (scenario, chip), stacked
        scenario-major along the instance axis.
        """
        self.detach()
        self._validate_scenarios(specs, rng_groups)
        self._attach_scenarios(specs, rng_groups)

    @staticmethod
    def _validate_scenarios(
        specs: Sequence[FaultSpec], groups: Sequence[Sequence]
    ) -> None:
        if len(specs) != len(groups):
            raise ValueError(
                f"need one rng group per spec, got {len(specs)} specs and "
                f"{len(groups)} groups"
            )
        kinds = {spec.kind for spec in specs}
        if len(kinds) > 1:
            raise ValueError(
                f"scenario batching stacks one fault kind, got {sorted(kinds)}"
            )
        if any(spec.kind == "none" or spec.level == 0.0 for spec in specs):
            raise ValueError(
                "scenario batching needs non-degenerate scenarios "
                "(fault-free cells evaluate serially)"
            )

    def _attach_scenarios(
        self,
        specs: Sequence[FaultSpec],
        rng_groups: Sequence[Sequence[np.random.Generator]],
    ) -> _FaultProgram:
        """The scenario-batched attach body; returns the installed hook set."""
        weight_sites = self._weight_sites()
        act_sites = self._activation_sites()
        is_variation = specs[0].is_variation
        has_sign_sites = bool(act_sites)
        n_draws = self._stream_draws(specs[0], weight_sites, act_sites)
        # Per-stream batched draws, scenario group structure preserved.
        row_groups = [
            [self._draw_seeds(rng, n_draws) for rng in rngs]
            for rngs in rng_groups
        ]
        cursor = 0
        weight_hooks: List[Optional[object]] = []
        hh_hooks: List[Optional[object]] = []
        for layer in weight_sites:
            seed_groups = [
                [row[cursor] for row in rows] for rows in row_groups
            ]
            cursor += 1
            if is_variation and layer.weight_bits == 1 and has_sign_sites:
                weight_hooks.append(None)
                hh_hooks.append(None)
                continue  # binary layers receive variation at activations
            hook = ScenarioBatchedWeightFault(specs, seed_groups)
            layer.weight_fault = hook
            weight_hooks.append(hook)
            hh_hook = None
            if isinstance(layer, QuantLSTMCell):
                hh_groups = [
                    [row[cursor] for row in rows] for rows in row_groups
                ]
                cursor += 1
                hh_hook = ScenarioBatchedWeightFault(specs, hh_groups)
                layer.weight_fault_hh = hh_hook
            hh_hooks.append(hh_hook)
        act_factories: List[Optional[Callable[[], object]]] = []
        if is_variation:
            frozen_specs = list(specs)
            for act in act_sites:
                act_groups = [
                    [row[cursor] for row in rows] for rows in row_groups
                ]
                cursor += 1

                def factory(groups=act_groups, specs=frozen_specs):
                    # ChipBatchedActivationNoise is already per-instance:
                    # each (scenario, chip) gets its own serial model
                    # carrying that scenario's severity, scenario-major.
                    return ChipBatchedActivationNoise(
                        [
                            spec.build_activation_model(
                                np.random.default_rng(seed)
                            )
                            for spec, seeds in zip(specs, groups)
                            for seed in seeds
                        ]
                    )

                act.pre_fault = factory()
                act_factories.append(factory)
        else:
            act_factories = [None] * len(act_sites)
        return _FaultProgram(weight_hooks, hh_hooks, act_factories)

    # ------------------------------------------------------------------
    # Attach amortization: the campaign-level program registry
    # ------------------------------------------------------------------
    def _install_program(self, program: _FaultProgram) -> bool:
        """Re-install a programmed hook set; False if the model changed shape."""
        weight_sites = self._weight_sites()
        act_sites = self._activation_sites()
        if len(program.weight_hooks) != len(weight_sites) or len(
            program.act_factories
        ) != len(act_sites):
            return False  # structural change since programming: re-attach
        for layer, hook, hh_hook in zip(
            weight_sites, program.weight_hooks, program.hh_hooks
        ):
            layer.weight_fault = hook
            if isinstance(layer, QuantLSTMCell):
                layer.weight_fault_hh = hh_hook
        for act, factory in zip(act_sites, program.act_factories):
            # Stateful activation-noise hooks restart from their seeds.
            act.pre_fault = factory() if factory is not None else None
        return True

    def _programmed(self, key: tuple, attach_body) -> bool:
        """Serve ``key`` from the registry, or run ``attach_body`` and store.

        Registry bookkeeping and skip-installs are profiled under the
        ``program`` stage; a miss runs the full attach under the usual
        ``attach`` stage, so ``--profile`` attributes skipped cells to
        programming rather than inflating attach.
        """
        stats = program_stats(self.model)
        with _plan.stage("program"):
            entry = stats.fetch(key)
            if entry is not None and self._install_program(entry):
                stats.skipped += 1
                return True
        with _plan.stage("attach"):
            self.detach()
            entry = attach_body()
        with _plan.stage("program"):
            stats.store(key, entry)
            stats.attached += 1
        return False

    def program(
        self,
        spec: FaultSpec,
        base_seed: int,
        scenario_index: int,
        run_index: int,
    ) -> bool:
        """Serial :meth:`attach` through the program registry.

        Fault patterns are a pure function of the cell coordinates, so the
        registry keys on ``(base_seed, scenario, run, fault config)``: the
        first visit derives the cell's fault stream and runs a full attach
        (programming the built hooks), later identical visits re-install
        the stored hooks without drawing a single seed.  Returns ``True``
        when the attach was skipped.
        """
        if spec.kind == "none" or spec.level == 0.0:
            self.detach()
            return False
        key = (
            "cell", base_seed, scenario_index, run_index,
            spec.kind, spec.level, spec.stuck_to,
        )
        return self._programmed(
            key,
            lambda: self._attach_serial(
                spec, cell_rngs(base_seed, scenario_index, run_index)[0]
            ),
        )

    def program_batched(
        self,
        spec: FaultSpec,
        base_seed: int,
        scenario_index: int,
        run_indices: Sequence[int],
    ) -> bool:
        """:meth:`attach_batched` through the program registry."""
        if spec.kind == "none" or spec.level == 0.0:
            self.detach()
            return False
        key = (
            "chips", base_seed, scenario_index, tuple(run_indices),
            spec.kind, spec.level, spec.stuck_to,
        )
        return self._programmed(
            key,
            lambda: self._attach_chips(
                spec,
                [
                    cell_rngs(base_seed, scenario_index, run)[0]
                    for run in run_indices
                ],
            ),
        )

    def program_scenario_batched(
        self,
        specs: Sequence[FaultSpec],
        base_seed: int,
        scenario_indices: Sequence[int],
        run_index_groups: Sequence[Sequence[int]],
    ) -> bool:
        """:meth:`attach_scenario_batched` through the program registry."""
        self._validate_scenarios(specs, run_index_groups)
        key = (
            "scen", base_seed, tuple(scenario_indices),
            tuple(tuple(runs) for runs in run_index_groups),
            tuple((s.kind, s.level, s.stuck_to) for s in specs),
        )
        return self._programmed(
            key,
            lambda: self._attach_scenarios(
                specs,
                [
                    [
                        cell_rngs(base_seed, scenario, run)[0]
                        for run in runs
                    ]
                    for scenario, runs in zip(
                        scenario_indices, run_index_groups
                    )
                ],
            ),
        )

    def detach(self) -> None:
        """Remove all fault hooks (restore the ideal chip)."""
        for layer in self._weight_sites():
            layer.weight_fault = None
            if isinstance(layer, QuantLSTMCell):
                layer.weight_fault_hh = None
        for act in self._activation_sites():
            act.pre_fault = None

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()


@dataclass
class CampaignResult:
    """Aggregate of one Monte Carlo fault campaign."""

    spec: FaultSpec
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std())

    @property
    def n_runs(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.spec.describe()}, "
            f"mean={self.mean:.4f}, std={self.std:.4f}, runs={self.n_runs})"
        )


class MonteCarloCampaign:
    """Monte Carlo fault simulation: n chip instances per fault scenario.

    Parameters
    ----------
    model:
        The deployed (trained) network.
    evaluator:
        Callable ``model -> float`` computing the task metric (accuracy,
        mIoU, RMSE ...) on the test set.  It is invoked once per simulated
        chip with fault hooks installed.
    n_runs:
        Chip instances per scenario (paper: 100).
    base_seed:
        Campaign-level seed; run ``i`` of scenario ``s`` derives its chip
        randomness from ``(base_seed, s, i)`` so campaigns are reproducible
        and scenarios are independent.
    executor:
        Execution backend: ``"serial"`` (default), ``"thread"``,
        ``"process"``, or ``"batched"`` (all chips of a scenario in one
        vectorized forward).  All backends produce bit-identical results.
    workers:
        Worker count for the parallel backends.
    handle:
        Picklable :class:`~repro.faults.executor.EvalHandle` recreating
        ``(model, evaluator)`` in workers; required for ``"process"``.
    chip_limit:
        ``"batched"`` only: maximum chips stacked per vectorized pass
        (None = a scenario's full chip count); caps the activation
        working set without changing results.
    mc_batched:
        ``"batched"`` only: also stack the Monte Carlo sample axis of
        Bayesian evaluators into the same pass (None = on).  Bit-identical
        to the looped reference either way.
    scenario_batched:
        ``"batched"`` only: also stack consecutive same-kind fault-severity
        scenarios of a sweep along a scenario-major sub-axis, so the whole
        severity sweep runs in one pass per (task, fault-kind) group
        (None = on).  Bit-identical to the looped reference either way.
    scenario_limit:
        ``"batched"`` only: maximum scenarios stacked per vectorized pass
        (None = the whole same-kind group); the scenario-axis counterpart
        of ``chip_limit``, capping the working set without changing
        results.
    plan:
        Route gradient-free evaluation forwards through trace-compiled
        plans (None = on, every backend; see :mod:`repro.tensor.plan`):
        the first forward per (shape, layout, weights, hooks) key traces
        the flat numpy kernel sequence, later ones replay it with reused
        buffers.  Bit-identical either way; ``plan=False`` (CLI
        ``--no-plan``) forces the interpreted path.
    plan_opt:
        Run the trace-time IR optimizer over every plan this campaign
        traces (:mod:`repro.tensor.plan_passes`: constant folding,
        dead-step elimination, kernel fusion).  ``None`` inherits the
        ambient default (on unless ``REPRO_PLAN_OPT=0``); ``False`` (CLI
        ``--no-plan-opt``) replays the raw traced step list.
        Bit-identical either way.
    attach_amortize:
        Serve repeated identical cells from the campaign-level program
        registry: each (cell coordinates, fault config) group programs
        its fault patterns ONCE and later visits skip attach entirely,
        re-installing the stored hooks (see :meth:`FaultInjector.program`).
        ``None`` inherits the ambient default (on unless
        ``REPRO_ATTACH_AMORTIZE=0``); ``False`` (CLI
        ``--no-attach-amortize``) runs a full attach per cell.
        Bit-identical either way.
    """

    def __init__(
        self,
        model: Optional[Module],
        evaluator: Optional[Callable[[Module], float]],
        n_runs: int = 100,
        base_seed: int = 0,
        executor: str = "serial",
        workers: Optional[int] = None,
        handle: Optional[EvalHandle] = None,
        chip_limit: Optional[int] = None,
        mc_batched: Optional[bool] = None,
        scenario_batched: Optional[bool] = None,
        scenario_limit: Optional[int] = None,
        plan: Optional[bool] = None,
        plan_opt: Optional[bool] = None,
        attach_amortize: Optional[bool] = None,
    ):
        self.model = model
        self.evaluator = evaluator
        self.n_runs = n_runs
        self.base_seed = base_seed
        self.executor = executor
        self.workers = workers
        self.handle = handle
        self.chip_limit = chip_limit
        self.mc_batched = mc_batched
        self.scenario_batched = scenario_batched
        self.scenario_limit = scenario_limit
        self.plan = plan
        self.plan_opt = plan_opt
        self.attach_amortize = attach_amortize

    def _cells(self, spec: FaultSpec, scenario_index: int) -> List[WorkCell]:
        """Flatten one scenario into work cells (fault-free → one cell)."""
        n_effective = 1 if spec.kind == "none" or spec.level == 0.0 else self.n_runs
        return [WorkCell(scenario_index, run, spec) for run in range(n_effective)]

    def _execute(
        self,
        cells: Sequence[WorkCell],
        on_cell_done: Optional[Callable[[int, int], None]] = None,
    ) -> np.ndarray:
        return run_cells(
            cells,
            self.base_seed,
            model=self.model,
            evaluator=self.evaluator,
            handle=self.handle,
            executor=self.executor,
            workers=self.workers,
            on_cell_done=on_cell_done,
            chip_limit=self.chip_limit,
            mc_batched=self.mc_batched,
            scenario_batched=self.scenario_batched,
            scenario_limit=self.scenario_limit,
            plan=self.plan,
            plan_opt=self.plan_opt,
            attach_amortize=self.attach_amortize,
        )

    def _package(self, spec: FaultSpec, values: np.ndarray) -> CampaignResult:
        """Broadcast a short-circuited scenario back to ``n_runs`` values."""
        if len(values) < self.n_runs:
            values = np.full(self.n_runs, values[0] if len(values) else np.nan)
        return CampaignResult(spec=spec, values=values[: self.n_runs])

    def run(self, spec: FaultSpec, scenario_index: int = 0) -> CampaignResult:
        """Evaluate one fault scenario over ``n_runs`` chip instances."""
        values = self._execute(self._cells(spec, scenario_index))
        return self._package(spec, values)

    def sweep(
        self,
        specs: Sequence[FaultSpec],
        progress: Optional[Callable[[str], None]] = None,
        scenario_indices: Optional[Sequence[int]] = None,
        on_cell_done: Optional[Callable[[int, int], None]] = None,
    ) -> List[CampaignResult]:
        """Run a list of scenarios (e.g. increasing fault levels).

        All scenarios' cells are submitted as a single flat grid so that
        parallel workers never idle at scenario boundaries.
        ``scenario_indices`` pins each spec's seed-deriving index (used by
        resumed sweeps where some scenarios were served from cache, so the
        remaining ones must keep their original coordinates).
        """
        if scenario_indices is None:
            scenario_indices = range(len(specs))
        grid: List[WorkCell] = []
        slices: List[slice] = []
        for spec, idx in zip(specs, scenario_indices):
            cells = self._cells(spec, idx)
            slices.append(slice(len(grid), len(grid) + len(cells)))
            grid.extend(cells)
        values = self._execute(grid, on_cell_done=on_cell_done)
        results = []
        for spec, sl in zip(specs, slices):
            result = self._package(spec, values[sl])
            if progress is not None:
                progress(f"{spec.describe()}: {result.mean:.4f} ± {result.std:.4f}")
            results.append(result)
        return results


def bitflip_sweep(levels: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for a bit-flip-rate sweep (Figs. 5/6 left panels)."""
    return [FaultSpec(kind="bitflip" if l > 0 else "none", level=l) for l in levels]


def additive_sweep(sigmas: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for an additive-variation sweep (Figs. 5/6 right panels)."""
    return [FaultSpec(kind="additive" if s > 0 else "none", level=s) for s in sigmas]


def multiplicative_sweep(sigmas: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for a multiplicative-variation sweep (Fig. 6b last panel)."""
    return [
        FaultSpec(kind="multiplicative" if s > 0 else "none", level=s) for s in sigmas
    ]


def uniform_sweep(strengths: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for the LSTM uniform-noise experiment."""
    return [FaultSpec(kind="uniform" if s > 0 else "none", level=s) for s in strengths]
