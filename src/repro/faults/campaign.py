"""Fault-injection orchestration and Monte Carlo campaigns.

:class:`FaultInjector` wires a :class:`~repro.faults.models.FaultSpec` into
a model: every :class:`~repro.quant.layers.QuantizedComputeLayer` gets a
dedicated, independently-seeded weight-fault model, and — for conductance
*variation* on binary networks — every
:class:`~repro.quant.layers.SignActivation` gets an activation-noise hook
(the paper injects variation into normalized activations before the
``Sign``, Section IV-A-2).

:class:`MonteCarloCampaign` repeats an evaluation over ``n_runs`` simulated
chip instances (the paper uses 100) with independent fault realizations and
reports mean and standard deviation — the shaded bands of Figs. 5 and 6.

Since the campaign-engine refactor, the campaign itself is a thin
*scheduler*: it flattens the (scenario × chip-run) grid into
:class:`~repro.faults.executor.WorkCell` units and hands them to
:func:`~repro.faults.executor.run_cells`, which executes them on a
``serial``, ``thread``, ``process``, or ``batched`` backend.  Every cell
derives all of its randomness from ``SeedSequence(base_seed,
spawn_key=(scenario, run))`` and evaluates under a scoped generator, so
campaign results are bit-identical across backends, worker counts, and
scheduling orders.  :meth:`MonteCarloCampaign.sweep` submits *all*
scenarios' cells as one grid, so parallel workers stay busy across
scenario boundaries and the ``batched`` backend can vectorize each
scenario's chips — and, with scenario batching (default), all severity
levels of the same fault kind at once — into a single stacked forward
(:meth:`FaultInjector.attach_batched`,
:meth:`FaultInjector.attach_scenario_batched`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..nn.module import Module
from ..quant.layers import QuantLSTMCell, QuantizedComputeLayer, SignActivation
from .executor import EvalHandle, WorkCell, run_cells
from .models import (
    ChipBatchedActivationNoise,
    ChipBatchedWeightFault,
    FaultSpec,
    ScenarioBatchedWeightFault,
)


class FaultInjector:
    """Attach / detach fault hooks on a model for one chip instance."""

    def __init__(self, model: Module):
        self.model = model

    def _weight_sites(self) -> List[QuantizedComputeLayer]:
        return [
            m for m in self.model.modules() if isinstance(m, QuantizedComputeLayer)
        ]

    def _activation_sites(self) -> List[SignActivation]:
        return [m for m in self.model.modules() if isinstance(m, SignActivation)]

    def attach(self, spec: FaultSpec, rng: np.random.Generator) -> None:
        """Install hooks for ``spec`` using chip-specific randomness.

        Routing follows the paper: conductance variation (additive /
        multiplicative / uniform) targets multi-bit weights directly but is
        injected at the pre-sign activations of binary layers (Section
        IV-A-2); bit flips and stuck-at faults always target the stored
        weight codes.  In networks with binary weights but no sign
        activations (the PACT-activated U-Net), the variation falls back to
        the binary weight codes themselves — the conductance of every
        stored cell varies regardless of the activation function.
        """
        self.detach()
        if spec.kind == "none" or spec.level == 0.0:
            return
        has_sign_sites = bool(self._activation_sites())
        for i, layer in enumerate(self._weight_sites()):
            layer_rng = np.random.default_rng(rng.integers(0, 2**63))
            if spec.is_variation and layer.weight_bits == 1 and has_sign_sites:
                continue  # binary layers receive variation at activations
            layer.weight_fault = spec.build_weight_model(layer_rng)
            if isinstance(layer, QuantLSTMCell):
                hh_rng = np.random.default_rng(rng.integers(0, 2**63))
                layer.weight_fault_hh = spec.build_weight_model(hh_rng)
        if spec.is_variation:
            for act in self._activation_sites():
                act_rng = np.random.default_rng(rng.integers(0, 2**63))
                act.pre_fault = spec.build_activation_model(act_rng)

    def attach_batched(
        self, spec: FaultSpec, rngs: Sequence[np.random.Generator]
    ) -> None:
        """Install stacked fault hooks for ``len(rngs)`` chips at once.

        The chip-batched counterpart of :meth:`attach` used by the
        ``batched`` executor backend: ``rngs[i]`` is chip ``i``'s
        cell-derived fault generator, and every per-layer seed is drawn
        from it in exactly the order :meth:`attach` draws — including the
        draw-then-skip for binary layers under variation and the extra
        recurrent-matrix draw for LSTM cells — so each chip's frozen
        patterns are bit-identical to a serial evaluation of that cell.
        """
        self.detach()
        if spec.kind == "none" or spec.level == 0.0:
            return
        has_sign_sites = bool(self._activation_sites())
        for layer in self._weight_sites():
            seeds = [int(rng.integers(0, 2**63)) for rng in rngs]
            if spec.is_variation and layer.weight_bits == 1 and has_sign_sites:
                continue  # binary layers receive variation at activations
            layer.weight_fault = ChipBatchedWeightFault(spec, seeds)
            if isinstance(layer, QuantLSTMCell):
                hh_seeds = [int(rng.integers(0, 2**63)) for rng in rngs]
                layer.weight_fault_hh = ChipBatchedWeightFault(spec, hh_seeds)
        if spec.is_variation:
            for act in self._activation_sites():
                act_seeds = [int(rng.integers(0, 2**63)) for rng in rngs]
                act.pre_fault = ChipBatchedActivationNoise(
                    [
                        spec.build_activation_model(np.random.default_rng(seed))
                        for seed in act_seeds
                    ]
                )

    def attach_scenario_batched(
        self,
        specs: Sequence[FaultSpec],
        rng_groups: Sequence[Sequence[np.random.Generator]],
    ) -> None:
        """Install stacked hooks for several severity levels of one kind.

        The scenario-batched counterpart of :meth:`attach_batched`:
        ``specs[k]`` is scenario ``k``'s fault spec (all the same kind,
        all non-degenerate) and ``rng_groups[k]`` its chips' cell-derived
        fault generators.  Per-layer seeds are drawn from each generator
        in exactly the order :meth:`attach` draws them serially — every
        generator is only ever consumed for its own cell, so stacking
        scenarios changes nothing about any individual stream — and the
        hooks hold one frozen pattern per (scenario, chip), stacked
        scenario-major along the instance axis.
        """
        self.detach()
        if len(specs) != len(rng_groups):
            raise ValueError(
                f"need one rng group per spec, got {len(specs)} specs and "
                f"{len(rng_groups)} groups"
            )
        kinds = {spec.kind for spec in specs}
        if len(kinds) > 1:
            raise ValueError(
                f"scenario batching stacks one fault kind, got {sorted(kinds)}"
            )
        if any(spec.kind == "none" or spec.level == 0.0 for spec in specs):
            raise ValueError(
                "scenario batching needs non-degenerate scenarios "
                "(fault-free cells evaluate serially)"
            )
        is_variation = specs[0].is_variation
        has_sign_sites = bool(self._activation_sites())
        for layer in self._weight_sites():
            seed_groups = [
                [int(rng.integers(0, 2**63)) for rng in rngs]
                for rngs in rng_groups
            ]
            if is_variation and layer.weight_bits == 1 and has_sign_sites:
                continue  # binary layers receive variation at activations
            layer.weight_fault = ScenarioBatchedWeightFault(specs, seed_groups)
            if isinstance(layer, QuantLSTMCell):
                hh_groups = [
                    [int(rng.integers(0, 2**63)) for rng in rngs]
                    for rngs in rng_groups
                ]
                layer.weight_fault_hh = ScenarioBatchedWeightFault(
                    specs, hh_groups
                )
        if is_variation:
            for act in self._activation_sites():
                # ChipBatchedActivationNoise is already per-instance: each
                # (scenario, chip) gets its own serial model carrying that
                # scenario's severity, flattened scenario-major.
                act.pre_fault = ChipBatchedActivationNoise(
                    [
                        spec.build_activation_model(
                            np.random.default_rng(int(rng.integers(0, 2**63)))
                        )
                        for spec, rngs in zip(specs, rng_groups)
                        for rng in rngs
                    ]
                )

    def detach(self) -> None:
        """Remove all fault hooks (restore the ideal chip)."""
        for layer in self._weight_sites():
            layer.weight_fault = None
            if isinstance(layer, QuantLSTMCell):
                layer.weight_fault_hh = None
        for act in self._activation_sites():
            act.pre_fault = None

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc) -> None:
        self.detach()


@dataclass
class CampaignResult:
    """Aggregate of one Monte Carlo fault campaign."""

    spec: FaultSpec
    values: np.ndarray

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def std(self) -> float:
        return float(self.values.std())

    @property
    def n_runs(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.spec.describe()}, "
            f"mean={self.mean:.4f}, std={self.std:.4f}, runs={self.n_runs})"
        )


class MonteCarloCampaign:
    """Monte Carlo fault simulation: n chip instances per fault scenario.

    Parameters
    ----------
    model:
        The deployed (trained) network.
    evaluator:
        Callable ``model -> float`` computing the task metric (accuracy,
        mIoU, RMSE ...) on the test set.  It is invoked once per simulated
        chip with fault hooks installed.
    n_runs:
        Chip instances per scenario (paper: 100).
    base_seed:
        Campaign-level seed; run ``i`` of scenario ``s`` derives its chip
        randomness from ``(base_seed, s, i)`` so campaigns are reproducible
        and scenarios are independent.
    executor:
        Execution backend: ``"serial"`` (default), ``"thread"``,
        ``"process"``, or ``"batched"`` (all chips of a scenario in one
        vectorized forward).  All backends produce bit-identical results.
    workers:
        Worker count for the parallel backends.
    handle:
        Picklable :class:`~repro.faults.executor.EvalHandle` recreating
        ``(model, evaluator)`` in workers; required for ``"process"``.
    chip_limit:
        ``"batched"`` only: maximum chips stacked per vectorized pass
        (None = a scenario's full chip count); caps the activation
        working set without changing results.
    mc_batched:
        ``"batched"`` only: also stack the Monte Carlo sample axis of
        Bayesian evaluators into the same pass (None = on).  Bit-identical
        to the looped reference either way.
    scenario_batched:
        ``"batched"`` only: also stack consecutive same-kind fault-severity
        scenarios of a sweep along a scenario-major sub-axis, so the whole
        severity sweep runs in one pass per (task, fault-kind) group
        (None = on).  Bit-identical to the looped reference either way.
    scenario_limit:
        ``"batched"`` only: maximum scenarios stacked per vectorized pass
        (None = the whole same-kind group); the scenario-axis counterpart
        of ``chip_limit``, capping the working set without changing
        results.
    plan:
        Route gradient-free evaluation forwards through trace-compiled
        plans (None = on, every backend; see :mod:`repro.tensor.plan`):
        the first forward per (shape, layout, weights, hooks) key traces
        the flat numpy kernel sequence, later ones replay it with reused
        buffers.  Bit-identical either way; ``plan=False`` (CLI
        ``--no-plan``) forces the interpreted path.
    plan_opt:
        Run the trace-time IR optimizer over every plan this campaign
        traces (:mod:`repro.tensor.plan_passes`: constant folding,
        dead-step elimination, kernel fusion).  ``None`` inherits the
        ambient default (on unless ``REPRO_PLAN_OPT=0``); ``False`` (CLI
        ``--no-plan-opt``) replays the raw traced step list.
        Bit-identical either way.
    """

    def __init__(
        self,
        model: Optional[Module],
        evaluator: Optional[Callable[[Module], float]],
        n_runs: int = 100,
        base_seed: int = 0,
        executor: str = "serial",
        workers: Optional[int] = None,
        handle: Optional[EvalHandle] = None,
        chip_limit: Optional[int] = None,
        mc_batched: Optional[bool] = None,
        scenario_batched: Optional[bool] = None,
        scenario_limit: Optional[int] = None,
        plan: Optional[bool] = None,
        plan_opt: Optional[bool] = None,
    ):
        self.model = model
        self.evaluator = evaluator
        self.n_runs = n_runs
        self.base_seed = base_seed
        self.executor = executor
        self.workers = workers
        self.handle = handle
        self.chip_limit = chip_limit
        self.mc_batched = mc_batched
        self.scenario_batched = scenario_batched
        self.scenario_limit = scenario_limit
        self.plan = plan
        self.plan_opt = plan_opt

    def _cells(self, spec: FaultSpec, scenario_index: int) -> List[WorkCell]:
        """Flatten one scenario into work cells (fault-free → one cell)."""
        n_effective = 1 if spec.kind == "none" or spec.level == 0.0 else self.n_runs
        return [WorkCell(scenario_index, run, spec) for run in range(n_effective)]

    def _execute(
        self,
        cells: Sequence[WorkCell],
        on_cell_done: Optional[Callable[[int, int], None]] = None,
    ) -> np.ndarray:
        return run_cells(
            cells,
            self.base_seed,
            model=self.model,
            evaluator=self.evaluator,
            handle=self.handle,
            executor=self.executor,
            workers=self.workers,
            on_cell_done=on_cell_done,
            chip_limit=self.chip_limit,
            mc_batched=self.mc_batched,
            scenario_batched=self.scenario_batched,
            scenario_limit=self.scenario_limit,
            plan=self.plan,
            plan_opt=self.plan_opt,
        )

    def _package(self, spec: FaultSpec, values: np.ndarray) -> CampaignResult:
        """Broadcast a short-circuited scenario back to ``n_runs`` values."""
        if len(values) < self.n_runs:
            values = np.full(self.n_runs, values[0] if len(values) else np.nan)
        return CampaignResult(spec=spec, values=values[: self.n_runs])

    def run(self, spec: FaultSpec, scenario_index: int = 0) -> CampaignResult:
        """Evaluate one fault scenario over ``n_runs`` chip instances."""
        values = self._execute(self._cells(spec, scenario_index))
        return self._package(spec, values)

    def sweep(
        self,
        specs: Sequence[FaultSpec],
        progress: Optional[Callable[[str], None]] = None,
        scenario_indices: Optional[Sequence[int]] = None,
        on_cell_done: Optional[Callable[[int, int], None]] = None,
    ) -> List[CampaignResult]:
        """Run a list of scenarios (e.g. increasing fault levels).

        All scenarios' cells are submitted as a single flat grid so that
        parallel workers never idle at scenario boundaries.
        ``scenario_indices`` pins each spec's seed-deriving index (used by
        resumed sweeps where some scenarios were served from cache, so the
        remaining ones must keep their original coordinates).
        """
        if scenario_indices is None:
            scenario_indices = range(len(specs))
        grid: List[WorkCell] = []
        slices: List[slice] = []
        for spec, idx in zip(specs, scenario_indices):
            cells = self._cells(spec, idx)
            slices.append(slice(len(grid), len(grid) + len(cells)))
            grid.extend(cells)
        values = self._execute(grid, on_cell_done=on_cell_done)
        results = []
        for spec, sl in zip(specs, slices):
            result = self._package(spec, values[sl])
            if progress is not None:
                progress(f"{spec.describe()}: {result.mean:.4f} ± {result.std:.4f}")
            results.append(result)
        return results


def bitflip_sweep(levels: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for a bit-flip-rate sweep (Figs. 5/6 left panels)."""
    return [FaultSpec(kind="bitflip" if l > 0 else "none", level=l) for l in levels]


def additive_sweep(sigmas: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for an additive-variation sweep (Figs. 5/6 right panels)."""
    return [FaultSpec(kind="additive" if s > 0 else "none", level=s) for s in sigmas]


def multiplicative_sweep(sigmas: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for a multiplicative-variation sweep (Fig. 6b last panel)."""
    return [
        FaultSpec(kind="multiplicative" if s > 0 else "none", level=s) for s in sigmas
    ]


def uniform_sweep(strengths: Sequence[float]) -> List[FaultSpec]:
    """Fault specs for the LSTM uniform-noise experiment."""
    return [FaultSpec(kind="uniform" if s > 0 else "none", level=s) for s in strengths]
