"""NVM non-ideality models (Section IV-A-2 of the paper).

The paper abstracts circuit-level non-idealities into algorithmic noise
models, following [16]:

* **conductance variation** (manufacturing + thermal) — additive noise
  ``N(0, sigma)`` and multiplicative noise ``1 + N(0, sigma)``.  For
  networks with multi-bit weights the noise is injected into the weights;
  for binary networks it is injected into the normalized activations before
  the ``Sign(.)`` function.
* **programming errors / retention faults** — random bit flips in the
  quantized parameter codes, re-drawn for each simulated chip instance.
* **uniform noise** of varying strength (LSTM experiment).

All models here are *deterministic per chip instance*: a model instance is
constructed with its own RNG and freezes the fault pattern for a given
weight shape on first use, so every forward pass within one Monte Carlo run
sees the same (faulty) chip, while activation-site noise — whose realization
depends on the data flowing through — is drawn fresh per pass from the same
chip-specific stream.

Additive noise scales are expressed in units of each layer's weight scale
(``sigma * qmax`` in code space, i.e. ``sigma * max|w|`` in weight space)
for multi-bit weights and directly in units of the unit-variance normalized
activations for binary networks, so a given ``sigma`` is comparable across
layers and topologies.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..quant.functional import QuantizedWeight
from ..tensor.chipbatch import active_sample_count, current_mc_sample

# Process-wide monotonic tokens identifying fault-hook instances.  The
# deployment-frozen quantization cache keys faulty weights on this token:
# unlike ``id()`` a token is never recycled, so a detached hook can never be
# confused with a freshly attached one.
_FAULT_TOKENS = itertools.count(1)


class WeightFaultModel:
    """Base class: perturb quantized weight codes, frozen per chip."""

    def __init__(self, rng: np.random.Generator):
        self.rng = rng
        self.fault_token = next(_FAULT_TOKENS)
        self._cache: Dict[Tuple[int, ...], np.ndarray] = {}

    def __call__(self, qw: QuantizedWeight) -> np.ndarray:
        key = self._cache_key(qw)
        if key not in self._cache:
            self._cache[key] = self._generate(qw)
        return self._apply(qw, self._cache[key])

    def config_key(self) -> tuple:
        """Value-determining configuration (class + severity scalars).

        Subclasses append their severity parameters; together with a seed
        this fully determines the frozen pattern, which is what lets the
        forward-plan cache key seed-frozen batched hooks by value (see
        :meth:`ChipBatchedWeightFault.plan_signature`).
        """
        return (type(self).__name__,)

    def plan_signature(self) -> tuple:
        """Forward-plan cache signature of this hook.

        A serial hook owns a live generator whose state the planner cannot
        fingerprint, so its identity is the unique ``fault_token`` — every
        newly attached hook forces a re-trace, and the frozen pattern it
        generates is safely captured as a plan constant for that key.
        """
        return ("wf", self.fault_token)

    def _cache_key(self, qw: QuantizedWeight) -> Tuple[int, ...]:
        # One frozen pattern per weight shape+bits.  The injector attaches a
        # dedicated model instance to every layer hook, so a cache never
        # serves two different weight tensors of the same shape.
        return (qw.bits,) + tuple(qw.codes.shape)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        raise NotImplementedError

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Chip-batched path (the campaign engine's ``batched`` executor)
    # ------------------------------------------------------------------
    def generate_batch(
        self, qw: QuantizedWeight, n_chips: int, seeds: Sequence[int]
    ) -> np.ndarray:
        """Stacked frozen patterns for ``n_chips`` chips, one per seed.

        Chip ``i``'s slice is generated from ``default_rng(seeds[i])`` with
        exactly the draws :meth:`_generate` makes serially, so the batched
        engine reproduces the serial engine's fault realizations bit for
        bit.  Returns ``(n_chips, *pattern.shape)``.
        """
        if len(seeds) != n_chips:
            raise ValueError(f"need {n_chips} seeds, got {len(seeds)}")
        patterns = []
        for seed in seeds:
            chip = copy.copy(self)
            chip.rng = np.random.default_rng(seed)
            chip._cache = {}
            patterns.append(chip._generate(qw))
        return np.stack(patterns, axis=0)

    def apply_batch(self, qw: QuantizedWeight, patterns: np.ndarray) -> np.ndarray:
        """Apply stacked per-chip patterns → ``(n_chips, *codes.shape)``.

        The default implementation reuses :meth:`_apply`, which is a pure
        broadcast for every noise-style model; subclasses whose apply is
        not broadcast-safe (bit manipulation) override this.
        """
        return self._apply(qw, patterns)


class BitFlipFault(WeightFaultModel):
    """Flip each stored bit independently with probability ``rate``.

    For 1-bit weights a flip negates the code (the paper's binary fault).
    For k-bit weights the codes are viewed in sign-magnitude form (the
    natural encoding for differential G+/G- crossbar pairs): each of the
    ``bits`` bits — one sign bit plus ``bits - 1`` magnitude bits — flips
    independently, and the result is clipped back to the valid code range.
    """

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__(rng)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"bit-flip rate must be in [0, 1], got {rate}")
        self.rate = rate

    def config_key(self) -> tuple:
        return (type(self).__name__, self.rate)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        if qw.bits == 1:
            return self.rng.random(qw.codes.shape) < self.rate
        return self.rng.random(qw.codes.shape + (qw.bits,)) < self.rate

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        if self.rate == 0.0:
            return qw.codes
        if qw.bits == 1:
            return np.where(pattern, -qw.codes, qw.codes)
        magnitude = np.abs(qw.codes).astype(np.int64)
        sign = np.sign(qw.codes).astype(np.int64)
        sign[sign == 0] = 1
        # bit 0 .. bits-2: magnitude bits; bit bits-1: sign bit
        for b in range(qw.bits - 1):
            magnitude ^= pattern[..., b].astype(np.int64) << b
        sign = np.where(pattern[..., qw.bits - 1], -sign, sign)
        flipped = np.clip(sign * magnitude, -qw.qmax, qw.qmax)
        return flipped.astype(np.float64)

    def apply_batch(self, qw: QuantizedWeight, patterns: np.ndarray) -> np.ndarray:
        # The in-place XOR of _apply cannot broadcast codes up to the
        # stacked (n_chips, ..., bits) pattern, so materialize the chip
        # axis first; the bit arithmetic is then identical per chip.
        if self.rate == 0.0 or qw.bits == 1:
            return self._apply(qw, patterns)
        lead = patterns.shape[:1]
        magnitude = np.broadcast_to(
            np.abs(qw.codes).astype(np.int64), lead + qw.codes.shape
        ).copy()
        sign = np.broadcast_to(
            np.sign(qw.codes).astype(np.int64), lead + qw.codes.shape
        ).copy()
        sign[sign == 0] = 1
        for b in range(qw.bits - 1):
            magnitude ^= patterns[..., b].astype(np.int64) << b
        sign = np.where(patterns[..., qw.bits - 1], -sign, sign)
        flipped = np.clip(sign * magnitude, -qw.qmax, qw.qmax)
        return flipped.astype(np.float64)


class AdditiveVariation(WeightFaultModel):
    """Additive conductance variation ``w' = w + N(0, sigma * max|w|)``."""

    def __init__(self, sigma: float, rng: np.random.Generator):
        super().__init__(rng)
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def config_key(self) -> tuple:
        return (type(self).__name__, self.sigma)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        return self.rng.normal(0.0, 1.0, size=qw.codes.shape)

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return qw.codes
        return qw.codes + self.sigma * qw.qmax * pattern


class MultiplicativeVariation(WeightFaultModel):
    """Multiplicative conductance variation ``w' = w * (1 + N(0, sigma))``."""

    def __init__(self, sigma: float, rng: np.random.Generator):
        super().__init__(rng)
        if sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {sigma}")
        self.sigma = sigma

    def config_key(self) -> tuple:
        return (type(self).__name__, self.sigma)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        return self.rng.normal(0.0, 1.0, size=qw.codes.shape)

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        if self.sigma == 0.0:
            return qw.codes
        return qw.codes * (1.0 + self.sigma * pattern)


class UniformNoiseFault(WeightFaultModel):
    """Uniform noise ``w' = w + U(-s, s) * max|w|`` (LSTM experiment)."""

    def __init__(self, strength: float, rng: np.random.Generator):
        super().__init__(rng)
        if strength < 0:
            raise ValueError(f"strength must be >= 0, got {strength}")
        self.strength = strength

    def config_key(self) -> tuple:
        return (type(self).__name__, self.strength)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        return self.rng.uniform(-1.0, 1.0, size=qw.codes.shape)

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        if self.strength == 0.0:
            return qw.codes
        return qw.codes + self.strength * qw.qmax * pattern


class StuckAtFault(WeightFaultModel):
    """A fraction of cells is stuck at a fixed conductance level.

    ``stuck_to`` ∈ {"low", "high", "zero"} — stuck-at-low maps the weight to
    the most negative code, stuck-at-high to the most positive, stuck-at-zero
    to 0 (defect/open-cell models from the IMC literature [3], [13]).
    """

    def __init__(self, rate: float, rng: np.random.Generator, stuck_to: str = "zero"):
        super().__init__(rng)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"stuck-at rate must be in [0, 1], got {rate}")
        if stuck_to not in ("low", "high", "zero"):
            raise ValueError(f"stuck_to must be low/high/zero, got {stuck_to!r}")
        self.rate = rate
        self.stuck_to = stuck_to

    def config_key(self) -> tuple:
        return (type(self).__name__, self.rate, self.stuck_to)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        return self.rng.random(qw.codes.shape) < self.rate

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        if self.rate == 0.0:
            return qw.codes
        if self.stuck_to == "zero":
            value = 0.0 if qw.bits > 1 else 1.0  # binary cells have no zero state
        elif self.stuck_to == "high":
            value = float(qw.qmax)
        else:
            value = -float(qw.qmax)
        return np.where(pattern, value, qw.codes)


class ActivationNoise:
    """Additive/multiplicative/uniform noise on normalized activations.

    The injection site for binary networks (pre-``Sign``): the incoming
    activations are standardized by the preceding normalization layer, so
    ``sigma`` is directly in units of activation standard deviations.
    Noise realizations depend on the live activations and are therefore
    drawn per forward pass from the chip's RNG stream.

    Monte Carlo sample streams
    --------------------------
    Inside Bayesian inference, pass ``s`` of ``S`` draws its noise from the
    ``s``-th ``SeedSequence`` child of the chip stream (spawned once,
    lazily) rather than from the raw stream — mirroring how evaluation
    randomness is indexed per sample (see
    :func:`repro.tensor.chipbatch.spawn_sample_streams`).  Sample ``s``'s
    noise is then a pure function of ``(chip stream, s)``, which is what
    lets the MC-batched engine draw all samples in one stacked pass with
    bit-identical slices.  Outside an MC pass (training, conventional
    single-pass evaluation) the raw stream is used directly.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        additive_sigma: float = 0.0,
        multiplicative_sigma: float = 0.0,
        uniform_strength: float = 0.0,
    ):
        self.rng = rng
        self.additive_sigma = additive_sigma
        self.multiplicative_sigma = multiplicative_sigma
        self.uniform_strength = uniform_strength
        self._children: Optional[List[np.random.Generator]] = None

    def _sample_children(self, total: int) -> List[np.random.Generator]:
        """Per-MC-sample child streams, spawned once from the chip stream."""
        if self._children is None or len(self._children) != total:
            self._children = list(self.rng.spawn(total))
        return self._children

    def _stream(self) -> np.random.Generator:
        scope = current_mc_sample()
        if scope is None:
            return self.rng
        index, total = scope
        return self._sample_children(total)[index]

    def spawn_instances(self, num_samples: int) -> List["ActivationNoise"]:
        """One noise model per MC sample, sharing this chip's child streams.

        Used by :class:`ChipBatchedActivationNoise` to expand a per-chip
        model across the MC-sample sub-axis: instance ``s`` draws from the
        very child stream the looped path's pass ``s`` would use.
        """
        return [
            ActivationNoise(
                child,
                additive_sigma=self.additive_sigma,
                multiplicative_sigma=self.multiplicative_sigma,
                uniform_strength=self.uniform_strength,
            )
            for child in self._sample_children(num_samples)
        ]

    def plan_signature(self) -> tuple:
        """Forward-plan signature: structural only.

        Activation noise is re-drawn on every pass, and forward plans
        invoke the *live* hook at its site on each replay, so the values
        never enter the plan — only the (shape-preserving) presence of the
        hook matters.
        """
        return ("an",)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        out = x
        rng = self._stream()
        if self.multiplicative_sigma > 0.0:
            out = out * (1.0 + rng.normal(0.0, self.multiplicative_sigma, x.shape))
        if self.additive_sigma > 0.0:
            out = out + rng.normal(0.0, self.additive_sigma, x.shape)
        if self.uniform_strength > 0.0:
            out = out + rng.uniform(
                -self.uniform_strength, self.uniform_strength, x.shape
            )
        return out


@dataclass
class FaultSpec:
    """Declarative description of one non-ideality scenario.

    Attributes
    ----------
    kind:
        ``"bitflip"`` | ``"additive"`` | ``"multiplicative"`` | ``"uniform"``
        | ``"stuck"`` | ``"none"``.
    level:
        Bit-flip rate, noise sigma, or uniform strength depending on kind.
    stuck_to:
        Only for ``kind="stuck"``.
    """

    kind: str
    level: float
    stuck_to: str = "zero"

    VALID_KINDS = (
        "bitflip",
        "additive",
        "multiplicative",
        "uniform",
        "stuck",
        "drift",
        "none",
    )

    def __post_init__(self) -> None:
        if self.kind not in self.VALID_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def build_weight_model(self, rng: np.random.Generator) -> Optional[WeightFaultModel]:
        if self.kind == "none" or self.level == 0.0:
            return None
        if self.kind == "bitflip":
            return BitFlipFault(self.level, rng)
        if self.kind == "additive":
            return AdditiveVariation(self.level, rng)
        if self.kind == "multiplicative":
            return MultiplicativeVariation(self.level, rng)
        if self.kind == "uniform":
            return UniformNoiseFault(self.level, rng)
        if self.kind == "stuck":
            return StuckAtFault(self.level, rng, stuck_to=self.stuck_to)
        if self.kind == "drift":
            # level = hours since programming
            return RetentionDriftFault(rng, t_hours=max(1.0, self.level))
        return None

    def build_activation_model(self, rng: np.random.Generator) -> Optional[ActivationNoise]:
        if self.kind == "none" or self.level == 0.0:
            return None
        if self.kind == "additive":
            return ActivationNoise(rng, additive_sigma=self.level)
        if self.kind == "multiplicative":
            return ActivationNoise(rng, multiplicative_sigma=self.level)
        if self.kind == "uniform":
            return ActivationNoise(rng, uniform_strength=self.level)
        return None

    @property
    def is_variation(self) -> bool:
        """Conductance-variation style (injected at activations for binary)."""
        return self.kind in ("additive", "multiplicative", "uniform")

    def describe(self) -> str:
        if self.kind == "none":
            return "fault-free"
        unit = "%" if self.kind == "bitflip" else ""
        level = self.level * 100 if self.kind == "bitflip" else self.level
        return f"{self.kind}={level:g}{unit}"


class RetentionDriftFault(WeightFaultModel):
    """Retention drift: stored conductances decay toward the off state.

    The paper lists drift among the runtime non-idealities (Section I);
    phase-change and some resistive cells lose conductance over time as
    ``g(t) = g0 * (t / t0) ** (-nu)`` with a device-specific drift exponent.
    At the weight level this shrinks the magnitude of every stored code by
    a deterministic factor plus device-to-device variation in ``nu``:

    ``w(t) = w * (t / t0) ** (-(nu + eps))``, ``eps ~ N(0, sigma_nu)``.

    Parameters
    ----------
    t_hours:
        Time since programming (in units of the 1-hour reference ``t0``).
    nu:
        Mean drift exponent (typical PCM value ~0.05).
    sigma_nu:
        Device-to-device spread of the exponent.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        t_hours: float = 24.0,
        nu: float = 0.05,
        sigma_nu: float = 0.02,
    ):
        super().__init__(rng)
        if t_hours < 1.0:
            raise ValueError(f"t_hours must be >= 1 (t0 reference), got {t_hours}")
        self.t_hours = t_hours
        self.nu = nu
        self.sigma_nu = sigma_nu

    def config_key(self) -> tuple:
        return (type(self).__name__, self.t_hours, self.nu, self.sigma_nu)

    def _generate(self, qw: QuantizedWeight) -> np.ndarray:
        exponents = self.nu + self.rng.normal(0.0, self.sigma_nu, qw.codes.shape)
        return self.t_hours ** (-np.clip(exponents, 0.0, None))

    def _apply(self, qw: QuantizedWeight, pattern: np.ndarray) -> np.ndarray:
        return qw.codes * pattern


# ----------------------------------------------------------------------
# Chip-batched fault hooks (the campaign engine's ``batched`` executor)
# ----------------------------------------------------------------------
class ChipBatchedWeightFault:
    """Weight-fault hook evaluating ``n_chips`` frozen patterns at once.

    Plugs into the same ``layer.weight_fault`` slot as a serial
    :class:`WeightFaultModel` but returns perturbed codes with a leading
    chip axis ``(n_chips, *codes.shape)``; the quantized layers broadcast
    the stack through one vectorized forward.  ``seeds[i]`` must be the
    layer seed chip ``i``'s serial :meth:`FaultInjector.attach
    <repro.faults.campaign.FaultInjector.attach>` would draw, which makes
    each chip's slice bit-identical to the serial engine's weights.
    """

    def __init__(self, spec: "FaultSpec", seeds: Sequence[int]):
        self.seeds = [int(s) for s in seeds]
        prototype = spec.build_weight_model(np.random.default_rng(0))
        if prototype is None:
            raise ValueError(f"spec {spec.describe()} has no weight-fault model")
        self.prototype = prototype
        self.fault_token = next(_FAULT_TOKENS)
        self._cache: Dict[Tuple[int, ...], np.ndarray] = {}
        # Seeds and config are frozen for the hook's lifetime, so the plan
        # signature is too; the attach-amortized path re-installs one hook
        # across many replays, making per-call tuple rebuilds measurable.
        self._signature = ("cbwf", prototype.config_key(), tuple(self.seeds))

    @property
    def n_chips(self) -> int:
        return len(self.seeds)

    def plan_signature(self) -> tuple:
        """Forward-plan signature: severity config + frozen seeds.

        The stacked faulty codes are a pure function of (weight record,
        spec, seeds), so an *identical* re-attach — e.g. a repeated sweep
        deriving the same per-cell streams — hits the same plan key and
        replays, while any new seed set or severity re-traces.
        """
        return self._signature

    def __call__(self, qw: QuantizedWeight) -> np.ndarray:
        key = (qw.bits,) + tuple(qw.codes.shape)
        if key not in self._cache:
            self._cache[key] = self.prototype.generate_batch(
                qw, self.n_chips, self.seeds
            )
        codes = self.prototype.apply_batch(qw, self._cache[key])
        # Under an MC-sample sub-axis the instance axis is chips x samples
        # (chip-major); the frozen per-chip pattern is what a programmed
        # chip holds across all its stochastic passes, so each chip's
        # faulty codes repeat along the sample sub-axis.
        samples = active_sample_count() or 1
        if samples > 1:
            codes = np.repeat(codes, samples, axis=0)
        return codes


class ScenarioBatchedWeightFault:
    """Weight-fault hook stacking *heterogeneous severities* of one kind.

    The scenario-batched counterpart of :class:`ChipBatchedWeightFault`:
    holds one spec (severity level) plus that scenario's per-chip seeds for
    each of ``n_scenarios`` stacked scenarios — all of the same fault kind —
    and returns perturbed codes with a leading
    ``(n_scenarios * n_chips, *codes.shape)`` instance axis in
    scenario-major order.  Scenario ``k``'s slice is produced by the very
    :class:`WeightFaultModel` a per-scenario
    :meth:`FaultInjector.attach_batched
    <repro.faults.campaign.FaultInjector.attach_batched>` would build
    (generation and application both delegate to the scenario's own
    prototype), so every (scenario, chip) slice stays bit-identical to the
    serial engine's weights even though the severity varies along the
    instance axis.
    """

    def __init__(self, specs: Sequence["FaultSpec"], seed_groups: Sequence[Sequence[int]]):
        if len(specs) != len(seed_groups):
            raise ValueError(
                f"need one seed group per spec, got {len(specs)} specs "
                f"and {len(seed_groups)} groups"
            )
        if not specs:
            raise ValueError("scenario-batched hook needs >= 1 scenario")
        kinds = {spec.kind for spec in specs}
        if len(kinds) > 1:
            raise ValueError(
                f"scenario-batched hooks stack one fault kind, got {sorted(kinds)}"
            )
        self.prototypes: List[WeightFaultModel] = []
        for spec in specs:
            prototype = spec.build_weight_model(np.random.default_rng(0))
            if prototype is None:
                raise ValueError(
                    f"spec {spec.describe()} has no weight-fault model"
                )
            self.prototypes.append(prototype)
        self.seed_groups = [[int(s) for s in seeds] for seeds in seed_groups]
        self.fault_token = next(_FAULT_TOKENS)
        self._cache: Dict[Tuple[int, ...], List[np.ndarray]] = {}
        # Frozen for the hook's lifetime, like ChipBatchedWeightFault.
        self._signature = (
            "sbwf",
            tuple(p.config_key() for p in self.prototypes),
            tuple(tuple(seeds) for seeds in self.seed_groups),
        )

    @property
    def n_scenarios(self) -> int:
        return len(self.prototypes)

    @property
    def n_chips(self) -> int:
        """Total (scenario, chip) instances along the leading axis."""
        return sum(len(seeds) for seeds in self.seed_groups)

    def plan_signature(self) -> tuple:
        """Forward-plan signature: per-scenario configs + frozen seeds.

        Like :meth:`ChipBatchedWeightFault.plan_signature`, value-based:
        identical stacked sweeps replay, anything else re-traces.
        """
        return self._signature

    def __call__(self, qw: QuantizedWeight) -> np.ndarray:
        key = (qw.bits,) + tuple(qw.codes.shape)
        if key not in self._cache:
            self._cache[key] = [
                prototype.generate_batch(qw, len(seeds), seeds)
                for prototype, seeds in zip(self.prototypes, self.seed_groups)
            ]
        codes = np.concatenate(
            [
                prototype.apply_batch(qw, patterns)
                for prototype, patterns in zip(self.prototypes, self._cache[key])
            ],
            axis=0,
        )
        # Same sample-sub-axis discipline as ChipBatchedWeightFault: the
        # frozen per-(scenario, chip) pattern repeats across that chip's
        # stochastic passes.
        samples = active_sample_count() or 1
        if samples > 1:
            codes = np.repeat(codes, samples, axis=0)
        return codes


class ChipBatchedActivationNoise:
    """Activation-noise hook applying each chip's own noise stream.

    Holds one serial :class:`ActivationNoise` per chip.  An already
    instance-batched activation ``(n_instances, ...)`` is perturbed slice
    by slice from each instance's stream; an unbatched activation (no fault
    has introduced the instance axis yet) is broadcast — every instance
    perturbs the same clean values, drawing exactly the noise the serial
    engine would.

    Under an MC-sample sub-axis of ``S`` the per-chip models expand
    (chip-major, cached) into ``chips x S`` per-instance models via
    :meth:`ActivationNoise.spawn_instances`, so instance ``(c, s)`` draws
    from chip ``c``'s ``s``-th ``SeedSequence`` child — the stream the
    looped path's pass ``s`` uses.  The expansion persists across
    evaluation batches, matching the serial streams' continuation.
    """

    def __init__(self, models: Sequence[ActivationNoise]):
        self.models = list(models)
        self._expanded: Optional[List[ActivationNoise]] = None
        self._expanded_samples: Optional[int] = None

    @property
    def n_chips(self) -> int:
        return len(self.models)

    def plan_signature(self) -> tuple:
        """Forward-plan signature: structural (instance count only).

        Replays invoke the live hook, which draws per-pass noise from its
        own streams; only the instance-axis width it stacks to matters for
        the traced shapes.
        """
        return ("anb", len(self.models))

    def _active_models(self) -> List[ActivationNoise]:
        samples = active_sample_count() or 1
        if samples == 1:
            return self.models
        if self._expanded is None or self._expanded_samples != samples:
            self._expanded = [
                instance
                for model in self.models
                for instance in model.spawn_instances(samples)
            ]
            self._expanded_samples = samples
        return self._expanded

    def __call__(self, x: np.ndarray) -> np.ndarray:
        models = self._active_models()
        if x.ndim and x.shape[0] == len(models):
            return np.stack([model(x[i]) for i, model in enumerate(models)], axis=0)
        return np.stack([model(x) for model in models], axis=0)
