"""NVM non-ideality models and Monte Carlo fault campaigns."""

from .campaign import (
    CampaignResult,
    FaultInjector,
    MonteCarloCampaign,
    additive_sweep,
    bitflip_sweep,
    multiplicative_sweep,
    uniform_sweep,
)
from .executor import (
    EXECUTORS,
    EvalHandle,
    FactoryHandle,
    WorkCell,
    cell_rngs,
    evaluate_cell,
    run_cells,
)
from .models import (
    ActivationNoise,
    AdditiveVariation,
    BitFlipFault,
    FaultSpec,
    MultiplicativeVariation,
    RetentionDriftFault,
    StuckAtFault,
    UniformNoiseFault,
    WeightFaultModel,
)

__all__ = [
    "FaultSpec",
    "WeightFaultModel",
    "BitFlipFault",
    "AdditiveVariation",
    "MultiplicativeVariation",
    "UniformNoiseFault",
    "StuckAtFault",
    "RetentionDriftFault",
    "ActivationNoise",
    "FaultInjector",
    "MonteCarloCampaign",
    "CampaignResult",
    "EXECUTORS",
    "EvalHandle",
    "FactoryHandle",
    "WorkCell",
    "cell_rngs",
    "evaluate_cell",
    "run_cells",
    "bitflip_sweep",
    "additive_sweep",
    "multiplicative_sweep",
    "uniform_sweep",
]
