"""NVM non-ideality models and Monte Carlo fault campaigns.

Campaigns execute on the pluggable engine in :mod:`repro.faults.executor`
(:data:`EXECUTORS` = ``serial`` / ``thread`` / ``process`` / ``batched``).
The ``batched`` backend evaluates all chip instances of a scenario — and,
with MC batching (default), all Monte Carlo samples of a Bayesian
evaluator, and, with scenario batching (also default), all same-kind
fault-severity levels of a sweep — in one vectorized forward:
:func:`evaluate_cells_batched` / :func:`evaluate_cells_scenario_batched`
stack per-chip frozen fault patterns (:class:`ChipBatchedWeightFault`,
:class:`ScenarioBatchedWeightFault`, :class:`ChipBatchedActivationNoise`)
along a leading instance axis (scenario-major, then chip, then MC sample)
while staying bit-identical per (scenario, chip) to the serial reference.
"""

from .campaign import (
    CampaignResult,
    FaultInjector,
    MonteCarloCampaign,
    additive_sweep,
    attach_amortize_default,
    bitflip_sweep,
    clear_programs,
    multiplicative_sweep,
    program_stats,
    uniform_sweep,
)
from .executor import (
    EXECUTORS,
    EvalHandle,
    FactoryHandle,
    WorkCell,
    cell_eval_rng,
    cell_rngs,
    evaluate_cell,
    evaluate_cells_batched,
    evaluate_cells_scenario_batched,
    run_cells,
)
from .models import (
    ActivationNoise,
    AdditiveVariation,
    BitFlipFault,
    ChipBatchedActivationNoise,
    ChipBatchedWeightFault,
    FaultSpec,
    MultiplicativeVariation,
    RetentionDriftFault,
    ScenarioBatchedWeightFault,
    StuckAtFault,
    UniformNoiseFault,
    WeightFaultModel,
)

__all__ = [
    "FaultSpec",
    "WeightFaultModel",
    "BitFlipFault",
    "AdditiveVariation",
    "MultiplicativeVariation",
    "UniformNoiseFault",
    "StuckAtFault",
    "RetentionDriftFault",
    "ActivationNoise",
    "ChipBatchedWeightFault",
    "ScenarioBatchedWeightFault",
    "ChipBatchedActivationNoise",
    "FaultInjector",
    "MonteCarloCampaign",
    "CampaignResult",
    "EXECUTORS",
    "EvalHandle",
    "FactoryHandle",
    "WorkCell",
    "cell_rngs",
    "cell_eval_rng",
    "evaluate_cell",
    "evaluate_cells_batched",
    "evaluate_cells_scenario_batched",
    "run_cells",
    "attach_amortize_default",
    "program_stats",
    "clear_programs",
    "bitflip_sweep",
    "additive_sweep",
    "multiplicative_sweep",
    "uniform_sweep",
]
