"""NVM non-ideality models and Monte Carlo fault campaigns."""

from .campaign import (
    CampaignResult,
    FaultInjector,
    MonteCarloCampaign,
    additive_sweep,
    bitflip_sweep,
    multiplicative_sweep,
    uniform_sweep,
)
from .models import (
    ActivationNoise,
    AdditiveVariation,
    BitFlipFault,
    FaultSpec,
    MultiplicativeVariation,
    RetentionDriftFault,
    StuckAtFault,
    UniformNoiseFault,
    WeightFaultModel,
)

__all__ = [
    "FaultSpec",
    "WeightFaultModel",
    "BitFlipFault",
    "AdditiveVariation",
    "MultiplicativeVariation",
    "UniformNoiseFault",
    "StuckAtFault",
    "RetentionDriftFault",
    "ActivationNoise",
    "FaultInjector",
    "MonteCarloCampaign",
    "CampaignResult",
    "bitflip_sweep",
    "additive_sweep",
    "multiplicative_sweep",
    "uniform_sweep",
]
