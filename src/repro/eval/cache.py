"""Trained-model cache shared by tests, examples and benchmarks.

Training a model for every (task, method) pair in every benchmark would
dominate runtime, so trained weights are cached in-process and persisted to
``REPRO_CACHE_DIR`` (default ``<repo>/.repro_cache``) as ``.npz`` state
dicts keyed by (task, method, preset, seed).  Delete the directory to force
retraining.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Tuple

from ..models import MethodConfig
from ..nn.module import Module
from .tasks import Task

_MEMORY: Dict[Tuple, Module] = {}


def cache_dir() -> pathlib.Path:
    path = pathlib.Path(
        os.environ.get(
            "REPRO_CACHE_DIR",
            pathlib.Path(__file__).resolve().parents[3] / ".repro_cache",
        )
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def _method_key(method: MethodConfig) -> str:
    parts = [method.name, f"p{method.p}"]
    if method.uses_inverted_norm:
        parts += [
            f"sg{method.sigma_gamma}",
            f"sb{method.sigma_beta}",
            method.granularity,
            method.init,
        ]
    else:
        parts.append(method.conventional_norm)
    return "-".join(parts)


def trained_model(
    task: Task,
    method: MethodConfig,
    preset: str,
    seed: int = 0,
    verbose: bool = False,
) -> Module:
    """Return a trained model, training and caching on first request."""
    key = (task.name, task.cache_tag, _method_key(method), preset, seed)
    if key in _MEMORY:
        return _MEMORY[key]
    path = cache_dir() / ("_".join(str(k) for k in key) + ".npz")
    model = task.build_model(method, seed=seed)
    if path.exists():
        try:
            model.load(str(path))
            _MEMORY[key] = model
            return model
        except (KeyError, ValueError):
            path.unlink()  # stale checkpoint from an older layout
    model = task.train_model(method, seed=seed, verbose=verbose)
    model.save(str(path))
    _MEMORY[key] = model
    return model


def clear_memory_cache() -> None:
    """Drop in-process cached models (disk cache untouched)."""
    _MEMORY.clear()
