"""Result caches shared by tests, examples, benchmarks and the CLI.

Two caches live here, both persisted under ``REPRO_CACHE_DIR`` (default
``<repo>/.repro_cache``):

* the **trained-model cache** — ``.npz`` state dicts keyed by
  (task, method, preset, seed), because training a model for every
  (task, method) pair in every benchmark would dominate runtime;
* the **campaign-result cache** — per-scenario Monte Carlo value arrays
  keyed by (task, method, fault spec, n_runs, samples, seed, eval cap),
  so re-running or resuming a robustness sweep skips every completed
  scenario's cells entirely.

Delete the directory to force retraining / re-simulation.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..faults import FaultSpec
from ..models import MethodConfig
from ..nn.module import Module
from .tasks import Task

_MEMORY: Dict[Tuple, Module] = {}
_CAMPAIGN_MEMORY: Dict[str, np.ndarray] = {}


def cache_dir() -> pathlib.Path:
    """The result-cache root (``REPRO_CACHE_DIR``), created on demand."""
    path = pathlib.Path(
        os.environ.get(
            "REPRO_CACHE_DIR",
            pathlib.Path(__file__).resolve().parents[3] / ".repro_cache",
        )
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def _method_key(method: MethodConfig) -> str:
    parts = [method.name, f"p{method.p}"]
    if method.uses_inverted_norm:
        parts += [
            f"sg{method.sigma_gamma}",
            f"sb{method.sigma_beta}",
            method.granularity,
            method.init,
        ]
    else:
        parts.append(method.conventional_norm)
    return "-".join(parts)


def trained_model(
    task: Task,
    method: MethodConfig,
    preset: str,
    seed: int = 0,
    verbose: bool = False,
) -> Module:
    """Return a trained model, training and caching on first request."""
    key = (task.name, task.cache_tag, _method_key(method), preset, seed)
    if key in _MEMORY:
        return _MEMORY[key]
    path = cache_dir() / ("_".join(str(k) for k in key) + ".npz")
    model = task.build_model(method, seed=seed)
    if path.exists():
        try:
            model.load(str(path))
            _MEMORY[key] = model
            return model
        except (KeyError, ValueError):
            path.unlink()  # stale checkpoint from an older layout
    model = task.train_model(method, seed=seed, verbose=verbose)
    model.save(str(path))
    _MEMORY[key] = model
    return model


def clear_memory_cache() -> None:
    """Drop in-process cached models and campaign results (disk untouched)."""
    _MEMORY.clear()
    _CAMPAIGN_MEMORY.clear()


# ----------------------------------------------------------------------
# Campaign-result cache
# ----------------------------------------------------------------------
#: Version tag of the engine's seed→stream derivation.  ``mc2`` = per-cell
#: hermetic SeedSequence streams with per-MC-sample spawned children (the
#: MC-batched engine); the unversioned keys before it used sequential
#: per-cell draws across samples.  Scenario batching (PR 4) deliberately
#: did NOT bump this: stacking severity levels re-derives exactly the same
#: per-cell streams and consumes each in the serial draw order, so values
#: computed under ``mc2`` stay valid.  The next change to the draw order
#: itself must bump to ``mc3`` (see docs/architecture.md).
RNG_CONTRACT = "mc2"


def campaign_key(
    task: Task,
    method: MethodConfig,
    spec: FaultSpec,
    n_runs: int,
    samples: int,
    seed: int,
    max_eval_samples: Optional[int] = None,
) -> str:
    """Filename-safe cache key for one (task, method, scenario) campaign.

    Every knob that changes the simulated values is part of the key: the
    task geometry (``cache_tag``), the method hyper-parameters, the fault
    spec, the Monte Carlo settings, the seed, and the evaluation-set cap —
    so changing any of them is a cache miss, never a stale hit.  The key
    also carries the engine's RNG-contract version (:data:`RNG_CONTRACT`):
    when a PR redefines how streams are derived from the seeds (e.g. the
    per-MC-sample ``SeedSequence`` children introduced with MC batching),
    bumping the version retires every cached value computed under the old
    contract instead of silently mixing the two.
    """
    parts = [
        RNG_CONTRACT,
        task.name,
        task.cache_tag,
        f"ds{task.seed}",
        _method_key(method),
        spec.kind,
        f"l{spec.level:g}",
        spec.stuck_to,
        f"r{n_runs}",
        f"s{samples}",
        f"seed{seed}",
        f"cap{max_eval_samples}",
    ]
    return "_".join(str(p) for p in parts)


def _campaign_path(key: str) -> pathlib.Path:
    directory = cache_dir() / "campaigns"
    directory.mkdir(parents=True, exist_ok=True)
    return directory / f"{key}.npy"


def load_campaign_values(key: str) -> Optional[np.ndarray]:
    """Cached per-chip metric values for ``key``, or ``None`` on a miss."""
    if key in _CAMPAIGN_MEMORY:
        return _CAMPAIGN_MEMORY[key].copy()
    path = _campaign_path(key)
    if path.exists():
        try:
            values = np.load(path)
        except (OSError, ValueError):
            path.unlink()  # truncated/corrupt file from an interrupted run
            return None
        _CAMPAIGN_MEMORY[key] = values
        return values.copy()
    return None


def store_campaign_values(key: str, values: np.ndarray) -> None:
    """Persist one scenario's campaign values in memory and on disk."""
    values = np.asarray(values, dtype=np.float64)
    _CAMPAIGN_MEMORY[key] = values
    np.save(_campaign_path(key), values)
