"""Result caches shared by tests, examples, benchmarks, the CLI, and the
campaign service.

Two caches live here, both persisted under ``REPRO_CACHE_DIR`` (default
``<repo>/.repro_cache``):

* the **trained-model cache** — ``.npz`` state dicts keyed by
  (task, method, preset, seed), because training a model for every
  (task, method) pair in every benchmark would dominate runtime;
* the **content-addressed result store** (:class:`ResultStore`) —
  per-scenario Monte Carlo value arrays addressed by the SHA-256 of their
  hermetic cell key (:func:`campaign_key`, which embeds the engine's
  RNG-contract version), so results computed by any worker, process, or
  session merge into one shared store and every overlapping sweep skips
  already-computed cells.  Writes are temp-file-then-rename atomic,
  corrupted or torn entries recover to a miss, and hit/miss/merge
  counters make redundant-work accounting auditable per request.

Delete the directory to force retraining / re-simulation.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import threading
import zipfile
from typing import Dict, Optional, Tuple

import numpy as np

from ..faults import FaultSpec
from ..models import MethodConfig
from ..nn.module import Module
from .tasks import Task

_MEMORY: Dict[Tuple, Module] = {}


def cache_dir() -> pathlib.Path:
    """The result-cache root (``REPRO_CACHE_DIR``), created on demand."""
    path = pathlib.Path(
        os.environ.get(
            "REPRO_CACHE_DIR",
            pathlib.Path(__file__).resolve().parents[3] / ".repro_cache",
        )
    )
    path.mkdir(parents=True, exist_ok=True)
    return path


def _method_key(method: MethodConfig) -> str:
    parts = [method.name, f"p{method.p}"]
    if method.uses_inverted_norm:
        parts += [
            f"sg{method.sigma_gamma}",
            f"sb{method.sigma_beta}",
            method.granularity,
            method.init,
        ]
    else:
        parts.append(method.conventional_norm)
    return "-".join(parts)


def trained_model(
    task: Task,
    method: MethodConfig,
    preset: str,
    seed: int = 0,
    verbose: bool = False,
) -> Module:
    """Return a trained model, training and caching on first request."""
    key = (task.name, task.cache_tag, _method_key(method), preset, seed)
    if key in _MEMORY:
        return _MEMORY[key]
    path = cache_dir() / ("_".join(str(k) for k in key) + ".npz")
    model = task.build_model(method, seed=seed)
    if path.exists():
        try:
            model.load(str(path))
            _MEMORY[key] = model
            return model
        except (KeyError, ValueError):
            path.unlink()  # stale checkpoint from an older layout
    model = task.train_model(method, seed=seed, verbose=verbose)
    model.save(str(path))
    _MEMORY[key] = model
    return model


def clear_memory_cache() -> None:
    """Drop in-process cached models and campaign results (disk untouched)."""
    _MEMORY.clear()
    _DEFAULT_STORE.clear_memory()


# ----------------------------------------------------------------------
# Content-addressed result store
# ----------------------------------------------------------------------
#: Version tag of the engine's seed→stream derivation.  ``mc2`` = per-cell
#: hermetic SeedSequence streams with per-MC-sample spawned children (the
#: MC-batched engine); the unversioned keys before it used sequential
#: per-cell draws across samples.  Scenario batching (PR 4) deliberately
#: did NOT bump this: stacking severity levels re-derives exactly the same
#: per-cell streams and consumes each in the serial draw order, so values
#: computed under ``mc2`` stay valid.  The next change to the draw order
#: itself must bump to ``mc3`` (see docs/architecture.md).
RNG_CONTRACT = "mc2"


def campaign_key(
    task: Task,
    method: MethodConfig,
    spec: FaultSpec,
    n_runs: int,
    samples: int,
    seed: int,
    max_eval_samples: Optional[int] = None,
) -> str:
    """Hermetic cell key for one (task, method, scenario) campaign.

    Every knob that changes the simulated values is part of the key: the
    task geometry (``cache_tag``), the method hyper-parameters, the fault
    spec, the Monte Carlo settings, the seed, and the evaluation-set cap —
    so changing any of them is a cache miss, never a stale hit.  The key
    also carries the engine's RNG-contract version (:data:`RNG_CONTRACT`):
    when a PR redefines how streams are derived from the seeds (e.g. the
    per-MC-sample ``SeedSequence`` children introduced with MC batching),
    bumping the version retires every cached value computed under the old
    contract instead of silently mixing the two.

    The key is what the :class:`ResultStore` content-addresses: its
    SHA-256 is the entry's address, and the full key is stored inside the
    entry so a load verifies it is serving exactly the requested cell.
    """
    parts = [
        RNG_CONTRACT,
        task.name,
        task.cache_tag,
        f"ds{task.seed}",
        _method_key(method),
        spec.kind,
        f"l{spec.level:g}",
        spec.stuck_to,
        f"r{n_runs}",
        f"s{samples}",
        f"seed{seed}",
        f"cap{max_eval_samples}",
    ]
    return "_".join(str(p) for p in parts)


def content_hash(key: str) -> str:
    """SHA-256 content address of one hermetic cell key."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()


class ResultStore:
    """Content-addressed, crash-safe store of campaign value arrays.

    Entries are ``.npz`` files at ``<root>/<hh>/<hash>.npz`` where
    ``hash`` is :func:`content_hash` of the hermetic cell key and ``hh``
    its first two hex digits (a fan-out shard so directories stay small).
    Each entry records the full ``key``, its RNG-contract version, and
    the float64 ``values`` array, so a load can verify it serves exactly
    the requested cell (a hash collision, a tampered file, or an entry
    written under a stale contract recovers to a miss instead of a wrong
    hit).

    Concurrency and crash safety
    ----------------------------
    Writes serialize to a uniquely named sibling temp file and land via
    ``os.replace``, so concurrent workers — threads, processes, or whole
    sessions sharing one directory — never tear an entry: a reader sees
    either nothing or a complete entry, and two writers racing on the
    same key both land byte-equivalent files (the key derivation is
    hermetic, so their values are bit-identical; a mismatch raises,
    surfacing engine nondeterminism instead of hiding it).  Counters are
    lock-protected and monotonic; services snapshot them around a
    request to prove zero-redundant-cell accounting.

    ``legacy_dir`` (the pre-PR8 ``campaigns/<key>.npy`` layout) is
    consulted on a store miss and hits are promoted into the store, so
    existing on-disk caches keep serving across the layout change.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        legacy_dir: Optional[os.PathLike] = None,
        max_entries: Optional[int] = None,
    ):
        self._root = pathlib.Path(root) if root is not None else None
        self._legacy = pathlib.Path(legacy_dir) if legacy_dir is not None else None
        self.max_entries = max_entries
        self._memory: Dict[str, np.ndarray] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.merges = 0
        self.recovered = 0
        self.retired = 0
        self.evicted = 0

    # -- layout --------------------------------------------------------
    @property
    def root(self) -> pathlib.Path:
        """Store root; the default store tracks ``REPRO_CACHE_DIR`` live."""
        return self._root if self._root is not None else cache_dir() / "store"

    @property
    def legacy_dir(self) -> Optional[pathlib.Path]:
        """Pre-store ``campaigns/`` directory consulted on a miss."""
        if self._legacy is not None:
            return self._legacy
        if self._root is not None:
            return None  # explicit roots opt out of the default legacy dir
        return cache_dir() / "campaigns"

    def address(self, key: str) -> pathlib.Path:
        """Filesystem address of ``key``'s entry (may not exist yet)."""
        digest = content_hash(key)
        return self.root / digest[:2] / f"{digest}.npz"

    # -- accounting ----------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Monotonic counter snapshot; subtract two to audit one request."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "merges": self.merges,
                "recovered": self.recovered,
                "retired": self.retired,
                "evicted": self.evicted,
            }

    def _count(self, counter: str, n: int = 1) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + n)

    def clear_memory(self) -> None:
        """Drop the in-process memo layer (disk entries untouched)."""
        with self._lock:
            self._memory.clear()

    # -- read path -----------------------------------------------------
    def get(self, key: str) -> Optional[np.ndarray]:
        """Values for ``key``, or ``None`` on a miss.

        Serving order: in-process memory, then the content-addressed
        entry (verified against the full key and the current RNG
        contract), then the legacy per-key layout (promoted into the
        store on a hit).  Corrupt, colliding, or stale-contract entries
        are unlinked and counted (``recovered`` / ``retired``) so the
        store self-heals.
        """
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self.hits += 1
                return cached.copy()
        values = self._read_entry(key)
        if values is None:
            values = self._read_legacy(key)
            if values is not None:
                self.put(key, values)  # promote into the store
        if values is None:
            self._count("misses")
            return None
        with self._lock:
            self._memory[key] = values
            self.hits += 1
        return values.copy()

    def _read_entry(self, key: str) -> Optional[np.ndarray]:
        path = self.address(key)
        if not path.exists():
            return None
        try:
            with np.load(path, allow_pickle=False) as entry:
                stored_key = str(entry["key"])
                contract = str(entry["contract"])
                values = np.asarray(entry["values"], dtype=np.float64)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            self._unlink(path)
            self._count("recovered")
            return None
        if stored_key != key:
            # Hash collision or tampering: the entry is not this cell.
            self._unlink(path)
            self._count("recovered")
            return None
        if contract != RNG_CONTRACT:
            self._unlink(path)
            self._count("retired")
            return None
        self._touch(path)
        return values

    def _read_legacy(self, key: str) -> Optional[np.ndarray]:
        legacy = self.legacy_dir
        if legacy is None:
            return None
        path = legacy / f"{key}.npy"
        if not path.exists():
            return None
        try:
            return np.asarray(np.load(path, allow_pickle=False), dtype=np.float64)
        except (OSError, ValueError):
            self._unlink(path)  # truncated/corrupt file from an interrupted run
            self._count("recovered")
            return None

    # -- write path ----------------------------------------------------
    def put(self, key: str, values: np.ndarray) -> bool:
        """Persist one scenario's values; returns ``True`` when newly stored.

        An existing equal entry is a cross-worker/session merge (counted,
        not rewritten); an existing entry with *different* values means
        two engines disagreed on a hermetic key and raises — the store
        never silently picks a winner.  The write itself is atomic: a
        uniquely named temp file in the target directory is renamed over
        the final address, so a crash mid-write leaves no torn entry.
        """
        values = np.asarray(values, dtype=np.float64)
        path = self.address(key)
        existing = self._read_entry(key) if path.exists() else None
        if existing is not None:
            if existing.shape != values.shape or not np.array_equal(
                existing, values, equal_nan=True
            ):
                raise RuntimeError(
                    f"result store conflict for key {key!r}: stored values "
                    "differ from freshly computed ones (hermetic keys must "
                    "be bit-reproducible; check the RNG contract version)"
                )
            with self._lock:
                self._memory[key] = values
                self.merges += 1
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    key=np.asarray(key),
                    contract=np.asarray(RNG_CONTRACT),
                    values=values,
                )
            os.replace(tmp, path)
        except BaseException:
            self._unlink(tmp)
            raise
        with self._lock:
            self._memory[key] = values
            self.puts += 1
        if self.max_entries is not None:
            self.evict(self.max_entries)
        return True

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> list:
        if not self.root.exists():
            return []
        return sorted(self.root.glob("??/*.npz"))

    def __len__(self) -> int:
        return len(self._entries())

    def evict(self, max_entries: int) -> int:
        """Drop least-recently-served entries down to ``max_entries``.

        Recency is entry mtime — refreshed on every verified read — so
        hot cells of overlapping sweeps survive while one-off grids age
        out.  Returns the number of entries removed.
        """
        entries = self._entries()
        if len(entries) <= max_entries:
            return 0
        def mtime(path):
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0
        entries.sort(key=lambda p: (mtime(p), str(p)))
        removed = 0
        for path in entries[: len(entries) - max_entries]:
            self._unlink(path)
            removed += 1
        if removed:
            self._count("evicted", removed)
            with self._lock:
                self._memory.clear()  # memory may now shadow evicted keys
        return removed

    def retire_stale(self) -> int:
        """Delete entries written under a different RNG contract.

        A contract bump changes every key (the version is a key field),
        so stale entries are unreachable anyway — this reclaims the disk
        and counts what was retired.  Unreadable entries are recovered
        (removed) as a side effect.
        """
        removed = 0
        for path in self._entries():
            try:
                with np.load(path, allow_pickle=False) as entry:
                    contract = str(entry["contract"])
            except (OSError, ValueError, KeyError, zipfile.BadZipFile):
                self._unlink(path)
                self._count("recovered")
                continue
            if contract != RNG_CONTRACT:
                self._unlink(path)
                removed += 1
        if removed:
            self._count("retired", removed)
        return removed

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        try:
            os.utime(path, None)
        except OSError:
            pass  # recency refresh is best-effort

    @staticmethod
    def _unlink(path: pathlib.Path) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass  # already gone (concurrent recovery) or read-only


_DEFAULT_STORE = ResultStore()


def result_store() -> ResultStore:
    """The process-wide default store (rooted under ``REPRO_CACHE_DIR``)."""
    return _DEFAULT_STORE


def load_campaign_values(key: str) -> Optional[np.ndarray]:
    """Stored per-chip metric values for ``key``, or ``None`` on a miss."""
    return _DEFAULT_STORE.get(key)


def store_campaign_values(key: str, values: np.ndarray) -> None:
    """Persist one scenario's campaign values in the default store."""
    _DEFAULT_STORE.put(key, values)
