"""Activation-distribution analysis under faults (Fig. 1).

The paper motivates its method by showing that bit-flip faults shift and
widen the distribution of a layer's weighted sums (pre-normalization
activations).  This module captures those weighted sums from a trained
network with and without injected faults and summarizes the distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..faults import FaultInjector, FaultSpec
from ..nn.module import Module
from ..quant.layers import QuantizedComputeLayer
from ..tensor import Tensor, no_grad


@dataclass
class DistributionSummary:
    """Histogram + moments of one activation distribution."""

    label: str
    mean: float
    std: float
    histogram: np.ndarray
    bin_edges: np.ndarray

    @property
    def density(self) -> np.ndarray:
        widths = np.diff(self.bin_edges)
        total = self.histogram.sum()
        if total == 0:
            return self.histogram.astype(float)
        return self.histogram / (total * widths)


def capture_weighted_sums(
    model: Module, x: Tensor, layer_index: int = -1
) -> np.ndarray:
    """Collect the output of the ``layer_index``-th quantized layer.

    Uses a transparent wrapper around the layer's forward to capture its
    output (the crossbar's weighted sum) during a normal model pass.
    """
    layers = [m for m in model.modules() if isinstance(m, QuantizedComputeLayer)]
    if not layers:
        raise ValueError("model has no quantized compute layers")
    target = layers[layer_index]
    captured: List[np.ndarray] = []
    original_forward = target.forward

    def capturing_forward(*args, **kwargs):
        out = original_forward(*args, **kwargs)
        value = out[0] if isinstance(out, tuple) else out
        captured.append(np.asarray(value.data).ravel().copy())
        return out

    target.forward = capturing_forward
    try:
        model.eval()
        with no_grad():
            model(x)
    finally:
        del target.forward  # restore the class-level method
    if not captured:
        raise RuntimeError("target layer was never invoked")
    return np.concatenate(captured)


def activation_shift_experiment(
    model: Module,
    x: Tensor,
    flip_rates: Sequence[float] = (0.0, 0.10, 0.20),
    layer_index: int = -1,
    bins: int = 60,
    seed: int = 0,
) -> Dict[float, DistributionSummary]:
    """Fig. 1: weighted-sum distribution at several bit-flip rates."""
    injector = FaultInjector(model)
    results: Dict[float, DistributionSummary] = {}
    all_values = {}
    for i, rate in enumerate(flip_rates):
        spec = FaultSpec(kind="bitflip" if rate > 0 else "none", level=rate)
        rng = np.random.default_rng(
            np.random.SeedSequence(entropy=seed, spawn_key=(i,))
        )
        injector.attach(spec, rng)
        try:
            all_values[rate] = capture_weighted_sums(model, x, layer_index)
        finally:
            injector.detach()
    lo = min(v.min() for v in all_values.values())
    hi = max(v.max() for v in all_values.values())
    edges = np.linspace(lo, hi, bins + 1)
    for rate, values in all_values.items():
        hist, _ = np.histogram(values, bins=edges)
        label = "Fault-Free" if rate == 0 else f"{rate * 100:.0f}% Bit Flips"
        results[rate] = DistributionSummary(
            label=label,
            mean=float(values.mean()),
            std=float(values.std()),
            histogram=hist,
            bin_edges=edges,
        )
    return results
