"""High-level experiment drivers: robustness sweeps over methods.

These produce the data behind Table I and the curves of Figs. 5 and 6:
for each method, train (or fetch the cached) model, then run a Monte Carlo
fault campaign per fault level and collect mean ± std of the task metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..faults import CampaignResult, FaultSpec, MonteCarloCampaign
from ..models import MethodConfig
from .cache import trained_model
from .evaluators import make_evaluator
from .tasks import Task, mc_runs, mc_samples


@dataclass
class MethodCurve:
    """One method's metric across a fault-level sweep."""

    method: MethodConfig
    levels: np.ndarray
    means: np.ndarray
    stds: np.ndarray

    def value_at(self, level: float) -> float:
        idx = int(np.argmin(np.abs(self.levels - level)))
        return float(self.means[idx])

    @property
    def clean(self) -> float:
        """Metric at the first (fault-free) level."""
        return float(self.means[0])


@dataclass
class RobustnessSweep:
    """All methods' curves for one (task, fault-kind) experiment."""

    task_name: str
    metric_name: str
    higher_is_better: bool
    fault_kind: str
    curves: Dict[str, MethodCurve] = field(default_factory=dict)

    def improvement_over(
        self, baseline: str, ours: str = "proposed"
    ) -> np.ndarray:
        """Percent improvement of ``ours`` vs ``baseline`` at each level."""
        base = self.curves[baseline].means
        out = self.curves[ours].means
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.higher_is_better:
                rel = 100.0 * (out - base) / np.abs(base)
            else:
                rel = 100.0 * (base - out) / np.abs(base)
        return np.nan_to_num(rel)

    def max_improvement_over(self, baseline: str, ours: str = "proposed") -> float:
        return float(self.improvement_over(baseline, ours).max())


def campaign_eval_cap(preset: str) -> Optional[int]:
    """Evaluation-set cap for fault campaigns (None = whole test set)."""
    return {"tiny": None, "small": 100, "paper": None}[preset]


def run_robustness_sweep(
    task: Task,
    methods: Sequence[MethodConfig],
    specs: Sequence[FaultSpec],
    preset: str = "small",
    seed: int = 0,
    n_runs: Optional[int] = None,
    samples: Optional[int] = None,
    max_eval_samples: Optional[int] = -1,
    progress=None,
) -> RobustnessSweep:
    """Train/fetch each method's model and sweep the fault levels.

    Returns mean ± std of the task metric per method per level — the data
    behind one panel of Fig. 5 or Fig. 6.
    """
    n_runs = n_runs if n_runs is not None else mc_runs(preset)
    samples = samples if samples is not None else mc_samples(preset)
    if max_eval_samples == -1:
        max_eval_samples = campaign_eval_cap(preset)
    fault_kind = next((s.kind for s in specs if s.kind != "none"), "none")
    sweep = RobustnessSweep(
        task_name=task.name,
        metric_name=task.metric_name,
        higher_is_better=task.higher_is_better,
        fault_kind=fault_kind,
    )
    for method in methods:
        model = trained_model(task, method, preset, seed=seed)
        evaluator = make_evaluator(
            task.name,
            task.test_set,
            method,
            mc_samples=samples,
            max_samples=max_eval_samples,
        )
        campaign = MonteCarloCampaign(
            model, evaluator, n_runs=n_runs, base_seed=seed
        )
        results: List[CampaignResult] = campaign.sweep(
            specs,
            progress=(lambda msg, m=method: progress(f"[{task.name}/{m.name}] {msg}"))
            if progress
            else None,
        )
        sweep.curves[method.name] = MethodCurve(
            method=method,
            levels=np.array([s.level for s in specs]),
            means=np.array([r.mean for r in results]),
            stds=np.array([r.std for r in results]),
        )
    return sweep


def baseline_metrics(
    task: Task,
    methods: Sequence[MethodConfig],
    preset: str = "small",
    seed: int = 0,
    samples: Optional[int] = None,
) -> Dict[str, float]:
    """Fault-free metric per method (one Table I row)."""
    samples = samples if samples is not None else mc_samples(preset)
    row = {}
    for method in methods:
        model = trained_model(task, method, preset, seed=seed)
        evaluator = make_evaluator(task.name, task.test_set, method, mc_samples=samples)
        row[method.name] = evaluator(model)
    return row
