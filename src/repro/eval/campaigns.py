"""High-level experiment drivers: robustness sweeps over methods.

These produce the data behind Table I and the curves of Figs. 5 and 6:
for each method, train (or fetch the cached) model, then run a Monte Carlo
fault campaign per fault level and collect mean ± std of the task metric.

Execution architecture
----------------------
:func:`run_robustness_sweep` is a thin driver over the parallel campaign
engine (:mod:`repro.faults.executor`):

1. per method, the trained model is fetched (warming the model cache so
   process workers never retrain);
2. completed scenarios are served from the campaign-result cache
   (:func:`repro.eval.cache.load_campaign_values`) and skipped;
3. the remaining scenarios — with their *original* scenario indices, so
   per-cell seeds are unaffected by what was cached — are flattened into
   one (scenario × chip-run) grid and executed on the requested backend
   (``serial`` / ``thread`` / ``process`` / ``batched``, see
   ``executor=``/``workers=``); process workers rebuild the (model,
   evaluator) pair from a pickled :class:`TaskEvalHandle`, while the
   ``batched`` backend evaluates each scenario's chips — and, with
   scenario batching (default), every same-kind severity level at once —
   in one vectorized forward (the evaluators built here are chip-aware);
4. fresh results are written back to the cache.

Results are bit-identical for every backend, worker count, and cache state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import CampaignResult, FaultSpec, MonteCarloCampaign
from ..faults.executor import EvalHandle, Evaluator
from ..tensor import plan as _plan
from ..models import MethodConfig
from ..nn.module import Module
from .cache import campaign_key, load_campaign_values, store_campaign_values, trained_model
from .evaluators import make_evaluator
from .tasks import Task, build_task, mc_runs, mc_samples


@dataclass
class MethodCurve:
    """One method's metric across a fault-level sweep."""

    method: MethodConfig
    levels: np.ndarray
    means: np.ndarray
    stds: np.ndarray

    def value_at(self, level: float) -> float:
        idx = int(np.argmin(np.abs(self.levels - level)))
        return float(self.means[idx])

    @property
    def clean(self) -> float:
        """Metric at the first (fault-free) level."""
        return float(self.means[0])


@dataclass
class RobustnessSweep:
    """All methods' curves for one (task, fault-kind) experiment."""

    task_name: str
    metric_name: str
    higher_is_better: bool
    fault_kind: str
    curves: Dict[str, MethodCurve] = field(default_factory=dict)

    def improvement_over(
        self, baseline: str, ours: str = "proposed"
    ) -> np.ndarray:
        """Percent improvement of ``ours`` vs ``baseline`` at each level."""
        base = self.curves[baseline].means
        out = self.curves[ours].means
        with np.errstate(divide="ignore", invalid="ignore"):
            if self.higher_is_better:
                rel = 100.0 * (out - base) / np.abs(base)
            else:
                rel = 100.0 * (base - out) / np.abs(base)
        return np.nan_to_num(rel)

    def max_improvement_over(self, baseline: str, ours: str = "proposed") -> float:
        return float(self.improvement_over(baseline, ours).max())


@dataclass(frozen=True)
class TaskEvalHandle(EvalHandle):
    """Picklable recipe rebuilding a task's (model, evaluator) in a worker.

    The worker re-derives the task (datasets are a pure function of
    ``(task_name, preset, task_seed)``), fetches the trained model from the
    shared cache — the driver trains it *before* dispatch, so workers only
    load weights (or inherit the in-memory cache via fork) — and rebinds
    the metric evaluator.  ``task_seed`` is the seed the *driver's* task
    was built with (``Task.seed``), which may differ from the campaign
    ``seed``; using the campaign seed here would make workers evaluate a
    different synthesized test set than the serial path.
    """

    task_name: str
    preset: str
    seed: int
    method: MethodConfig
    samples: int
    max_eval_samples: Optional[int]
    task_seed: int

    def key(self) -> Hashable:
        return self

    def build(self) -> Tuple[Module, Evaluator]:
        task = build_task(self.task_name, preset=self.preset, seed=self.task_seed)
        model = trained_model(task, self.method, self.preset, seed=self.seed)
        evaluator = make_evaluator(
            task.name,
            task.test_set,
            self.method,
            mc_samples=self.samples,
            max_samples=self.max_eval_samples,
        )
        return model, evaluator


def campaign_eval_cap(preset: str) -> Optional[int]:
    """Evaluation-set cap for fault campaigns (None = whole test set)."""
    return {"tiny": None, "small": 100, "paper": None}[preset]


def run_robustness_sweep(
    task: Task,
    methods: Sequence[MethodConfig],
    specs: Sequence[FaultSpec],
    preset: str = "small",
    seed: int = 0,
    n_runs: Optional[int] = None,
    samples: Optional[int] = None,
    max_eval_samples: Optional[int] = -1,
    progress=None,
    executor: str = "serial",
    workers: Optional[int] = None,
    use_cache: bool = True,
    on_cell_done: Optional[Callable[[int, int], None]] = None,
    chip_limit: Optional[int] = None,
    mc_batched: Optional[bool] = None,
    scenario_batched: Optional[bool] = None,
    scenario_limit: Optional[int] = None,
    plan: Optional[bool] = None,
    plan_opt: Optional[bool] = None,
    attach_amortize: Optional[bool] = None,
) -> RobustnessSweep:
    """Train/fetch each method's model and sweep the fault levels.

    Returns mean ± std of the task metric per method per level — the data
    behind one panel of Fig. 5 or Fig. 6.

    ``executor``/``workers`` select the campaign backend (results are
    bit-identical to serial); ``chip_limit`` caps the chips stacked per
    pass by the ``batched`` backend, ``mc_batched`` toggles its MC-sample
    stacking and ``scenario_batched`` its cross-severity stacking (both
    default on — a sweep's same-kind levels run as ONE stacked pass per
    method, capped by ``scenario_limit``); ``use_cache=False`` bypasses
    the campaign-result cache (it is still written); ``on_cell_done(done,
    total)`` observes per-method cell completion for throughput reporting.
    ``plan`` toggles trace-compiled forward plans (None = on for every
    backend, bit-identical; ``plan=False`` is the CLI's ``--no-plan``),
    and ``plan_opt`` the trace-time IR optimizer passes over those plans
    (None = the ambient default, on unless ``REPRO_PLAN_OPT=0``;
    ``plan_opt=False`` is the CLI's ``--no-plan-opt`` — bit-identical
    either way).  ``attach_amortize`` toggles the campaign-level fault
    program registry that lets repeated identical cells skip re-attach
    (None = the ambient default, on unless ``REPRO_ATTACH_AMORTIZE=0``;
    ``attach_amortize=False`` is the CLI's ``--no-attach-amortize`` —
    bit-identical either way).
    """
    if mc_batched and executor != "batched":
        # Fail before the (potentially long) training phase — and even on a
        # fully cache-served sweep, where run_cells would never see the flag.
        raise ValueError(
            "mc_batched requires executor='batched' (the other backends "
            "evaluate Monte Carlo samples with the looped reference path)"
        )
    if scenario_batched and executor != "batched":
        raise ValueError(
            "scenario_batched requires executor='batched' (the other "
            "backends evaluate scenarios cell by cell)"
        )
    n_runs = n_runs if n_runs is not None else mc_runs(preset)
    samples = samples if samples is not None else mc_samples(preset)
    if max_eval_samples == -1:
        max_eval_samples = campaign_eval_cap(preset)
    fault_kind = next((s.kind for s in specs if s.kind != "none"), "none")
    sweep = RobustnessSweep(
        task_name=task.name,
        metric_name=task.metric_name,
        higher_is_better=task.higher_is_better,
        fault_kind=fault_kind,
    )
    for method in methods:
        keys = [
            campaign_key(task, method, spec, n_runs, samples, seed, max_eval_samples)
            for spec in specs
        ]
        results: List[Optional[CampaignResult]] = [None] * len(specs)
        pending: List[int] = []
        for idx, (spec, key) in enumerate(zip(specs, keys)):
            if use_cache:
                with _plan.stage("store"):
                    values = load_campaign_values(key)
            else:
                values = None
            if values is not None and len(values) == n_runs:
                results[idx] = CampaignResult(spec=spec, values=values)
            else:
                pending.append(idx)
        if pending:
            # Model and evaluator are only needed for uncached scenarios;
            # a fully cache-served method skips training/loading entirely.
            model = trained_model(task, method, preset, seed=seed)
            evaluator = make_evaluator(
                task.name,
                task.test_set,
                method,
                mc_samples=samples,
                max_samples=max_eval_samples,
            )
            handle = TaskEvalHandle(
                task.name, preset, seed, method, samples, max_eval_samples,
                task.seed,
            )
            campaign = MonteCarloCampaign(
                model,
                evaluator,
                n_runs=n_runs,
                base_seed=seed,
                executor=executor,
                workers=workers,
                handle=handle,
                chip_limit=chip_limit,
                mc_batched=mc_batched,
                scenario_batched=scenario_batched,
                scenario_limit=scenario_limit,
                plan=plan,
                plan_opt=plan_opt,
                attach_amortize=attach_amortize,
            )
            fresh = campaign.sweep(
                [specs[i] for i in pending],
                scenario_indices=pending,
                on_cell_done=on_cell_done,
            )
            for idx, result in zip(pending, fresh):
                results[idx] = result
                with _plan.stage("store"):
                    store_campaign_values(keys[idx], result.values)
        if progress is not None:
            for spec, result in zip(specs, results):
                progress(
                    f"[{task.name}/{method.name}] {spec.describe()}: "
                    f"{result.mean:.4f} ± {result.std:.4f}"
                )
        sweep.curves[method.name] = MethodCurve(
            method=method,
            levels=np.array([s.level for s in specs]),
            means=np.array([r.mean for r in results]),
            stds=np.array([r.std for r in results]),
        )
    return sweep


def baseline_metrics(
    task: Task,
    methods: Sequence[MethodConfig],
    preset: str = "small",
    seed: int = 0,
    samples: Optional[int] = None,
    use_cache: bool = True,
) -> Dict[str, float]:
    """Fault-free metric per method (one Table I row).

    Expressed as a single-scenario fault-free campaign per method so it
    shares the engine's hermetic per-cell seeding and the campaign-result
    cache with the robustness sweeps.
    """
    samples = samples if samples is not None else mc_samples(preset)
    clean = FaultSpec(kind="none", level=0.0)
    row = {}
    for method in methods:
        key = campaign_key(task, method, clean, 1, samples, seed, None)
        if use_cache:
            with _plan.stage("store"):
                values = load_campaign_values(key)
        else:
            values = None
        if values is None:
            model = trained_model(task, method, preset, seed=seed)
            evaluator = make_evaluator(
                task.name, task.test_set, method, mc_samples=samples
            )
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=1, base_seed=seed
            )
            values = campaign.run(clean).values
            with _plan.stage("store"):
                store_campaign_values(key, values)
        row[method.name] = float(values[0])
    return row
