"""Entry point: ``python -m repro.eval <command>`` (see cli.py)."""

from .cli import main

main()
