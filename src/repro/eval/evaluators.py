"""Metric evaluators used by training, campaigns and benchmarks.

Bayesian methods are scored with Monte Carlo averaging (fresh dropout /
affine-dropout masks per pass); the conventional NN is scored with a single
deterministic pass — exactly the paper's evaluation protocol.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.bayesian import BayesianClassifier, BayesianRegressor, mc_forward
from ..data.dataset import ArrayDataset
from ..models import MethodConfig
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from ..train.metrics import accuracy, binary_miou, rmse


def classification_accuracy(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 256,
) -> float:
    """Test-set accuracy (MC-averaged for Bayesian methods)."""
    correct = 0
    total = 0
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = Tensor(x)
        if method.is_bayesian:
            clf = BayesianClassifier(model, num_samples=mc_samples)
            pred = clf.predict(xt)
        else:
            model.eval()
            with no_grad():
                pred = model(xt).data.argmax(axis=-1)
        correct += int((pred == y).sum())
        total += len(y)
    return correct / total


def segmentation_miou(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 8,
) -> float:
    """Mean IoU of thresholded sigmoid predictions (MC-averaged logits)."""
    ious = []
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = Tensor(x)
        if method.is_bayesian:
            logits = mc_forward(model, xt, mc_samples).mean(axis=0)
        else:
            model.eval()
            with no_grad():
                logits = model(xt).data
        pred_mask = logits > 0.0  # sigmoid(logit) > 0.5
        for i in range(len(y)):
            ious.append(binary_miou(pred_mask[i], y[i] > 0.5))
    return float(np.mean(ious))


def regression_rmse(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 256,
) -> float:
    """RMSE of one-step forecasts (MC-averaged for Bayesian methods)."""
    preds = []
    targets = []
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = Tensor(x)
        if method.is_bayesian:
            reg = BayesianRegressor(model, num_samples=mc_samples)
            preds.append(reg.predict(xt))
        else:
            model.eval()
            with no_grad():
                preds.append(model(xt).data)
        targets.append(y)
    return rmse(np.concatenate(preds), np.concatenate(targets))


EVALUATORS: dict[str, Callable] = {
    "image": classification_accuracy,
    "audio": classification_accuracy,
    "co2": regression_rmse,
    "vessels": segmentation_miou,
}


def make_evaluator(
    task_name: str,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    max_samples: int | None = None,
) -> Callable[[Module], float]:
    """Bind a task's metric to its test set → ``model -> float``.

    This is the ``evaluator`` consumed by
    :class:`~repro.faults.campaign.MonteCarloCampaign`.  ``max_samples``
    caps the evaluation set (deterministic prefix) so Monte Carlo fault
    campaigns stay affordable on CPU.
    """
    fn = EVALUATORS[task_name]
    if max_samples is not None and len(test_set) > max_samples:
        test_set = test_set.subset(np.arange(max_samples))
    return lambda model: fn(model, test_set, method, mc_samples=mc_samples)
