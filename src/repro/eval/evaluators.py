"""Metric evaluators used by training, campaigns and benchmarks.

Bayesian methods are scored with Monte Carlo averaging (fresh dropout /
affine-dropout masks per pass); the conventional NN is scored with a single
deterministic pass — exactly the paper's evaluation protocol.

Chip-aware evaluation
---------------------
Every evaluator here is *chip-aware*: under an active chip batch
(:func:`repro.tensor.chipbatch.chip_batch`, installed by the campaign
engine's ``batched`` executor) the test inputs are broadcast to a leading
chip axis, predictions come back chip-stacked, and the metric is computed
**per chip** in exactly the arithmetic order of the serial path — so the
evaluator returns a ``(n_chips,)`` vector whose entry ``i`` is bit-identical
to the float a serial evaluation of chip ``i`` would produce.  When the
engine additionally enables MC batching
(:func:`repro.tensor.chipbatch.mc_batching`), the Monte Carlo loop inside
these evaluators collapses into one stacked ``chips x samples`` forward —
invisibly, because :func:`~repro.core.bayesian.mc_forward` restores the
looped ``(samples, chips, ...)`` layout before any metric arithmetic runs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..core.bayesian import BayesianClassifier, BayesianRegressor, mc_forward
from ..data.dataset import ArrayDataset
from ..models import MethodConfig
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from ..tensor.chipbatch import active_chip_count
from ..train.metrics import accuracy, binary_miou_stack, rmse


def _as_input(x: np.ndarray) -> Tensor:
    """Wrap a test batch, broadcasting it across an active chip batch."""
    n_chips = active_chip_count()
    if n_chips is not None:
        x = np.broadcast_to(x[None], (n_chips,) + x.shape).copy()
    return Tensor(x)


def classification_accuracy(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 256,
) -> float | np.ndarray:
    """Test-set accuracy (MC-averaged for Bayesian methods).

    Returns a float, or a per-chip vector under an active chip batch.
    """
    correct: np.ndarray | int = 0
    total = 0
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = _as_input(x)
        if method.is_bayesian:
            clf = BayesianClassifier(model, num_samples=mc_samples)
            pred = clf.predict(xt)
        else:
            model.eval()
            with no_grad():
                pred = model(xt).data.argmax(axis=-1)
        correct = correct + (pred == y).sum(axis=-1)
        total += len(y)
    return correct / total


def segmentation_miou(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 8,
) -> float | np.ndarray:
    """Mean IoU of thresholded sigmoid predictions (MC-averaged logits).

    Returns a float, or a per-chip vector under an active chip batch; each
    chip's mIoU averages the same per-image IoUs in the same order as the
    serial path.
    """
    per_image = []  # float per image, or (n_chips,) per image when batched
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = _as_input(x)
        if method.is_bayesian:
            logits = mc_forward(model, xt, mc_samples).mean(axis=0)
        else:
            model.eval()
            with no_grad():
                logits = model(xt).data
        pred_mask = logits > 0.0  # sigmoid(logit) > 0.5
        batched = pred_mask.ndim == y.ndim + 1
        if batched:
            # One vectorized pass over (chips * images): row c*n + i scores
            # chip c's prediction for image i against that image's truth —
            # bit-identical to the former per-image binary_miou_stack loop.
            chips, n = pred_mask.shape[0], pred_mask.shape[1]
            truth = np.broadcast_to(y > 0.5, (chips,) + y.shape)
            flat = binary_miou_stack(
                pred_mask.reshape((chips * n,) + pred_mask.shape[2:]),
                truth.reshape((chips * n,) + y.shape[1:]),
            ).reshape(chips, n)
            per_image.extend(flat.T)  # one (chips,) vector per image
        else:
            # Whole batch in one array op — bit-identical to looping
            # binary_miou image by image.
            per_image.extend(binary_miou_stack(pred_mask, y > 0.5))
    if per_image and isinstance(per_image[0], np.ndarray):
        stacked = np.stack(per_image, axis=0)  # (images, chips)
        return np.array(
            [float(np.mean(stacked[:, chip])) for chip in range(stacked.shape[1])]
        )
    return float(np.mean(per_image))


def regression_rmse(
    model: Module,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    batch_size: int = 256,
) -> float | np.ndarray:
    """RMSE of one-step forecasts (MC-averaged for Bayesian methods).

    Returns a float, or a per-chip vector under an active chip batch.
    """
    preds = []
    targets = []
    for start in range(0, len(test_set), batch_size):
        x, y = test_set[np.s_[start : start + batch_size]]
        xt = _as_input(x)
        if method.is_bayesian:
            reg = BayesianRegressor(model, num_samples=mc_samples)
            preds.append(reg.predict(xt))
        else:
            model.eval()
            with no_grad():
                preds.append(model(xt).data)
        targets.append(y)
    # Concatenate along the sample axis (the last one when chip-batched).
    return rmse(np.concatenate(preds, axis=-1), np.concatenate(targets))


EVALUATORS: dict[str, Callable] = {
    "image": classification_accuracy,
    "audio": classification_accuracy,
    "co2": regression_rmse,
    "vessels": segmentation_miou,
}


def make_evaluator(
    task_name: str,
    test_set: ArrayDataset,
    method: MethodConfig,
    mc_samples: int = 8,
    max_samples: int | None = None,
) -> Callable[[Module], float]:
    """Bind a task's metric to its test set → ``model -> float``.

    This is the ``evaluator`` consumed by
    :class:`~repro.faults.campaign.MonteCarloCampaign`.  ``max_samples``
    caps the evaluation set (deterministic prefix) so Monte Carlo fault
    campaigns stay affordable on CPU.  The returned callable is chip-aware:
    under an active chip batch it returns a per-chip metric vector, which
    is what the ``batched`` executor backend requires.
    """
    fn = EVALUATORS[task_name]
    if max_samples is not None and len(test_set) > max_samples:
        test_set = test_set.subset(np.arange(max_samples))
    return lambda model: fn(model, test_set, method, mc_samples=mc_samples)
