"""Task registry: datasets + models + training recipes for the four tasks.

Every paper experiment is expressed against a :class:`Task`: a named bundle
of (train set, test set, model factory, loss, trainer recipe, metric).
Three size presets trade fidelity for CPU time:

* ``tiny`` — seconds; used by unit/integration tests,
* ``small`` — the default for benchmarks (minutes per experiment),
* ``paper`` — paper-scale Monte Carlo settings (``REPRO_FULL=1``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..data import (
    ArrayDataset,
    make_audio_task,
    make_co2_task,
    make_image_task,
    make_vessel_task,
)
from ..models import M5, LSTMForecaster, MethodConfig, ResNet18, UNet
from ..nn.module import Module
from ..tensor import manual_seed
from ..train import (
    Adam,
    CosineSchedule,
    Trainer,
    cross_entropy,
    mse_loss,
    segmentation_loss,
)

PRESETS = ("tiny", "small", "paper")


def _tag(sizes: dict) -> str:
    """Geometry fingerprint used in model-cache keys."""
    return "-".join(f"{k}{v}" for k, v in sorted(sizes.items()))


def active_preset(default: str = "small") -> str:
    """Preset selected by the ``REPRO_FULL`` / ``REPRO_PRESET`` env vars."""
    if os.environ.get("REPRO_FULL") == "1":
        return "paper"
    preset = os.environ.get("REPRO_PRESET", default)
    if preset not in PRESETS:
        raise ValueError(f"REPRO_PRESET must be one of {PRESETS}, got {preset!r}")
    return preset


def mc_runs(preset: str) -> int:
    """Monte Carlo chip instances per fault scenario (paper: 100)."""
    return {"tiny": 3, "small": 8, "paper": 100}[preset]


def mc_samples(preset: str) -> int:
    """Bayesian forward passes per prediction."""
    return {"tiny": 4, "small": 6, "paper": 20}[preset]


@dataclass
class Task:
    """One deep-learning task with its training recipe."""

    name: str
    metric_name: str
    higher_is_better: bool
    train_set: ArrayDataset
    test_set: ArrayDataset
    model_factory: Callable[[MethodConfig], Module]
    loss_fn: Callable
    epochs: int
    batch_size: int
    lr: float
    weight_decay: float = 1e-4
    grad_clip: Optional[float] = 5.0
    cache_tag: str = ""  # geometry fingerprint so stale checkpoints miss
    #: Seed the datasets were synthesized with; campaign handles rebuild
    #: the task from it so workers evaluate the exact same test set.
    seed: int = 0

    def build_model(self, method: MethodConfig, seed: int = 0) -> Module:
        """Construct the model deterministically for (method, seed)."""
        manual_seed(seed)
        return self.model_factory(method)

    def train_model(
        self, method: MethodConfig, seed: int = 0, verbose: bool = False
    ) -> Module:
        """Train a fresh model for this task/method."""
        model = self.build_model(method, seed=seed)
        epochs = max(1, int(round(self.epochs * method.epochs_multiplier)))
        optimizer = Adam(
            model.parameters(), lr=self.lr, weight_decay=self.weight_decay
        )
        trainer = Trainer(
            model,
            optimizer,
            self.loss_fn,
            schedule=CosineSchedule(optimizer, epochs),
            grad_clip=self.grad_clip,
        )
        manual_seed(seed + 1)
        trainer.fit(
            self.train_set,
            epochs=epochs,
            batch_size=self.batch_size,
            verbose=verbose,
        )
        return model


def image_task(preset: str = "small", seed: int = 0) -> Task:
    """CIFAR-10 stand-in on binarized ResNet-18 (1/1 W/A)."""
    sizes = {
        "tiny": dict(n_train=8, n_test=4, size=12, width=8, epochs=2, batch=16),
        "small": dict(n_train=50, n_test=15, size=16, width=8, epochs=24, batch=32),
        "paper": dict(n_train=200, n_test=50, size=16, width=16, epochs=30, batch=64),
    }[preset]
    train, test = make_image_task(
        n_train_per_class=sizes["n_train"],
        n_test_per_class=sizes["n_test"],
        size=sizes["size"],
        seed=seed,
    )
    return Task(
        name="image",
        metric_name="accuracy",
        higher_is_better=True,
        train_set=train,
        test_set=test,
        model_factory=lambda method: ResNet18(
            method, num_classes=10, base_width=sizes["width"]
        ),
        loss_fn=cross_entropy,
        epochs=sizes["epochs"],
        batch_size=sizes["batch"],
        lr=3e-3,
        cache_tag=_tag(sizes),
        seed=seed,
    )


def audio_task(preset: str = "small", seed: int = 0) -> Task:
    """Speech-commands stand-in on 8/8-bit M5."""
    sizes = {
        "tiny": dict(n_train=8, n_test=4, length=128, width=8, epochs=3, batch=16),
        "small": dict(n_train=40, n_test=15, length=256, width=48, epochs=15, batch=32),
        "paper": dict(n_train=150, n_test=40, length=256, width=96, epochs=30, batch=64),
    }[preset]
    train, test = make_audio_task(
        n_train_per_class=sizes["n_train"],
        n_test_per_class=sizes["n_test"],
        length=sizes["length"],
        seed=seed,
    )
    return Task(
        name="audio",
        metric_name="accuracy",
        higher_is_better=True,
        train_set=train,
        test_set=test,
        model_factory=lambda method: M5(
            method, num_classes=10, base_width=sizes["width"]
        ),
        loss_fn=cross_entropy,
        epochs=sizes["epochs"],
        batch_size=sizes["batch"],
        lr=3e-3,
        cache_tag=_tag(sizes),
        seed=seed,
    )


def co2_task(preset: str = "small", seed: int = 0) -> Task:
    """Atmospheric CO2 forecast on the 8-bit two-layer LSTM."""
    sizes = {
        "tiny": dict(n_months=120, window=12, hidden=8, epochs=4, batch=32),
        "small": dict(n_months=360, window=18, hidden=16, epochs=25, batch=32),
        "paper": dict(n_months=480, window=24, hidden=32, epochs=60, batch=64),
    }[preset]
    forecast = make_co2_task(
        n_months=sizes["n_months"], window=sizes["window"], seed=seed
    )
    return Task(
        name="co2",
        metric_name="rmse",
        higher_is_better=False,
        train_set=forecast.train,
        test_set=forecast.test,
        model_factory=lambda method: LSTMForecaster(
            method, hidden_size=sizes["hidden"]
        ),
        loss_fn=mse_loss,
        epochs=sizes["epochs"],
        batch_size=sizes["batch"],
        lr=5e-3,
        weight_decay=1e-5,
        cache_tag=_tag(sizes),
        seed=seed,
    )


def vessel_task(preset: str = "small", seed: int = 0) -> Task:
    """DRIVE stand-in on binary-weight / 4-bit-PACT U-Net."""
    sizes = {
        "tiny": dict(n_train=4, n_test=2, size=16, width=8, epochs=3, batch=2),
        "small": dict(n_train=16, n_test=6, size=32, width=8, epochs=20, batch=4),
        "paper": dict(n_train=32, n_test=8, size=48, width=16, epochs=40, batch=4),
    }[preset]
    train, test = make_vessel_task(
        n_train=sizes["n_train"],
        n_test=sizes["n_test"],
        size=sizes["size"],
        seed=seed,
    )
    return Task(
        name="vessels",
        metric_name="mIoU",
        higher_is_better=True,
        train_set=train,
        test_set=test,
        model_factory=lambda method: UNet(method, base_width=sizes["width"], depth=2),
        loss_fn=segmentation_loss,
        epochs=sizes["epochs"],
        batch_size=sizes["batch"],
        lr=3e-3,
        cache_tag=_tag(sizes),
        seed=seed,
    )


TASK_BUILDERS: Dict[str, Callable[..., Task]] = {
    "image": image_task,
    "audio": audio_task,
    "co2": co2_task,
    "vessels": vessel_task,
}


def build_task(name: str, preset: str = "small", seed: int = 0) -> Task:
    """Look up and build a task by name."""
    if name not in TASK_BUILDERS:
        raise KeyError(f"unknown task {name!r}; available: {list(TASK_BUILDERS)}")
    return TASK_BUILDERS[name](preset=preset, seed=seed)
