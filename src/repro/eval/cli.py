"""Command-line experiment runner.

Regenerate any paper artifact without pytest::

    python -m repro.eval table1 --preset small
    python -m repro.eval fig5 --task image --fault bitflip
    python -m repro.eval fig6 --task co2 --fault multiplicative
    python -m repro.eval fig7 --shift rotation
    python -m repro.eval campaign --task audio --fault additive \
        --levels 0 0.1 0.2 --runs 10 --executor process --workers 4

Monte Carlo campaigns run on the parallel engine: ``--executor
{serial,thread,process,batched}`` selects the backend and ``--workers N``
the worker count — results are bit-identical to serial in any
configuration.  ``batched`` evaluates all chips of a scenario in one
vectorized forward — by default including the Monte Carlo sample axis of
Bayesian methods (``--mc-batched``, disable with ``--no-mc-batched``)
and all same-kind severity levels of the sweep (``--scenario-batched``,
disable with ``--no-scenario-batched``; cap with ``--scenario-limit``) —
and is the fastest backend on a single core.  A live throughput line
(cells/s, ETA) is printed to stderr while a sweep is running.

Trained models and completed campaign scenarios are cached under
``.repro_cache`` exactly as the benchmarks do, so repeated and resumed
invocations skip finished work (``--no-cache`` forces re-simulation).

Campaign-family commands can also run through the long-lived campaign
service (:mod:`repro.serve`): ``--serve N`` spins up an in-process
service with N shard workers for this invocation, and ``--connect
HOST:PORT`` talks to a daemon started with ``python -m repro.serve`` —
either way the sweep is sharded across workers, already-computed cells
are served from the content-addressed result store, and results stay
bit-identical to the serial path.
"""

from __future__ import annotations

import argparse
import contextlib
from typing import List

from ..core.bayesian import BayesianClassifier
from ..data import noise_stages, rotation_stages
from ..faults import (
    FaultSpec,
    additive_sweep,
    bitflip_sweep,
    multiplicative_sweep,
    uniform_sweep,
)
from ..models import all_methods, proposed
from ..tensor import manual_seed
from ..tensor import plan as _plan
from ..uncertainty import evaluate_shift_sweep
from .campaigns import baseline_metrics, run_robustness_sweep
from .cache import trained_model
from .reporting import (
    ProgressMeter,
    format_profile,
    format_service_stats,
    format_sweep,
    format_table_row,
    summarize_improvements,
    table_header,
)
from .tasks import build_task, mc_samples

_SWEEP_BUILDERS = {
    "bitflip": bitflip_sweep,
    "additive": additive_sweep,
    "multiplicative": multiplicative_sweep,
    "uniform": uniform_sweep,
}

_DEFAULT_LEVELS = {
    "bitflip": [0.0, 0.05, 0.10, 0.20],
    "additive": [0.0, 0.1, 0.2, 0.4],
    "multiplicative": [0.0, 0.2, 0.4, 0.8],
    "uniform": [0.0, 0.1, 0.2, 0.4],
}

_CONVENTIONAL_NORM = {"image": "batch", "audio": "batch", "co2": "batch",
                      "vessels": "group"}


def _methods_for(task_name: str):
    return all_methods(conventional_norm=_CONVENTIONAL_NORM[task_name])


def cmd_table1(args) -> None:
    rows = [
        ("image", "ResNet-18", "Accuracy", "1/1"),
        ("audio", "M5", "Accuracy", "8/8"),
        ("vessels", "U-Net", "mIoU", "1/4"),
        ("co2", "LSTM", "RMSE", "8/8"),
    ]
    print(table_header())
    for task_name, topology, metric, precision in rows:
        task = build_task(task_name, preset=args.preset, seed=args.seed)
        values = baseline_metrics(
            task, _methods_for(task_name), preset=args.preset, seed=args.seed
        )
        print(format_table_row(topology, task_name, metric, precision, values))


def cmd_sweep(args) -> None:
    levels = args.levels if args.levels else _DEFAULT_LEVELS[args.fault]
    specs = _SWEEP_BUILDERS[args.fault](levels)
    if args.connect is not None or args.serve is not None:
        _cmd_sweep_service(args, specs)
        return
    _cmd_sweep_local(args, specs)


def _cmd_sweep_local(args, specs) -> None:
    """The in-process sweep path (also the --fallback-local target)."""
    task = build_task(args.task, preset=args.preset, seed=args.seed)
    meter = ProgressMeter(label=f"{args.task}/{args.fault}")
    with contextlib.ExitStack() as stack:
        stages = stack.enter_context(_plan.profiled()) if args.profile else None
        sweep = run_robustness_sweep(
            task,
            _methods_for(args.task),
            specs,
            preset=args.preset,
            seed=args.seed,
            n_runs=args.runs,
            progress=print if args.verbose else None,
            executor=args.executor,
            workers=args.workers,
            use_cache=not args.no_cache,
            on_cell_done=meter,
            chip_limit=args.chip_limit,
            mc_batched=args.mc_batched,
            scenario_batched=args.scenario_batched,
            scenario_limit=args.scenario_limit,
            plan=args.plan,
            plan_opt=args.plan_opt,
            attach_amortize=args.attach_amortize,
        )
    if meter.total:
        meter.finish()
    print(format_sweep(sweep))
    print(summarize_improvements(sweep))
    if stages is not None:
        print(format_profile(stages))


def _cmd_sweep_service(args, specs) -> None:
    """Route one sweep through the campaign service (tentpole path).

    ``--serve N`` hosts an in-process service for this invocation (shut
    down on exit); ``--connect`` targets a running daemon.  Results are
    bit-identical to the in-process driver; the service stats line below
    the tables shows store/compute accounting and per-worker throughput.

    Client deadlines and retries come from ``--connect-timeout`` /
    ``--request-timeout`` / ``--retries``.  With ``--fallback-local``,
    a service that stays unreachable after every retry degrades to the
    in-process engine instead of failing the invocation — safe because
    both paths are bit-identical.
    """
    from ..serve import CampaignService, ServiceClient, ServiceUnavailable

    methods = _methods_for(args.task)
    try:
        with contextlib.ExitStack() as stack:
            stages = (
                stack.enter_context(_plan.profiled()) if args.profile else None
            )
            client_options = {
                "connect_timeout": args.connect_timeout,
                "request_timeout": args.request_timeout,
                "retries": args.retries,
            }
            if args.connect is not None:
                client = stack.enter_context(
                    ServiceClient(args.connect, **client_options)
                )
            else:
                service = stack.enter_context(
                    CampaignService(workers=args.serve, verbose=args.verbose)
                )
                client = stack.enter_context(
                    ServiceClient(service.address, **client_options)
                )
            on_partial = None
            if args.verbose:
                def on_partial(frame):
                    print(f"[{args.task}/{frame['method']}] scenario "
                          f"{frame['scenario']} <- {frame['source']}")
            sweep, stats = client.sweep(
                args.task,
                methods,
                specs,
                preset=args.preset,
                seed=args.seed,
                n_runs=args.runs,
                use_store=not args.no_cache,
                on_partial=on_partial,
            )
            if stages is not None:
                stages["store"] = (
                    stages.get("store", 0.0) + stats.get("store_seconds", 0.0)
                )
    except ServiceUnavailable as exc:
        if not args.fallback_local:
            raise
        print(f"service unavailable ({exc}); falling back to the "
              "in-process engine")
        _cmd_sweep_local(args, specs)
        return
    print(format_sweep(sweep))
    print(summarize_improvements(sweep))
    print(format_service_stats(stats))
    if stages is not None:
        print(format_profile(stages))


def cmd_store_gc(args) -> None:
    """Garbage-collect the content-addressed result store.

    Always retires entries written under a different RNG contract
    (unreachable since a contract bump changes every key); with
    ``--max-entries`` additionally evicts least-recently-served entries
    down to the cap.  Prints the counters so service hosts can cron it.
    """
    from .cache import result_store

    store = result_store()
    retired = store.retire_stale()
    evicted = store.evict(args.max_entries) if args.max_entries is not None \
        else 0
    print(f"store-gc: {retired} stale entries retired, "
          f"{evicted} evicted, {len(store)} remaining")


def cmd_fig7(args) -> None:
    task = build_task("image", preset=args.preset, seed=args.seed)
    model = trained_model(task, proposed(), args.preset, seed=args.seed)
    clf = BayesianClassifier(model, num_samples=mc_samples(args.preset))
    inputs = task.test_set.inputs[:100]
    labels = task.test_set.targets[:100]
    magnitudes = (
        rotation_stages() if args.shift == "rotation"
        else noise_stages(max_strength=2.0, stages=8)
    )
    result = evaluate_shift_sweep(clf, inputs, labels, args.shift, magnitudes)
    print(f"{'shift':>9} | {'accuracy':>9} | {'NLL':>8} | {'flagged':>8}")
    for stage in result.stages:
        print(f"{stage.magnitude:9.1f} | {stage.accuracy:9.3f} | "
              f"{stage.nll:8.3f} | {stage.detection_rate:8.1%}")
    print(f"overall OOD detection rate: {result.overall_detection_rate():.1%}")


def _add_common(parser: argparse.ArgumentParser, suppress: bool) -> None:
    """Global options, accepted before *or* after the subcommand.

    The subparser copies use ``SUPPRESS`` defaults so a value given after
    the subcommand overrides the root default without clobbering a value
    given before it.
    """
    parser.add_argument(
        "--preset", choices=("tiny", "small", "paper"),
        default=argparse.SUPPRESS if suppress else "small",
    )
    parser.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS if suppress else 0
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Regenerate paper artifacts from the command line.",
    )
    _add_common(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    p1 = sub.add_parser("table1", help="Table I fault-free metrics")
    _add_common(p1, suppress=True)

    for name, help_text in (
        ("fig5", "Fig. 5 robustness panel (image/vessels)"),
        ("fig6", "Fig. 6 robustness panel (audio/co2)"),
        ("campaign", "custom fault sweep"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_common(p, suppress=True)
        p.add_argument("--task", required=True,
                       choices=("image", "audio", "co2", "vessels"))
        p.add_argument("--fault", default="bitflip", choices=tuple(_SWEEP_BUILDERS))
        p.add_argument("--levels", type=float, nargs="*", default=None)
        p.add_argument("--runs", type=int, default=None)
        p.add_argument("--verbose", action="store_true")
        p.add_argument(
            "--executor", default="serial",
            choices=("serial", "thread", "process", "batched"),
            help="campaign backend; results are bit-identical to serial "
                 "(batched = all chips of a scenario in one vectorized pass)",
        )
        p.add_argument(
            "--workers", type=int, default=None,
            help="worker count for --executor thread/process (default 4)",
        )
        p.add_argument(
            "--chip-limit", type=int, default=None,
            help="max chips stacked per pass for --executor batched "
                 "(default: all chips of a scenario; smaller caps bound "
                 "memory without changing results)",
        )
        p.add_argument(
            "--mc-batched", action=argparse.BooleanOptionalAction, default=None,
            help="stack the Monte Carlo sample axis into the vectorized "
                 "pass (--executor batched only; on by default there, "
                 "bit-identical to the looped reference either way; "
                 "--no-mc-batched falls back to looping MC samples)",
        )
        p.add_argument(
            "--scenario-batched", action=argparse.BooleanOptionalAction,
            default=None,
            help="stack all same-kind severity levels of the sweep into "
                 "one vectorized pass (--executor batched only; on by "
                 "default there, bit-identical to the looped reference "
                 "either way; --no-scenario-batched falls back to one "
                 "pass per scenario)",
        )
        p.add_argument(
            "--scenario-limit", type=int, default=None,
            help="max severity levels stacked per pass for "
                 "--scenario-batched (default: the whole same-kind group; "
                 "smaller caps bound memory without changing results)",
        )
        p.add_argument(
            "--plan", action=argparse.BooleanOptionalAction, default=None,
            help="route gradient-free campaign forwards through "
                 "trace-compiled plans (on by default for every backend; "
                 "the first forward per configuration traces a flat numpy "
                 "kernel sequence, later ones replay it with reused "
                 "buffers, bit-identical to the interpreted path; "
                 "--no-plan forces full interpretation)",
        )
        p.add_argument(
            "--plan-opt", action=argparse.BooleanOptionalAction, default=None,
            help="run the trace-time plan-IR optimizer (constant folding, "
                 "kernel fusion, dead-step elimination) over every traced "
                 "plan (on by default; bit-identical to the raw trace "
                 "either way; --no-plan-opt replays the unoptimized step "
                 "list, e.g. to isolate an optimizer pass)",
        )
        p.add_argument(
            "--attach-amortize", action=argparse.BooleanOptionalAction,
            default=None,
            help="serve repeated identical cells from the campaign-level "
                 "fault program registry instead of re-attaching their "
                 "hooks (on by default; bit-identical either way; "
                 "--no-attach-amortize forces a full attach per cell, "
                 "e.g. to measure the amortization win itself)",
        )
        p.add_argument(
            "--profile", action="store_true",
            help="print a per-stage wall-time breakdown "
                 "(attach/program/trace/replay/metric) after the sweep, plus the "
                 "plan optimizer's per-pass step counters, for locating "
                 "hot paths without external tooling",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="ignore cached campaign results and re-simulate every cell "
                 "(with --serve/--connect: bypass the result store entirely)",
        )
        p.add_argument(
            "--serve", type=int, default=None, metavar="N",
            help="run the sweep through an in-process campaign service "
                 "with N shard workers (sharded by (task, fault-kind) "
                 "group, already-computed cells served from the "
                 "content-addressed result store; bit-identical to the "
                 "serial path)",
        )
        p.add_argument(
            "--connect", default=None, metavar="HOST:PORT",
            help="run the sweep through a running campaign service "
                 "daemon (python -m repro.serve); keeps models, plans, "
                 "and fault programs warm across invocations",
        )
        p.add_argument(
            "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
            help="TCP connect deadline per service attempt (default 5)",
        )
        p.add_argument(
            "--request-timeout", type=float, default=600.0, metavar="SECONDS",
            help="deadline on every blocking service read/write — a "
                 "stalled reply frame trips it and triggers a retry "
                 "(default 600)",
        )
        p.add_argument(
            "--retries", type=int, default=2,
            help="additional attempts after a transport failure "
                 "(reconnect with exponential backoff + deterministic "
                 "jitter; the retried request re-sends the same "
                 "idempotent request id, so nothing is double-counted; "
                 "default 2)",
        )
        p.add_argument(
            "--fallback-local", action="store_true",
            help="if the service stays unreachable after every retry, "
                 "run the sweep on the in-process engine instead of "
                 "failing (bit-identical results either way)",
        )

    pgc = sub.add_parser(
        "store-gc",
        help="bound the content-addressed result store on long-lived hosts",
    )
    _add_common(pgc, suppress=True)
    pgc.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="evict least-recently-served entries down to N "
             "(recency = entry mtime, refreshed on every verified read; "
             "omit to only retire stale-contract entries)",
    )

    p7 = sub.add_parser("fig7", help="Fig. 7 OOD shift sweep")
    _add_common(p7, suppress=True)
    p7.add_argument("--shift", default="rotation", choices=("rotation", "uniform"))
    return parser


def main(argv: List[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    manual_seed(args.seed)
    if args.command == "table1":
        cmd_table1(args)
    elif args.command in ("fig5", "fig6", "campaign"):
        cmd_sweep(args)
    elif args.command == "store-gc":
        cmd_store_gc(args)
    elif args.command == "fig7":
        cmd_fig7(args)


if __name__ == "__main__":
    main()
