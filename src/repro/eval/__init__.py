"""Experiment harness: tasks, evaluators, caches, campaigns, reporting.

Campaign drivers (:func:`run_robustness_sweep`, :func:`baseline_metrics`)
ride the parallel engine in :mod:`repro.faults.executor`; pass
``executor="batched"`` to evaluate each scenario's chip instances in one
vectorized forward (the fastest backend on a single core — every evaluator
built by :func:`make_evaluator` is chip-aware and returns a per-chip metric
vector under an active chip batch).  Results are bit-identical across all
backends and are cached per scenario by :func:`campaign_key` in the
content-addressed :class:`ResultStore` shared across workers, sessions,
and the campaign service (:mod:`repro.serve`).
"""

from .activations import (
    DistributionSummary,
    activation_shift_experiment,
    capture_weighted_sums,
)
from .cache import (
    ResultStore,
    cache_dir,
    campaign_key,
    clear_memory_cache,
    content_hash,
    load_campaign_values,
    result_store,
    store_campaign_values,
    trained_model,
)
from .campaigns import (
    MethodCurve,
    RobustnessSweep,
    TaskEvalHandle,
    baseline_metrics,
    campaign_eval_cap,
    run_robustness_sweep,
)
from .evaluators import (
    classification_accuracy,
    make_evaluator,
    regression_rmse,
    segmentation_miou,
)
from .reporting import (
    METHOD_LABELS,
    ProgressMeter,
    format_profile,
    format_service_stats,
    format_sweep,
    format_table_row,
    summarize_improvements,
    table_header,
)
from .tasks import (
    PRESETS,
    Task,
    active_preset,
    audio_task,
    build_task,
    co2_task,
    image_task,
    mc_runs,
    mc_samples,
    vessel_task,
)

__all__ = [
    "Task",
    "build_task",
    "image_task",
    "audio_task",
    "co2_task",
    "vessel_task",
    "active_preset",
    "mc_runs",
    "mc_samples",
    "PRESETS",
    "trained_model",
    "cache_dir",
    "clear_memory_cache",
    "campaign_key",
    "content_hash",
    "load_campaign_values",
    "store_campaign_values",
    "ResultStore",
    "result_store",
    "TaskEvalHandle",
    "ProgressMeter",
    "classification_accuracy",
    "segmentation_miou",
    "regression_rmse",
    "make_evaluator",
    "run_robustness_sweep",
    "baseline_metrics",
    "campaign_eval_cap",
    "RobustnessSweep",
    "MethodCurve",
    "format_table_row",
    "table_header",
    "format_profile",
    "format_service_stats",
    "format_sweep",
    "summarize_improvements",
    "METHOD_LABELS",
    "capture_weighted_sums",
    "activation_shift_experiment",
    "DistributionSummary",
]
