"""Text rendering of experiment results in the paper's format."""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from .campaigns import RobustnessSweep

#: Paper column labels for the four methods.
METHOD_LABELS = {
    "conventional": "NN",
    "spindrop": "SpinDrop",
    "spatial-spindrop": "SpatialSpinDrop",
    "proposed": "Proposed",
    "proposed-conventional-order": "Proposed (conv. order)",
}


def format_table_row(
    topology: str,
    dataset: str,
    metric: str,
    precision: str,
    values: Dict[str, float],
    order: Sequence[str] = ("conventional", "spindrop", "spatial-spindrop", "proposed"),
) -> str:
    """One Table-I row: topology, dataset, metric, W/A, method columns."""
    cells = [f"{topology:<10}", f"{dataset:<18}", f"{metric:<9}", f"{precision:<5}"]
    for name in order:
        value = values.get(name)
        cells.append(f"{value:8.4f}" if value is not None else f"{'-':>8}")
    return " | ".join(cells)


def table_header(
    order: Sequence[str] = ("conventional", "spindrop", "spatial-spindrop", "proposed"),
) -> str:
    cells = [f"{'Topology':<10}", f"{'Dataset':<18}", f"{'Metric':<9}", f"{'W/A':<5}"]
    cells += [f"{METHOD_LABELS[n]:>8}" for n in order]
    line = " | ".join(cells)
    return line + "\n" + "-" * len(line)


def format_sweep(sweep: RobustnessSweep, level_format: str = "{:g}") -> str:
    """Render one fault sweep as a levels-by-methods text table."""
    names = list(sweep.curves)
    header = f"{'level':>8} | " + " | ".join(
        f"{METHOD_LABELS.get(n, n):>22}" for n in names
    )
    lines = [
        f"{sweep.task_name} / {sweep.fault_kind} ({sweep.metric_name}"
        f"{'↑' if sweep.higher_is_better else '↓'})",
        header,
        "-" * len(header),
    ]
    levels = sweep.curves[names[0]].levels
    for i, level in enumerate(levels):
        cells = [f"{level_format.format(level):>8}"]
        for n in names:
            curve = sweep.curves[n]
            cells.append(f"{curve.means[i]:14.4f} ±{curve.stds[i]:5.4f}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def summarize_improvements(sweep: RobustnessSweep) -> str:
    """The paper's headline numbers: max improvement vs each baseline."""
    lines = []
    for baseline in sweep.curves:
        if baseline == "proposed":
            continue
        value = sweep.max_improvement_over(baseline)
        lines.append(
            f"max improvement of Proposed over {METHOD_LABELS.get(baseline, baseline)}: "
            f"{value:+.2f}%"
        )
    return "\n".join(lines)
