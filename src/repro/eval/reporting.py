"""Text rendering of experiment results and campaign progress reporting."""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional, Sequence, TextIO

import numpy as np

from .campaigns import RobustnessSweep


class ProgressMeter:
    """Throughput/ETA reporter for campaign cell grids.

    Plugs into the engine's ``on_cell_done(done, total)`` callback and
    renders an in-place line like ``campaign: 24/64 cells · 3.1 cells/s ·
    ETA 13s`` (rate-limited to ``min_interval`` seconds), ending with a
    one-line summary via :meth:`finish`.  Writes to stderr by default so
    result tables on stdout stay machine-readable.
    """

    def __init__(
        self,
        label: str = "campaign",
        stream: Optional[TextIO] = None,
        min_interval: float = 0.2,
    ):
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        # Clock starts on the first completed cell, so setup work before
        # the grid (model training, dataset synthesis) does not deflate
        # the reported throughput.
        self.started: Optional[float] = None
        self.done = 0
        self.total = 0
        self._base_done = 0
        self._base_total = 0
        self._seg_done = 0
        self._seg_total = 0
        self._last_render = 0.0

    def __call__(self, done: int, total: int) -> None:
        if self.started is None:
            self.started = time.monotonic()
        # ``done`` strictly increases within one cell grid, so a
        # non-increasing value means a new grid (next method) started:
        # fold the finished segment into the running totals.
        if done <= self._seg_done:
            self._base_done += self._seg_done
            self._base_total += self._seg_total
        self._seg_done, self._seg_total = done, total
        self.done = self._base_done + done
        self.total = self._base_total + total
        now = time.monotonic()
        if done < total and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        elapsed = max(now - self.started, 1e-9)
        rate = self.done / elapsed
        eta = (self.total - self.done) / rate if rate > 0 else float("inf")
        self.stream.write(
            f"\r{self.label}: {self.done}/{self.total} cells · "
            f"{rate:.2f} cells/s · ETA {eta:4.0f}s"
        )
        self.stream.flush()

    def finish(self) -> str:
        """Clear the live line and return/emit the final summary."""
        started = self.started if self.started is not None else time.monotonic()
        elapsed = max(time.monotonic() - started, 1e-9)
        summary = (
            f"{self.label}: {self.done} cells in {elapsed:.1f}s "
            f"({self.done / elapsed:.2f} cells/s)"
        )
        self.stream.write("\r" + summary + " " * 16 + "\n")
        self.stream.flush()
        return summary

def format_profile(stages: Dict[str, float]) -> str:
    """Render the ``--profile`` per-stage wall-time breakdown.

    ``stages`` is the ``{stage: seconds}`` dict collected by
    :func:`repro.tensor.plan.profiled`: ``attach`` (fault-pattern seed
    draws + hook installation), ``program`` (fault-program registry
    lookups, stored-hook re-installs, and registry stores on the
    attach-amortized path), ``trace`` (interpreted forwards recorded
    into plans), ``replay`` (flat kernel replays), and ``metric`` (the
    whole evaluator call).  Trace and replay run *inside* the evaluator,
    so the table reports the evaluator's remaining self-time as
    ``metric (other)`` — batch slicing, MC averaging, metric arithmetic.
    Cells served from the program registry skip attach entirely, so
    their cost lands under ``program``, never inflating ``attach``.
    ``store`` is content-addressed result-store traffic (lookups and
    atomic writes of campaign values) and ``transport`` the campaign
    service's wire time (framing, pickling, socket I/O) — both outside
    the evaluator, so service overhead is never silently attributed to
    ``attach``/``trace``/``replay``.

    Only stages that were actually recorded get a row: with
    ``--no-plan`` no forward is traced or replayed, so those rows are
    omitted rather than printed as misleading zeros.  ``opt.*`` keys are
    the plan optimizer's per-pass step counters (not times); they render
    as a single summary line after the table when present.
    """
    attach = stages.get("attach", 0.0)
    program = stages.get("program", 0.0)
    trace = stages.get("trace", 0.0)
    replay = stages.get("replay", 0.0)
    metric = stages.get("metric", 0.0)
    store = stages.get("store", 0.0)
    transport = stages.get("transport", 0.0)
    other = max(metric - trace - replay, 0.0)
    total = attach + program + metric + store + transport
    rows = [
        ("attach", attach, "attach" in stages),
        ("program", program, "program" in stages),
        ("trace", trace, "trace" in stages),
        ("replay", replay, "replay" in stages),
        ("metric (other)", other, "metric" in stages),
        ("store", store, "store" in stages),
        ("transport", transport, "transport" in stages),
    ]
    present = [(label, seconds) for label, seconds, here in rows if here]
    if not present:
        return "per-stage wall time: (no stages recorded)"
    lines = ["per-stage wall time:"]
    for label, seconds in present:
        share = 100.0 * seconds / total if total > 0 else 0.0
        lines.append(f"  {label:<14} {seconds * 1000:9.1f}ms  {share:5.1f}%")
    lines.append(f"  {'total':<14} {total * 1000:9.1f}ms")
    if "opt.steps_before" in stages:
        lines.append(
            "plan optimizer: "
            f"{int(stages.get('opt.deduped', 0))} deduped, "
            f"{int(stages.get('opt.folded', 0))} folded, "
            f"{int(stages.get('opt.fused', 0))} fused, "
            f"{int(stages.get('opt.eliminated', 0))} eliminated, "
            f"{int(stages.get('opt.densified', 0))} densified, "
            f"{int(stages.get('opt.prefixed', 0))} prefixed "
            f"({int(stages['opt.steps_before'])} -> "
            f"{int(stages.get('opt.steps_after', 0))} steps)"
        )
    return "\n".join(lines)


def format_service_stats(stats: Dict) -> str:
    """Render a campaign-service reply's accounting block.

    One summary line — cells served from the content-addressed store vs
    freshly computed, redundant computations (cells whose store entry
    already existed; zero on a healthy repeat), and scheduling counters —
    then a recovery line when any fault-tolerance counter fired (worker
    hangs, respawns, retried units/attempts, chaos-shimmed frames), and
    one throughput row per shard worker.
    """
    lines = [
        "service: "
        f"{stats['served_cells']} cells served from store, "
        f"{stats['computed_cells']} computed, "
        f"{stats['redundant_cells']} redundant "
        f"(rounds={stats['rounds']}, reshards={stats['reshards']}, "
        f"deaths={stats['worker_deaths']})"
    ]
    recovery = {
        key: int(stats.get(key, 0))
        for key in ("hangs", "respawns", "retries", "frames_dropped",
                    "frames_delayed", "frames_corrupted")
    }
    if any(recovery.values()):
        lines.append(
            "  recovery: "
            + ", ".join(f"{key}={value}" for key, value in recovery.items())
        )
    for row in stats.get("workers", []):
        lines.append(
            f"  worker {row['worker']}: {row['cells']} cells in "
            f"{row['seconds']:.2f}s ({row['cells_per_sec']:.1f} cells/s)"
        )
    return "\n".join(lines)


#: Paper column labels for the four methods.
METHOD_LABELS = {
    "conventional": "NN",
    "spindrop": "SpinDrop",
    "spatial-spindrop": "SpatialSpinDrop",
    "proposed": "Proposed",
    "proposed-conventional-order": "Proposed (conv. order)",
}


def format_table_row(
    topology: str,
    dataset: str,
    metric: str,
    precision: str,
    values: Dict[str, float],
    order: Sequence[str] = ("conventional", "spindrop", "spatial-spindrop", "proposed"),
) -> str:
    """One Table-I row: topology, dataset, metric, W/A, method columns."""
    cells = [f"{topology:<10}", f"{dataset:<18}", f"{metric:<9}", f"{precision:<5}"]
    for name in order:
        value = values.get(name)
        cells.append(f"{value:8.4f}" if value is not None else f"{'-':>8}")
    return " | ".join(cells)


def table_header(
    order: Sequence[str] = ("conventional", "spindrop", "spatial-spindrop", "proposed"),
) -> str:
    """Header line of the Table-I layout (one column per method)."""
    cells = [f"{'Topology':<10}", f"{'Dataset':<18}", f"{'Metric':<9}", f"{'W/A':<5}"]
    cells += [f"{METHOD_LABELS[n]:>8}" for n in order]
    line = " | ".join(cells)
    return line + "\n" + "-" * len(line)


def format_sweep(sweep: RobustnessSweep, level_format: str = "{:g}") -> str:
    """Render one fault sweep as a levels-by-methods text table."""
    names = list(sweep.curves)
    header = f"{'level':>8} | " + " | ".join(
        f"{METHOD_LABELS.get(n, n):>22}" for n in names
    )
    lines = [
        f"{sweep.task_name} / {sweep.fault_kind} ({sweep.metric_name}"
        f"{'↑' if sweep.higher_is_better else '↓'})",
        header,
        "-" * len(header),
    ]
    levels = sweep.curves[names[0]].levels
    for i, level in enumerate(levels):
        cells = [f"{level_format.format(level):>8}"]
        for n in names:
            curve = sweep.curves[n]
            cells.append(f"{curve.means[i]:14.4f} ±{curve.stds[i]:5.4f}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)


def summarize_improvements(sweep: RobustnessSweep) -> str:
    """The paper's headline numbers: max improvement vs each baseline."""
    lines = []
    for baseline in sweep.curves:
        if baseline == "proposed":
            continue
        value = sweep.max_improvement_over(baseline)
        lines.append(
            f"max improvement of Proposed over {METHOD_LABELS.get(baseline, baseline)}: "
            f"{value:+.2f}%"
        )
    return "\n".join(lines)
