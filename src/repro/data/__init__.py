"""Synthetic datasets for the paper's four tasks, loaders, and OOD shifts.

See DESIGN.md §2 for the substitution rationale: each generator preserves
the statistical structure the corresponding experiment depends on (multi-
class separability, temporal patterns, trend+seasonality, thin elongated
structures) without requiring the original data.
"""

from .audio import generate_waveform, make_audio_dataset, make_audio_task
from .co2 import ForecastTask, co2_series, make_co2_task, make_forecast_windows
from .dataset import ArrayDataset, DataLoader
from .images import generate_image, make_image_dataset, make_image_task
from .shifts import (
    ROTATION_STAGES,
    ROTATION_STEP_DEGREES,
    add_uniform_noise,
    noise_stages,
    rotate_images,
    rotation_stages,
)
from .vessels import generate_vessel_sample, make_vessel_dataset, make_vessel_task

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "make_image_dataset",
    "make_image_task",
    "generate_image",
    "make_audio_dataset",
    "make_audio_task",
    "generate_waveform",
    "co2_series",
    "make_co2_task",
    "make_forecast_windows",
    "ForecastTask",
    "make_vessel_dataset",
    "make_vessel_task",
    "generate_vessel_sample",
    "rotate_images",
    "add_uniform_noise",
    "rotation_stages",
    "noise_stages",
    "ROTATION_STAGES",
    "ROTATION_STEP_DEGREES",
]
