"""Procedural retinal-vessel segmentation dataset (DRIVE stand-in).

The DRIVE dataset is 40 fundus photographs with manually annotated vessel
masks.  This generator grows random branching vessel trees (biased random
walks with width decay and stochastic bifurcation) on a retina-like
background (radial brightness falloff + low-frequency texture + noise) and
returns the exact rasterized tree as the ground-truth mask — preserving the
thin-elongated-structure segmentation problem U-Net was designed for.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..tensor.random import get_rng
from .dataset import ArrayDataset


def _stamp_disk(mask: np.ndarray, cy: float, cx: float, radius: float) -> None:
    size = mask.shape[0]
    r_int = max(1, int(np.ceil(radius)))
    y0, y1 = max(0, int(cy) - r_int), min(size, int(cy) + r_int + 1)
    x0, x1 = max(0, int(cx) - r_int), min(size, int(cx) + r_int + 1)
    if y0 >= y1 or x0 >= x1:
        return
    yy, xx = np.mgrid[y0:y1, x0:x1]
    inside = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius**2
    mask[y0:y1, x0:x1][inside] = 1.0


def _grow_vessel(
    mask: np.ndarray,
    start: Tuple[float, float],
    direction: float,
    width: float,
    rng: np.random.Generator,
    depth: int = 0,
) -> None:
    """Biased random walk stamping disks; bifurcates with decaying width."""
    size = mask.shape[0]
    y, x = start
    steps = rng.integers(size // 2, size)
    for _ in range(steps):
        _stamp_disk(mask, y, x, width)
        direction += rng.normal(0.0, 0.25)
        y += np.sin(direction)
        x += np.cos(direction)
        if not (0 <= y < size and 0 <= x < size):
            return
        if depth < 2 and width > 0.9 and rng.random() < 0.04:
            branch_dir = direction + rng.choice([-1.0, 1.0]) * rng.uniform(0.5, 1.0)
            _grow_vessel(mask, (y, x), branch_dir, width * 0.7, rng, depth + 1)
            width *= 0.85
        width = max(0.6, width * 0.995)


def generate_vessel_sample(
    size: int, rng: np.random.Generator, noise: float = 0.08
) -> Tuple[np.ndarray, np.ndarray]:
    """One (image ``(1, s, s)``, mask ``(s, s)``) pair."""
    mask = np.zeros((size, size))
    n_trees = rng.integers(2, 4)
    for _ in range(n_trees):
        edge = rng.integers(0, 4)
        pos = rng.uniform(0.2, 0.8) * size
        if edge == 0:
            start, direction = (0.0, pos), rng.uniform(0.2, np.pi - 0.2)
        elif edge == 1:
            start, direction = (float(size - 1), pos), -rng.uniform(0.2, np.pi - 0.2)
        elif edge == 2:
            start, direction = (pos, 0.0), rng.uniform(-np.pi / 3, np.pi / 3)
        else:
            start, direction = (pos, float(size - 1)), np.pi + rng.uniform(
                -np.pi / 3, np.pi / 3
            )
        _grow_vessel(mask, start, direction, rng.uniform(1.0, 1.8), rng)

    # Retina-like background: radial falloff + low-frequency texture.
    coords = np.linspace(-1.0, 1.0, size)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    radial = 0.7 - 0.3 * (xx**2 + yy**2)
    texture = 0.08 * np.sin(3.0 * xx + rng.uniform(0, 6.28)) * np.sin(
        3.0 * yy + rng.uniform(0, 6.28)
    )
    background = radial + texture
    contrast = rng.uniform(0.25, 0.4)
    image = background - contrast * mask + rng.normal(0.0, noise, (size, size))
    return image[None, :, :], mask


def make_vessel_dataset(
    n_samples: int = 24,
    size: int = 32,
    noise: float = 0.08,
    rng: Optional[np.random.Generator] = None,
) -> ArrayDataset:
    """Dataset of vessel images with per-pixel binary masks."""
    rng = rng or get_rng()
    images = np.empty((n_samples, 1, size, size))
    masks = np.empty((n_samples, size, size))
    for i in range(n_samples):
        images[i], masks[i] = generate_vessel_sample(size, rng, noise=noise)
    return ArrayDataset(images, masks)


def make_vessel_task(
    n_train: int = 24,
    n_test: int = 8,
    size: int = 32,
    noise: float = 0.08,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Train/test pair with disjoint random draws."""
    rng = np.random.default_rng(seed)
    train = make_vessel_dataset(n_train, size=size, noise=noise, rng=rng)
    test = make_vessel_dataset(n_test, size=size, noise=noise, rng=rng)
    return train, test
