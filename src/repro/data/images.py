"""Synthetic 10-class image dataset (CIFAR-10 stand-in).

Substitution note (DESIGN.md §2): the paper's image-classification fault
experiments measure *relative* accuracy degradation of trained networks
under parameter faults; what matters is a learnable multi-class task with
non-trivial intra-class variation, not natural-image statistics.  This
generator produces parametric texture classes — oriented gratings at two
spatial frequencies, radial rings, and checkerboards — with randomized
phase, position, amplitude, per-channel color mixing, and additive noise,
which a small CNN learns to high (but not perfect) accuracy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor.random import get_rng
from .dataset import ArrayDataset

NUM_CLASSES = 10

#: (orientation in radians, cycles across the image) for grating classes 0-7.
_GRATING_PARAMS = [
    (0.0, 2.0),
    (np.pi / 4, 2.0),
    (np.pi / 2, 2.0),
    (3 * np.pi / 4, 2.0),
    (0.0, 4.0),
    (np.pi / 4, 4.0),
    (np.pi / 2, 4.0),
    (3 * np.pi / 4, 4.0),
]

#: Per-class RGB tint; gives color a secondary (non-sufficient) cue.
_CLASS_TINTS = np.array(
    [
        [1.0, 0.6, 0.6],
        [0.6, 1.0, 0.6],
        [0.6, 0.6, 1.0],
        [1.0, 1.0, 0.6],
        [1.0, 0.6, 1.0],
        [0.6, 1.0, 1.0],
        [1.0, 0.8, 0.6],
        [0.8, 0.6, 1.0],
        [0.7, 1.0, 0.8],
        [1.0, 0.7, 0.9],
    ]
)


def _grating(size: int, theta: float, cycles: float, phase: float) -> np.ndarray:
    coords = np.linspace(0.0, 1.0, size, endpoint=False)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    proj = xx * np.cos(theta) + yy * np.sin(theta)
    return np.sin(2.0 * np.pi * cycles * proj + phase)


def _rings(size: int, cycles: float, cx: float, cy: float, phase: float) -> np.ndarray:
    coords = np.linspace(0.0, 1.0, size, endpoint=False)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    r = np.sqrt((xx - cx) ** 2 + (yy - cy) ** 2)
    return np.sin(2.0 * np.pi * cycles * r + phase)


def _checkerboard(size: int, cells: int, ox: float, oy: float) -> np.ndarray:
    coords = np.linspace(0.0, 1.0, size, endpoint=False)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    pattern = np.sign(np.sin(np.pi * cells * (xx + ox)) * np.sin(np.pi * cells * (yy + oy)))
    return pattern


def generate_image(
    label: int, size: int, rng: np.random.Generator, noise: float = 0.15
) -> np.ndarray:
    """One CHW image of class ``label`` with randomized nuisance parameters."""
    phase = rng.uniform(0.0, 2.0 * np.pi)
    amplitude = rng.uniform(0.7, 1.0)
    if label < 8:
        theta, cycles = _GRATING_PARAMS[label]
        theta = theta + rng.normal(0.0, 0.06)
        cycles = cycles * rng.uniform(0.9, 1.1)
        base = _grating(size, theta, cycles, phase)
    elif label == 8:
        base = _rings(
            size,
            rng.uniform(2.5, 3.5),
            rng.uniform(0.3, 0.7),
            rng.uniform(0.3, 0.7),
            phase,
        )
    else:
        base = _checkerboard(size, 4, rng.uniform(0, 0.5), rng.uniform(0, 0.5))
    tint = _CLASS_TINTS[label] * rng.uniform(0.85, 1.15, size=3)
    image = amplitude * base[None, :, :] * tint[:, None, None]
    image = image + rng.normal(0.0, noise, size=image.shape)
    return image


def make_image_dataset(
    n_per_class: int = 100,
    size: int = 16,
    noise: float = 0.15,
    rng: Optional[np.random.Generator] = None,
) -> ArrayDataset:
    """Balanced dataset of ``NUM_CLASSES * n_per_class`` CHW images."""
    rng = rng or get_rng()
    images = np.empty((NUM_CLASSES * n_per_class, 3, size, size))
    labels = np.empty(NUM_CLASSES * n_per_class, dtype=np.int64)
    i = 0
    for label in range(NUM_CLASSES):
        for _ in range(n_per_class):
            images[i] = generate_image(label, size, rng, noise=noise)
            labels[i] = label
            i += 1
    order = rng.permutation(len(labels))
    return ArrayDataset(images[order], labels[order])


def make_image_task(
    n_train_per_class: int = 100,
    n_test_per_class: int = 25,
    size: int = 16,
    noise: float = 0.15,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Train/test pair with disjoint random draws."""
    rng = np.random.default_rng(seed)
    train = make_image_dataset(n_train_per_class, size=size, noise=noise, rng=rng)
    test = make_image_dataset(n_test_per_class, size=size, noise=noise, rng=rng)
    return train, test
