"""Dataset containers and minibatch loading."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from ..tensor import Tensor
from ..tensor.random import get_rng


class ArrayDataset:
    """In-memory dataset of (inputs, targets) numpy arrays."""

    def __init__(self, inputs: np.ndarray, targets: np.ndarray):
        if len(inputs) != len(targets):
            raise ValueError(
                f"inputs ({len(inputs)}) and targets ({len(targets)}) "
                "must have the same length"
            )
        self.inputs = np.asarray(inputs, dtype=np.float64)
        self.targets = np.asarray(targets)

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.targets[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        return ArrayDataset(self.inputs[indices], self.targets[indices])

    def split(self, train_fraction: float, rng: Optional[np.random.Generator] = None):
        """Shuffled train/test split."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = rng or get_rng()
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        return self.subset(order[:cut]), self.subset(order[cut:])

    def tensors(self) -> Tuple[Tensor, np.ndarray]:
        """Whole dataset as one (inputs tensor, raw targets) pair."""
        return Tensor(self.inputs), self.targets


class DataLoader:
    """Minibatch iterator yielding ``(Tensor inputs, ndarray targets)``."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.rng = rng

    def __len__(self) -> int:
        return (len(self.dataset) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = (
            (self.rng or get_rng()).permutation(n) if self.shuffle else np.arange(n)
        )
        for start in range(0, n, self.batch_size):
            idx = order[start : start + self.batch_size]
            x, y = self.dataset[idx]
            yield Tensor(x), y
