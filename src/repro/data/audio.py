"""Synthetic audio-command dataset (Google Speech Commands stand-in).

Ten waveform classes over a fixed-length 1-D signal: up/down chirps, two
pure tones, AM and FM tones, a square wave, a pulse train, a noise burst and
a dual tone.  Randomized phase, amplitude, timing jitter and additive noise
provide intra-class variation; the classes exercise exactly the temporal
convolution + pooling pipeline of the paper's M5 topology.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..tensor.random import get_rng
from .dataset import ArrayDataset

NUM_CLASSES = 10


def generate_waveform(
    label: int, length: int, rng: np.random.Generator, noise: float = 0.1
) -> np.ndarray:
    """One waveform of class ``label``, shape ``(1, length)`` in [-1, 1]."""
    t = np.linspace(0.0, 1.0, length, endpoint=False)
    phase = rng.uniform(0.0, 2.0 * np.pi)
    amp = rng.uniform(0.7, 1.0)
    jitter = rng.uniform(0.9, 1.1)
    if label == 0:  # up-chirp
        f0, f1 = 2.0 * jitter, 24.0 * jitter
        signal = np.sin(2 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t**2) + phase)
    elif label == 1:  # down-chirp
        f0, f1 = 24.0 * jitter, 2.0 * jitter
        signal = np.sin(2 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t**2) + phase)
    elif label == 2:  # low tone
        signal = np.sin(2 * np.pi * 4.0 * jitter * t + phase)
    elif label == 3:  # high tone
        signal = np.sin(2 * np.pi * 20.0 * jitter * t + phase)
    elif label == 4:  # AM tone
        carrier = np.sin(2 * np.pi * 16.0 * jitter * t + phase)
        envelope = 0.5 * (1.0 + np.sin(2 * np.pi * 2.0 * t))
        signal = carrier * envelope
    elif label == 5:  # FM tone
        mod = 4.0 * np.sin(2 * np.pi * 2.0 * t)
        signal = np.sin(2 * np.pi * 12.0 * jitter * t + mod + phase)
    elif label == 6:  # square wave
        signal = np.sign(np.sin(2 * np.pi * 6.0 * jitter * t + phase))
    elif label == 7:  # pulse train
        period = max(4, int(length / (8.0 * jitter)))
        offset = rng.integers(0, period)
        signal = np.zeros(length)
        signal[offset::period] = 1.0
        kernel = np.exp(-np.arange(8) / 2.0)
        signal = np.convolve(signal, kernel, mode="same")
    elif label == 8:  # noise burst in a window
        signal = np.zeros(length)
        start = rng.integers(0, length // 2)
        width = length // 4
        signal[start : start + width] = rng.normal(0.0, 1.0, width)
    else:  # dual tone
        signal = 0.5 * (
            np.sin(2 * np.pi * 5.0 * jitter * t + phase)
            + np.sin(2 * np.pi * 17.0 * jitter * t)
        )
    signal = amp * signal + rng.normal(0.0, noise, length)
    return signal[None, :]


def make_audio_dataset(
    n_per_class: int = 80,
    length: int = 256,
    noise: float = 0.1,
    rng: Optional[np.random.Generator] = None,
) -> ArrayDataset:
    """Balanced dataset of ``NUM_CLASSES * n_per_class`` waveforms (NCL)."""
    rng = rng or get_rng()
    signals = np.empty((NUM_CLASSES * n_per_class, 1, length))
    labels = np.empty(NUM_CLASSES * n_per_class, dtype=np.int64)
    i = 0
    for label in range(NUM_CLASSES):
        for _ in range(n_per_class):
            signals[i] = generate_waveform(label, length, rng, noise=noise)
            labels[i] = label
            i += 1
    order = rng.permutation(len(labels))
    return ArrayDataset(signals[order], labels[order])


def make_audio_task(
    n_train_per_class: int = 80,
    n_test_per_class: int = 20,
    length: int = 256,
    noise: float = 0.1,
    seed: int = 0,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Train/test pair with disjoint random draws."""
    rng = np.random.default_rng(seed)
    train = make_audio_dataset(n_train_per_class, length=length, noise=noise, rng=rng)
    test = make_audio_dataset(n_test_per_class, length=length, noise=noise, rng=rng)
    return train, test
