"""Atmospheric CO2 time series (Mauna Loa stand-in) for forecasting.

The paper forecasts atmospheric CO2 with a two-layer LSTM.  The published
Mauna Loa record is accurately described by a quadratic secular trend plus
an annual cycle with a second harmonic; this generator reproduces exactly
that structure (coefficients fitted to the public record's shape) with
configurable observation noise, so the autoregressive task is statistically
equivalent without shipping the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..tensor.random import get_rng
from .dataset import ArrayDataset


def co2_series(
    n_months: int = 480,
    noise: float = 0.25,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Monthly CO2 concentration (ppm), Mauna-Loa-shaped.

    Trend: ``315 + 0.1 * m + 5.5e-5 * m**2`` ppm (m in months since start);
    seasonality: 3 ppm annual cycle plus a 0.8 ppm second harmonic.
    """
    rng = rng or get_rng()
    m = np.arange(n_months, dtype=np.float64)
    trend = 315.0 + 0.1 * m + 5.5e-5 * m**2
    seasonal = 3.0 * np.sin(2.0 * np.pi * m / 12.0 + 0.4) + 0.8 * np.sin(
        4.0 * np.pi * m / 12.0
    )
    return trend + seasonal + rng.normal(0.0, noise, n_months)


@dataclass
class ForecastTask:
    """Windowed autoregressive forecasting task.

    Inputs are sliding windows of ``window`` consecutive normalized values
    (shape ``(n, window, 1)`` for the LSTM); the target is the next value.
    Normalization statistics come from the training segment only.
    """

    train: ArrayDataset
    test: ArrayDataset
    mean: float
    std: float

    def denormalize(self, values: np.ndarray) -> np.ndarray:
        return values * self.std + self.mean


def make_forecast_windows(
    series: np.ndarray, window: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Slide a window over the series → (inputs ``(n, window, 1)``, targets)."""
    if window >= len(series):
        raise ValueError(
            f"window ({window}) must be shorter than the series ({len(series)})"
        )
    n = len(series) - window
    inputs = np.empty((n, window, 1))
    targets = np.empty(n)
    for i in range(n):
        inputs[i, :, 0] = series[i : i + window]
        targets[i] = series[i + window]
    return inputs, targets


def make_co2_task(
    n_months: int = 480,
    window: int = 24,
    train_fraction: float = 0.8,
    noise: float = 0.25,
    seed: int = 0,
) -> ForecastTask:
    """Chronological train/test forecasting task on the synthetic record.

    The split is chronological (train on the past, test on the future), as
    is standard for autoregressive evaluation; the test segment therefore
    also probes mild extrapolation along the trend.
    """
    rng = np.random.default_rng(seed)
    series = co2_series(n_months, noise=noise, rng=rng)
    cut = int(len(series) * train_fraction)
    mean = float(series[:cut].mean())
    std = float(series[:cut].std())
    normalized = (series - mean) / std
    x_train, y_train = make_forecast_windows(normalized[:cut], window)
    x_test, y_test = make_forecast_windows(normalized[cut - window :], window)
    return ForecastTask(
        train=ArrayDataset(x_train, y_train),
        test=ArrayDataset(x_test, y_test),
        mean=mean,
        std=std,
    )
