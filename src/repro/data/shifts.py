"""Distribution-shift transforms for the OOD experiments (Fig. 7).

Two shift families, matching the paper's protocol (which follows [9]):

* **rotation** — images gradually rotated in 7-degree increments over 12
  stages;
* **uniform noise** — escalating random uniform noise added to the inputs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np
from scipy import ndimage

from ..tensor.random import get_rng

ROTATION_STEP_DEGREES = 7.0
ROTATION_STAGES = 12


def rotate_images(images: np.ndarray, degrees: float) -> np.ndarray:
    """Rotate a batch of CHW images about their centre (zero-padded)."""
    if degrees == 0.0:
        return images.copy()
    return ndimage.rotate(
        images, degrees, axes=(-2, -1), reshape=False, order=1, mode="constant"
    )


def add_uniform_noise(
    inputs: np.ndarray,
    strength: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Add ``U(-strength, strength)`` noise elementwise."""
    if strength == 0.0:
        return inputs.copy()
    rng = rng or get_rng()
    return inputs + rng.uniform(-strength, strength, size=inputs.shape)


def rotation_stages(
    step: float = ROTATION_STEP_DEGREES, stages: int = ROTATION_STAGES
) -> List[float]:
    """The paper's rotation schedule: 0°, 7°, ..., 84° (12 shifted stages)."""
    return [step * i for i in range(stages + 1)]


def noise_stages(max_strength: float = 1.0, stages: int = 10) -> List[float]:
    """Escalating uniform-noise strengths, starting at 0 (in-distribution)."""
    return list(np.linspace(0.0, max_strength, stages + 1))
