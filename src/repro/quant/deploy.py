"""Deployment-freeze helpers for quantized models.

A trained network is *deployed* to an IMC chip by programming its
quantized weight codes into NVM cells once; inference then reuses those
codes verbatim.  :class:`~repro.quant.layers.QuantizedComputeLayer` models
this with a per-layer quantization cache keyed by each parameter's
``(uid, version)`` counter (see :class:`repro.nn.module.Parameter`), active
during gradient-free forwards.  This module provides the model-level
conveniences around that cache:

* :func:`freeze_deployment` — switch a model to inference mode and
  pre-program (warm) every quantized layer's codes, like writing the chip
  before a campaign;
* :func:`warm_quantization` — warm the record caches without touching
  train/eval mode;
* :func:`invalidate_quantization` — drop all cached codes, forcing the
  next forward to requantize (useful after mutating weights in place
  without going through an optimizer / ``load_state_dict``, which bump
  version counters automatically);
* :func:`quantized_layers` — iterate a model's NVM-mapped layers.

Freezing is never *required* for correctness: the version-counter keys
already invalidate on every optimizer step and state-dict load, so
training after deployment transparently reprograms.
"""

from __future__ import annotations

from typing import Iterator

from ..nn.module import Module
from .functional import QuantizedWeight
from .layers import QuantizedComputeLayer


def quantized_layers(model: Module) -> Iterator[QuantizedComputeLayer]:
    """All NVM-mapped compute layers of ``model`` (depth-first order)."""
    for module in model.modules():
        if isinstance(module, QuantizedComputeLayer):
            yield module


def warm_quantization(model: Module) -> int:
    """Pre-compute every quantized layer's clean record cache.

    Equivalent to programming the chip: after warming, gradient-free
    forwards serve codes + scales from the cache until a parameter's
    version counter changes.  Returns the number of warmed weight slots.
    """
    from ..tensor.grad_mode import no_grad

    warmed = 0
    with no_grad():
        for layer in quantized_layers(model):
            for slot, param in layer.weight_slots():
                record = layer._frozen_record(param, slot)
                if isinstance(record, QuantizedWeight):
                    warmed += 1
    return warmed


def freeze_deployment(model: Module) -> Module:
    """Put ``model`` in inference mode and program its quantized weights."""
    model.eval()
    warm_quantization(model)
    return model


def invalidate_quantization(model: Module) -> int:
    """Drop every quantized layer's cached codes; returns layers cleared."""
    cleared = 0
    for layer in quantized_layers(model):
        layer.invalidate_quant_cache()
        cleared += 1
    return cleared
