"""Quantized layer wrappers: the IMC-mapped compute layers.

These layers model the part of the network whose weights physically live in
NVM crossbar cells.  Each exposes two fault-injection hooks used by
:mod:`repro.faults`:

* ``weight_fault`` — applied to the quantized integer weight codes at
  forward time (bit flips, stuck-at faults, conductance variation on
  multi-bit weights);
* ``last_quantized`` — the most recent :class:`~repro.quant.functional.QuantizedWeight`
  record, letting campaigns and the IMC simulator inspect what would be
  programmed into the array.

Binary activation faults are injected through
:class:`SignActivation.pre_fault` (noise on normalized activations before
the sign, per Section IV-A-2 of the paper).

Deployment-frozen quantization cache
------------------------------------
Physically, weights are quantized **once** — when the chip is programmed —
not on every inference.  The layers model that: during gradient-free
forwards (campaign evaluation, Bayesian sampling) each layer caches

* its clean :class:`~repro.quant.functional.QuantizedWeight` record, keyed
  by the parameter's ``(uid, version)`` counter
  (:meth:`repro.nn.module.Parameter.mark_updated`), and
* the faulty dequantized weight produced by the attached fault hook, keyed
  additionally by the hook's unique ``fault_token`` and the active
  instance-axis layout,

so campaign forwards — every MC sample, every evaluation batch, every LSTM
timestep — reuse the programmed codes, and fault hooks perturb the cached
record instead of re-deriving it per pass.  Training invalidates
transparently: gradient-recording forwards always requantize (the STE
backward needs the live weight), and optimizer steps bump the version
counter so the next deployed forward reprograms.  Hooks without a
``fault_token`` (ad-hoc callables) are never value-cached and keep the
legacy applied-every-forward semantics.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops
from ..tensor import conv as F
from ..tensor.chipbatch import active_chip_count, active_sample_count
from ..tensor.grad_mode import is_grad_enabled
from ..nn import init
from ..nn.module import Module, Parameter
from .functional import (
    ActivationFault,
    QuantizedWeight,
    WeightFault,
    binarize_activation,
    binarize_weight,
    binarize_weight_record,
    fake_quantize_weight,
    fake_quantize_weight_record,
)

#: Token used for the fault-free ("clean chip") cache entry.
_CLEAN = "clean"

# Global switch for the deployment cache — disabled, every gradient-free
# forward requantizes like the pre-cache engine.  Used by identity tests
# and benchmarks to compare cached against recomputed codes.
_DEPLOY_CACHE_ENABLED = True


@contextlib.contextmanager
def deploy_cache_disabled():
    """Force requantization on every forward for the duration of the block."""
    global _DEPLOY_CACHE_ENABLED
    previous = _DEPLOY_CACHE_ENABLED
    _DEPLOY_CACHE_ENABLED = False
    try:
        yield
    finally:
        _DEPLOY_CACHE_ENABLED = previous


class QuantizedComputeLayer(Module):
    """Base class for layers whose weights are programmed into NVM cells."""

    def __init__(self, weight_bits: int):
        super().__init__()
        self.weight_bits = int(weight_bits)
        self.weight_fault: Optional[WeightFault] = None
        self.last_quantized: Optional[QuantizedWeight] = None
        # Deployment-frozen caches (see module docstring).  One entry per
        # weight slot: the programmed record, and the last faulty
        # dequantized weight for the currently attached hook.
        self._record_cache: Dict[str, Tuple[Tuple[int, int], QuantizedWeight]] = {}
        self._deploy_cache: Dict[str, Tuple[tuple, np.ndarray, QuantizedWeight]] = {}

    def invalidate_quant_cache(self) -> None:
        """Drop all deployment-frozen state (force requantization)."""
        self._record_cache.clear()
        self._deploy_cache.clear()

    def weight_slots(self) -> Tuple[Tuple[str, Parameter], ...]:
        """The (slot, parameter) pairs this layer quantizes at forward time.

        Subclasses with several independently-programmed weight tensors
        (e.g. :class:`QuantLSTMCell`) override this; deployment helpers
        (:func:`repro.quant.deploy.warm_quantization`) iterate it.
        """
        return (("weight", self.weight),)

    def _frozen_record(
        self, weight: Tensor, slot: str
    ) -> Optional[QuantizedWeight]:
        """Cached quantization record for ``weight``, or ``None`` if
        caching is unavailable (cache disabled, gradients recording, or an
        unversioned weight tensor)."""
        if not _DEPLOY_CACHE_ENABLED or is_grad_enabled():
            return None
        key = getattr(weight, "version_key", None)
        if key is None:
            return None
        hit = self._record_cache.get(slot)
        if hit is None or hit[0] != key:
            record = (
                binarize_weight_record(weight.data)
                if self.weight_bits == 1
                else fake_quantize_weight_record(weight.data, self.weight_bits)
            )
            self._record_cache[slot] = (key, record)
            return record
        return hit[1]

    def _quantize_slot(
        self,
        weight: Tensor,
        fault: Optional[WeightFault],
        slot: str,
        record_attr: str,
    ) -> Tensor:
        """Quantize (or binarize) one weight slot, applying fault hooks.

        A chip-batched fault hook (one frozen pattern per simulated chip,
        repeated along any MC-sample sub-axis) returns perturbed codes with
        a leading instance axis, so the result is a
        ``(n_instances, *weight.shape)`` stack of per-instance faulty
        weights; the forward methods below broadcast against it
        transparently.  Gradient-free forwards are served from the
        deployment cache when possible.
        """
        # record is non-None only when caching is available (cache enabled,
        # gradients off, versioned weight) — deploy_key inherits that gate.
        record = self._frozen_record(weight, slot)
        deploy_key = None
        if record is not None:
            token = _CLEAN if fault is None else getattr(fault, "fault_token", None)
            if token is not None:
                deploy_key = (
                    self._record_cache[slot][0],
                    token,
                    active_chip_count(),
                    active_sample_count(),
                )
                hit = self._deploy_cache.get(slot)
                if hit is not None and hit[0] == deploy_key:
                    setattr(self, record_attr, hit[2])
                    return Tensor(hit[1])
        if self.weight_bits == 1:
            q, record = binarize_weight(weight, fault=fault, record=record)
        else:
            q, record = fake_quantize_weight(
                weight, self.weight_bits, fault=fault, record=record
            )
        setattr(self, record_attr, record)
        if deploy_key is not None:
            self._deploy_cache[slot] = (deploy_key, q.data, record)
        return q

    def _quantize(self, weight: Tensor) -> Tensor:
        """Quantize the primary weight slot with ``weight_fault`` applied."""
        return self._quantize_slot(
            weight, self.weight_fault, "weight", "last_quantized"
        )


class QuantConv2d(QuantizedComputeLayer):
    """Conv2d whose weights are quantized (or binarized) at forward time.

    Training forwards requantize the live weight (STE gradients); deployed
    gradient-free forwards reuse the cached programmed codes until the
    weight's version counter changes.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int | tuple,
        stride: int | tuple = 1,
        padding: int | tuple = 0,
        bias: bool = False,
        weight_bits: int = 1,
    ):
        super().__init__(weight_bits)
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kh, kw)))
        init.kaiming_normal_(self.weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        wq = self._quantize(self.weight)
        return F.conv2d(x, wq, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, weight_bits={self.weight_bits}"
        )


class QuantConv1d(QuantizedComputeLayer):
    """Conv1d with quantized weights (M5 audio model, 8-bit).

    Shares the deployment-frozen quantization cache of
    :class:`QuantizedComputeLayer`.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        weight_bits: int = 8,
    ):
        super().__init__(weight_bits)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = int(kernel_size)
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(np.empty((out_channels, in_channels, kernel_size)))
        init.kaiming_normal_(self.weight)
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        wq = self._quantize(self.weight)
        return F.conv1d(x, wq, self.bias, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"weight_bits={self.weight_bits}"
        )


class QuantLinear(QuantizedComputeLayer):
    """Linear layer with quantized weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        weight_bits: int = 8,
    ):
        super().__init__(weight_bits)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features)))
        init.kaiming_uniform_(self.weight, gain=1.0)
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        wq = self._quantize(self.weight)
        # swapaxes (not .T) so chip-batched (n_chips, out, in) weights
        # contract correctly; identical to .T for the 2-D serial case.
        out = x @ wq.swapaxes(-1, -2)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"weight_bits={self.weight_bits}"
        )


class QuantLSTMCell(QuantizedComputeLayer):
    """LSTM cell whose input/hidden weight matrices are quantized.

    Used by the 8-bit LSTM forecaster; the two gate matrices are quantized
    independently (they occupy separate crossbar tiles).  The deployment
    cache matters most here: a sequence of ``T`` timesteps makes ``2T``
    quantization calls per forward, all served from the two cached slots
    once the chip is programmed.
    """

    def __init__(self, input_size: int, hidden_size: int, weight_bits: int = 8):
        super().__init__(weight_bits)
        import math

        from ..tensor.random import get_rng

        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        rng = get_rng()
        self.weight_ih = Parameter(
            rng.uniform(-bound, bound, size=(4 * hidden_size, input_size))
        )
        self.weight_hh = Parameter(
            rng.uniform(-bound, bound, size=(4 * hidden_size, hidden_size))
        )
        self.bias_ih = Parameter(np.zeros(4 * hidden_size))
        self.bias_hh = Parameter(np.zeros(4 * hidden_size))
        self.bias_ih.data[hidden_size : 2 * hidden_size] = 1.0
        # Independent fault hook for the recurrent matrix: the two gate
        # matrices occupy separate crossbar tiles, so fault campaigns attach
        # a dedicated (independently frozen) fault model to each.
        self.weight_fault_hh: Optional[WeightFault] = None
        self.last_quantized_hh: Optional[QuantizedWeight] = None

    def weight_slots(self) -> Tuple[Tuple[str, Parameter], ...]:
        return (("weight_ih", self.weight_ih), ("weight_hh", self.weight_hh))

    def forward(self, x: Tensor, state):
        h, c = state
        w_ih = self._quantize_slot(
            self.weight_ih, self.weight_fault, "weight_ih", "last_quantized"
        )
        w_hh = self._quantize_slot(
            self.weight_hh, self.weight_fault_hh, "weight_hh", "last_quantized_hh"
        )
        gates = (
            x @ w_ih.swapaxes(-1, -2)
            + self.bias_ih
            + h @ w_hh.swapaxes(-1, -2)
            + self.bias_hh
        )
        hs = self.hidden_size
        i = ops.sigmoid(gates[..., 0 * hs : 1 * hs])
        f = ops.sigmoid(gates[..., 1 * hs : 2 * hs])
        g = ops.tanh(gates[..., 2 * hs : 3 * hs])
        o = ops.sigmoid(gates[..., 3 * hs : 4 * hs])
        c_new = f * c + i * g
        h_new = o * ops.tanh(c_new)
        return h_new, c_new

    def extra_repr(self) -> str:
        return (
            f"input_size={self.input_size}, hidden_size={self.hidden_size}, "
            f"weight_bits={self.weight_bits}"
        )


class SignActivation(Module):
    """Binary (sign) activation with straight-through gradient.

    ``pre_fault`` injects additive/multiplicative conductance variation on
    the normalized pre-activation — the paper's injection site for binary
    networks.
    """

    def __init__(self) -> None:
        super().__init__()
        self.pre_fault: Optional[ActivationFault] = None

    def forward(self, x: Tensor) -> Tensor:
        # ``site=self`` lets forward plans re-fetch the *currently attached*
        # hook on every replay instead of freezing the traced one.
        return binarize_activation(x, pre_fault=self.pre_fault, site=self)


class PACT(Module):
    """PACT [19] activation: learnable clip + k-bit quantization."""

    def __init__(self, bits: int = 4, alpha_init: float = 6.0):
        super().__init__()
        self.bits = int(bits)
        self.alpha = Parameter(np.array([alpha_init]))

    def forward(self, x: Tensor) -> Tensor:
        from .functional import pact_quantize

        return pact_quantize(x, self.alpha, self.bits)

    def extra_repr(self) -> str:
        return f"bits={self.bits}"


class QuantReLU(Module):
    """ReLU followed by unsigned k-bit activation quantization.

    The activation path of the 8/8-bit models (M5, LSTM head): ReLU output
    is uniformly quantized on ``[0, max_val]`` with a straight-through
    gradient, modelling the ADC/requantization step after the crossbar.
    """

    def __init__(self, bits: int = 8, max_val: float = 4.0):
        super().__init__()
        self.bits = int(bits)
        self.max_val = float(max_val)

    def forward(self, x: Tensor) -> Tensor:
        from .functional import fake_quantize_activation

        return fake_quantize_activation(x, self.bits, max_val=self.max_val)

    def extra_repr(self) -> str:
        return f"bits={self.bits}, max_val={self.max_val}"
