"""Quantization: binarization (IR-Net style), k-bit fake-quant, PACT.

Models deploy at the paper's Table-I precisions — 1/1 (ResNet-18), 8/8 (M5,
LSTM) and 1/4 (U-Net) — through the layer wrappers here, which also expose
the NVM fault-injection hooks consumed by :mod:`repro.faults`.
"""

from .deploy import (
    freeze_deployment,
    invalidate_quantization,
    quantized_layers,
    warm_quantization,
)
from .functional import (
    ActivationFault,
    QuantizedWeight,
    WeightFault,
    binarize_activation,
    binarize_weight,
    binarize_weight_record,
    fake_quantize_activation,
    fake_quantize_weight,
    fake_quantize_weight_record,
    pact_quantize,
    sign_with_zero_to_one,
)
from .layers import (
    PACT,
    QuantReLU,
    QuantConv1d,
    QuantConv2d,
    QuantLinear,
    QuantLSTMCell,
    QuantizedComputeLayer,
    SignActivation,
)

__all__ = [
    "QuantizedWeight",
    "WeightFault",
    "ActivationFault",
    "binarize_weight",
    "binarize_weight_record",
    "binarize_activation",
    "fake_quantize_weight",
    "fake_quantize_weight_record",
    "fake_quantize_activation",
    "pact_quantize",
    "sign_with_zero_to_one",
    "freeze_deployment",
    "invalidate_quantization",
    "quantized_layers",
    "warm_quantization",
    "QuantizedComputeLayer",
    "QuantConv2d",
    "QuantConv1d",
    "QuantLinear",
    "QuantLSTMCell",
    "SignActivation",
    "PACT",
    "QuantReLU",
]
