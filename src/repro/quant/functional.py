"""Quantization primitives with straight-through-estimator gradients.

The paper deploys networks at three precisions (Table I): binarized weights
and activations for ResNet-18 (IR-Net-style [18]), 8-bit weights/activations
for M5 and the LSTM, and binary weights with PACT-quantized [19] 4-bit
activations for U-Net.  This module provides the functional building blocks;
the layer wrappers live in :mod:`repro.quant.layers`.

Every function exposes the integer *codes* actually stored in NVM cells via
the :class:`QuantizedWeight` record so fault models
(:mod:`repro.faults`) can flip the very bits a crossbar would hold.

A fault hook may be *chip-batched* (one frozen pattern per simulated chip,
see :class:`repro.faults.models.ChipBatchedWeightFault`): it then returns
perturbed codes with a leading chip axis, and the dequantized result is a
``(n_chips, *weight.shape)`` stack — scales broadcast against it
unchanged, and the layer forwards contract it with batched matmuls.  That
path is inference-only; campaigns never backpropagate through faulty
chips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from ..tensor import Tensor
from ..tensor import plan as _plan

#: Transform applied to quantized weight codes at forward time.  Receives a
#: :class:`QuantizedWeight` and returns the perturbed integer codes.
WeightFault = Callable[["QuantizedWeight"], np.ndarray]

#: Transform applied to a float activation array at forward time (additive /
#: multiplicative conductance-variation injection site for binary nets).
ActivationFault = Callable[[np.ndarray], np.ndarray]


@dataclass
class QuantizedWeight:
    """Snapshot of a layer's weight as stored in NVM cells.

    Attributes
    ----------
    codes:
        Integer codes; for ``bits == 1`` the codes are in ``{-1, +1}``, for
        ``bits >= 2`` they are signed integers in
        ``[-(2**(bits-1) - 1), 2**(bits-1) - 1]``.
    scale:
        Dequantization scale (broadcastable to ``codes``); the effective
        weight is ``codes * scale``.
    bits:
        Bit width per weight.
    """

    codes: np.ndarray
    scale: np.ndarray
    bits: int

    @property
    def qmax(self) -> int:
        return 1 if self.bits == 1 else 2 ** (self.bits - 1) - 1

    def dequantize(self) -> np.ndarray:
        return self.codes * self.scale


@_plan.fusable
@_plan.outable
def sign_with_zero_to_one(x: np.ndarray, out=None) -> np.ndarray:
    """``sign`` mapping 0 to +1, as binarized hardware does.

    Doubles as its own replay kernel: ``out=``-aware (so plans serve it
    from the pooled buffer set) and fusable (so the optimizer may merge
    it into adjacent elementwise chains) — ``np.sign`` into a preallocated
    buffer is bit-identical to the allocating call.
    """
    s = np.sign(x, out=out) if out is not None else np.sign(x)
    s[s == 0] = 1.0
    return s


def binarize_weight_record(data: np.ndarray) -> QuantizedWeight:
    """Pure-numpy IR-Net binarization snapshot: ``sign(w)`` codes + alpha.

    ``alpha = mean(|w|)`` over each output filter.  This is the
    deployment-frozen part of :func:`binarize_weight` — for weights that do
    not change between forwards (an inference campaign) the record can be
    computed once and cached (see
    :class:`repro.quant.layers.QuantizedComputeLayer`).
    """
    data = np.asarray(data)
    axes = tuple(range(1, data.ndim))
    alpha = (
        np.abs(data).mean(axis=axes, keepdims=True)
        if axes
        else np.abs(data).mean(keepdims=True)
    )
    return QuantizedWeight(codes=sign_with_zero_to_one(data), scale=alpha, bits=1)


def binarize_weight(
    weight: Tensor,
    fault: Optional[WeightFault] = None,
    record: Optional[QuantizedWeight] = None,
) -> Tuple[Tensor, QuantizedWeight]:
    """IR-Net-style weight binarization with per-output-channel scaling.

    ``w_b = sign(w) * alpha`` with ``alpha = mean(|w|)`` over each output
    filter.  The backward pass is a clipped straight-through estimator:
    gradients pass (scaled by ``alpha``) where ``|w| <= 1``.

    ``record`` may carry a precomputed (cached) snapshot of the *current*
    weight values; passing a stale record is undefined behaviour.
    """
    if record is None:
        record = binarize_weight_record(weight.data)
    alpha = record.scale
    codes = record.codes
    if fault is not None:
        codes = fault(record)
    data = codes * alpha
    mask = np.abs(weight.data) <= 1.0

    def backward(grad: np.ndarray) -> None:
        weight._accumulate(grad * mask * alpha)

    # Deployment-frozen: for a fixed plan key (parameter versions + fault
    # hook signatures) the faulty dequantized weight is constant, so plans
    # capture it by reference instead of replaying quantization.
    return (
        Tensor._make(
            data, [weight], backward, "binarize_w", kernel=_plan.CONSTANT
        ),
        record,
    )


def binarize_activation(
    x: Tensor, pre_fault: Optional[ActivationFault] = None, site=None
) -> Tensor:
    """Sign activation with hard-tanh straight-through gradient.

    ``pre_fault`` is the conductance-variation injection site the paper uses
    for binary NNs: noise is added to the *normalized activations before the
    Sign(.)* (Section IV-A-2).  The fault perturbs the forward decision but
    the gradient estimator still uses the clean input's clip mask.

    ``site`` names the module owning the hook (a
    :class:`~repro.quant.layers.SignActivation`): forward plans record the
    site rather than the hook object, so a replay invokes whatever hook is
    *currently* attached there — per-pass noise draws stay live.  A bare
    ``pre_fault`` callable without a site poisons any active trace.
    """
    values = x.data
    if pre_fault is not None:
        if site is not None:
            values = _plan.traced_hook(site, "pre_fault", x.data)
        else:
            trace = _plan.active_trace()
            if trace is not None:
                trace.fail("activation fault hook without a traced site")
            values = pre_fault(values)
    data = sign_with_zero_to_one(values)
    mask = np.abs(x.data) <= 1.0

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(
        data, [x], backward, "binarize_a",
        kernel=sign_with_zero_to_one, kernel_inputs=(values,),
    )


def fake_quantize_weight_record(data: np.ndarray, bits: int) -> QuantizedWeight:
    """Pure-numpy symmetric k-bit quantization snapshot (codes + scale).

    The deployment-frozen part of :func:`fake_quantize_weight`, cacheable
    for weights that stay fixed across inference forwards.
    """
    if bits < 2:
        raise ValueError("use binarize_weight for 1-bit weights")
    data = np.asarray(data)
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.abs(data).max()
    scale = np.asarray(max_abs / qmax if max_abs > 0 else 1.0)
    codes = np.clip(np.round(data / scale), -qmax, qmax)
    return QuantizedWeight(codes=codes, scale=scale, bits=bits)


def fake_quantize_weight(
    weight: Tensor,
    bits: int,
    fault: Optional[WeightFault] = None,
    record: Optional[QuantizedWeight] = None,
) -> Tuple[Tensor, QuantizedWeight]:
    """Symmetric per-tensor k-bit fake quantization with STE gradient.

    The scale maps ``max(|w|)`` to the largest code, matching how weights
    are programmed into multi-level NVM cells before deployment.

    ``record`` may carry a precomputed (cached) snapshot of the *current*
    weight values; passing a stale record is undefined behaviour.
    """
    if record is None:
        record = fake_quantize_weight_record(weight.data, bits)
    scale = record.scale
    codes = record.codes
    if fault is not None:
        codes = fault(record)
    data = codes * scale

    def backward(grad: np.ndarray) -> None:
        weight._accumulate(grad)  # STE: identity inside the clip range

    # Deployment-frozen, like binarize_weight: constant per plan key.
    return (
        Tensor._make(
            data, [weight], backward, "fake_quant_w", kernel=_plan.CONSTANT
        ),
        record,
    )


def fake_quantize_activation(x: Tensor, bits: int, max_val: float = 1.0) -> Tensor:
    """Unsigned k-bit activation quantization on ``[0, max_val]`` (STE)."""
    levels = 2**bits - 1

    def kernel(values: np.ndarray) -> np.ndarray:
        clipped = np.clip(values, 0.0, max_val)
        return np.round(clipped / max_val * levels) / levels * max_val

    data = kernel(x.data)
    mask = (x.data >= 0.0) & (x.data <= max_val)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(data, [x], backward, "fake_quant_a", kernel=kernel)


def pact_quantize(x: Tensor, alpha: Tensor, bits: int) -> Tensor:
    """PACT activation quantization [19] with a learnable clipping level.

    ``y = round(clip(x, 0, alpha) / alpha * L) / L * alpha`` with
    ``L = 2**bits - 1``.  Gradient w.r.t. ``x`` is the STE pass-through
    inside ``[0, alpha]``; gradient w.r.t. ``alpha`` is 1 where ``x`` is
    clipped high (the PACT paper's estimator).
    """
    levels = 2**bits - 1
    a = float(alpha.data.item())
    if a <= 0:
        raise ValueError(f"PACT alpha must be positive, got {a}")

    def kernel(values: np.ndarray, alpha_values: np.ndarray) -> np.ndarray:
        # ``a`` is baked from the traced alpha; alpha is a Parameter, so a
        # changed clip level bumps its version counter and re-traces.
        clipped = np.clip(values, 0.0, a)
        return np.round(clipped / a * levels) / levels * a

    data = kernel(x.data, alpha.data)
    inside = (x.data >= 0.0) & (x.data < a)
    above = x.data >= a

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * inside)
        alpha._accumulate(np.asarray((grad * above).sum()).reshape(alpha.shape))

    return Tensor._make(data, [x, alpha], backward, "pact", kernel=kernel)
