"""Out-of-distribution evaluation (Section IV-E, Fig. 7).

Protocol (identical to the paper, which follows [9]):

1. Shift the test inputs progressively — rotations in 7-degree increments
   over 12 stages, or escalating uniform noise.
2. At each stage, measure Monte Carlo accuracy and predictive NLL: accuracy
   should fall and NLL should rise as the shift grows, signalling that the
   model knows its predictions are becoming dubious.
3. Detect OOD inputs by thresholding the per-input NLL at the average NLL
   observed on the clean (in-distribution) test set; report the fraction of
   shifted inputs flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..core.bayesian import BayesianClassifier
from ..data.shifts import add_uniform_noise, rotate_images
from ..tensor import Tensor


@dataclass
class ShiftStageResult:
    """Metrics at one shift magnitude."""

    magnitude: float
    accuracy: float
    nll: float
    detection_rate: float


@dataclass
class OODEvaluation:
    """Full shift-sweep result."""

    kind: str  # "rotation" | "uniform"
    threshold: float
    stages: List[ShiftStageResult] = field(default_factory=list)

    @property
    def magnitudes(self) -> np.ndarray:
        return np.array([s.magnitude for s in self.stages])

    @property
    def accuracies(self) -> np.ndarray:
        return np.array([s.accuracy for s in self.stages])

    @property
    def nlls(self) -> np.ndarray:
        return np.array([s.nll for s in self.stages])

    def overall_detection_rate(self) -> float:
        """Mean detection rate over the genuinely shifted stages (>0)."""
        shifted = [s.detection_rate for s in self.stages if s.magnitude > 0]
        return float(np.mean(shifted)) if shifted else 0.0


def nll_threshold(
    classifier: BayesianClassifier, inputs: np.ndarray
) -> float:
    """The paper's OOD threshold: average per-input NLL on clean test data."""
    return float(classifier.per_input_nll(Tensor(inputs)).mean())


def evaluate_shift_sweep(
    classifier: BayesianClassifier,
    inputs: np.ndarray,
    labels: np.ndarray,
    kind: str,
    magnitudes: Sequence[float],
    threshold: Optional[float] = None,
    rng: Optional[np.random.Generator] = None,
) -> OODEvaluation:
    """Run the Fig. 7 protocol over a shift schedule.

    Parameters
    ----------
    classifier:
        MC wrapper around the trained model.
    inputs, labels:
        Clean test inputs (CHW batches for rotation) and integer labels.
    kind:
        ``"rotation"`` (magnitudes in degrees) or ``"uniform"`` (noise
        strengths).
    threshold:
        NLL detection threshold; defaults to the clean-set average.
    """
    if kind not in ("rotation", "uniform"):
        raise ValueError(f"kind must be 'rotation' or 'uniform', got {kind!r}")
    if threshold is None:
        threshold = nll_threshold(classifier, inputs)
    result = OODEvaluation(kind=kind, threshold=threshold)
    for magnitude in magnitudes:
        if kind == "rotation":
            shifted = rotate_images(inputs, magnitude)
        else:
            shifted = add_uniform_noise(inputs, magnitude, rng=rng)
        x = Tensor(shifted)
        proba = classifier.predict_proba(x)
        acc = float((proba.argmax(axis=-1) == labels).mean())
        picked = proba[np.arange(len(labels)), labels]
        nll = float(-np.log(picked + 1e-12).mean())
        per_input = -np.log(proba.max(axis=-1) + 1e-12)
        detection = float((per_input > threshold).mean())
        result.stages.append(
            ShiftStageResult(
                magnitude=float(magnitude),
                accuracy=acc,
                nll=nll,
                detection_rate=detection,
            )
        )
    return result
