"""Uncertainty estimation and OOD detection (Fig. 7 protocol)."""

from .ood import (
    OODEvaluation,
    ShiftStageResult,
    evaluate_shift_sweep,
    nll_threshold,
)

__all__ = [
    "OODEvaluation",
    "ShiftStageResult",
    "evaluate_shift_sweep",
    "nll_threshold",
]
