"""repro — Inverted Normalization with Stochastic Affine Transformations.

A from-scratch reproduction of "Enhancing Reliability of Neural Networks at
the Edge: Inverted Normalization with Stochastic Affine Transformations"
(Ahmed et al., DATE 2024), including every substrate the paper depends on:

* :mod:`repro.tensor` — numpy autograd engine,
* :mod:`repro.nn` — layers, norms, dropout variants, LSTM,
* :mod:`repro.quant` — binarization / k-bit / PACT quantization,
* :mod:`repro.core` — **the contribution**: :class:`~repro.core.InvertedNorm`
  (inverted normalization + affine dropout) and MC Bayesian inference,
* :mod:`repro.faults` — NVM non-ideality models + Monte Carlo campaigns,
* :mod:`repro.imc` — crossbar / STT-MRAM device simulation,
* :mod:`repro.data` — synthetic datasets for the four evaluated tasks,
* :mod:`repro.models` — ResNet-18, M5, LSTM forecaster, U-Net,
* :mod:`repro.baselines` — SpinDrop / SpatialSpinDrop / conventional-NN
  method configurations,
* :mod:`repro.train` — optimizers, losses, metrics, trainer,
* :mod:`repro.uncertainty` — OOD detection via predictive NLL,
* :mod:`repro.eval` — experiment harness regenerating every paper artifact.

Quickstart::

    from repro.core import InvertedNorm, BayesianClassifier
    from repro import nn

    model = nn.Sequential(
        nn.Linear(16, 64),
        InvertedNorm(64, p=0.3),   # affine-first, then normalization
        nn.ReLU(),
        nn.Linear(64, 10),
    )
    clf = BayesianClassifier(model, num_samples=10)
"""

__version__ = "1.0.0"

from . import core, data, eval, faults, imc, models, nn, quant, tensor, train
from . import baselines, uncertainty
from .core import BayesianClassifier, BayesianRegressor, InvertedNorm
from .tensor import Tensor, manual_seed

__all__ = [
    "__version__",
    "tensor",
    "nn",
    "quant",
    "core",
    "faults",
    "imc",
    "data",
    "models",
    "baselines",
    "train",
    "uncertainty",
    "eval",
    "Tensor",
    "manual_seed",
    "InvertedNorm",
    "BayesianClassifier",
    "BayesianRegressor",
]
