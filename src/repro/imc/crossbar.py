"""Analog crossbar simulation of the in-memory weighted sum (Section II-D).

Models the full IMC datapath the paper abstracts away:

1. quantized weight codes are programmed as *differential conductance
   pairs* ``(G+, G-)`` — positive part on the G+ column, negative on G-;
2. the input vector is converted to voltages by a DAC of configurable
   resolution;
3. the array computes the weighted sum in the analog domain,
   ``I = V @ (G+ - G-)``, in O(1) time, optionally with conductance
   variation and stuck cells from the device model;
4. an ADC digitizes the column currents.

Large matrices are tiled into ``tile_rows``-row sub-arrays whose partial
sums are accumulated digitally, as real macros do.  The tiling, the DAC,
and the per-tile ADC are fully vectorized: all full tiles are contracted
by one stacked GEMM and digitized in one shot (a short remainder tile is
handled separately so its narrower ADC full-scale is preserved), instead
of looping tile by tile in Python.  The ideal crossbar (infinite DAC/ADC
resolution, no variation) reproduces the integer matmul of
:mod:`repro.quant` exactly — a property the test suite checks — which
justifies running the paper's fault campaigns at the algorithmic level.

Chip batching: ``chip_batched=True`` programs a stack of per-chip weight
codes ``(n_chips, out, in)`` — e.g. the per-chip faulty codes a batched
fault campaign produces — into one array object whose :meth:`matvec`
returns ``(n_chips, n, cols)`` in a single broadcast pass over the same
tiled analog datapath.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from ..quant.functional import QuantizedWeight
from .devices import MTJParams


@dataclass
class CrossbarConfig:
    """Crossbar macro parameters.

    Attributes
    ----------
    g_on, g_off:
        Conductances (siemens) of the on/off cell states; multi-bit codes
        interpolate linearly between them.
    dac_bits, adc_bits:
        Data-converter resolutions; ``None`` disables quantization
        (ideal converter).
    tile_rows:
        Maximum rows per physical array; longer dot products are split
        across tiles and accumulated digitally.
    sigma_conductance:
        Relative programming variation applied per cell.
    stuck_rate, v_read:
        Fraction of stuck-at-off cells; read voltage for current scaling.
    """

    g_on: float = 2.5e-4  # 1 / R_P
    g_off: float = 1.0e-4  # 1 / R_AP
    dac_bits: Optional[int] = 8
    adc_bits: Optional[int] = 8
    tile_rows: int = 64
    sigma_conductance: float = 0.0
    stuck_rate: float = 0.0
    v_read: float = 0.2

    @classmethod
    def ideal(cls, **kwargs) -> "CrossbarConfig":
        """No converter quantization, no variation (unless overridden)."""
        kwargs.setdefault("dac_bits", None)
        kwargs.setdefault("adc_bits", None)
        return cls(**kwargs)

    @classmethod
    def from_mtj(cls, params: MTJParams, **kwargs) -> "CrossbarConfig":
        """Derive conductances from an MTJ device model."""
        return cls(g_on=1.0 / params.r_p, g_off=1.0 / params.r_ap, **kwargs)


def _uniform_quantize(values: np.ndarray, bits: int, max_abs: float) -> np.ndarray:
    """Symmetric mid-rise quantization to ``bits`` over ``[-max_abs, max_abs]``."""
    if max_abs == 0.0:
        return values
    levels = 2 ** (bits - 1) - 1
    scaled = np.clip(values / max_abs, -1.0, 1.0)
    return np.round(scaled * levels) / levels * max_abs


class CrossbarArray:
    """One programmed crossbar holding a ``(rows, cols)`` weight matrix.

    Parameters
    ----------
    qw:
        Quantized weight record (codes + scale) to program; codes map to
        differential conductance pairs.  With ``chip_batched=True`` the
        codes carry a leading chip axis ``(n_chips, out, in)`` — one
        faulty weight stack per simulated chip — and the whole stack is
        programmed as a broadcastable conductance tensor.
    config:
        Macro parameters.
    rng:
        Source for programming variation / stuck cells (chip instance).
        For a chip batch this may be a *sequence* of per-chip generators,
        in which case each chip's variation/stuck draws come from its own
        stream — bit-identical to programming the chips one at a time.
    chip_batched:
        Interpret a 3-D code tensor as a chip stack instead of rejecting
        it.
    """

    def __init__(
        self,
        qw: QuantizedWeight,
        config: Optional[CrossbarConfig] = None,
        rng: Union[np.random.Generator, Sequence[np.random.Generator], None] = None,
        chip_batched: bool = False,
    ):
        expected_ndim = 3 if chip_batched else 2
        if qw.codes.ndim != expected_ndim:
            kind = "chip-batched 3-D" if chip_batched else "2-D"
            raise ValueError(f"crossbar expects a {kind} weight, got {qw.codes.shape}")
        self.config = config or CrossbarConfig()
        self.qw = qw
        self.chip_batched = chip_batched
        self.n_chips = qw.codes.shape[0] if chip_batched else 1
        self.rows, self.cols = qw.codes.shape[-1], qw.codes.shape[-2]  # in x out
        if rng is None:
            rng = np.random.default_rng(0)
        self._program(rng)

    def _program(
        self, rng: Union[np.random.Generator, Sequence[np.random.Generator]]
    ) -> None:
        """Map codes to differential conductances, with non-idealities."""
        cfg = self.config
        codes = np.swapaxes(self.qw.codes, -1, -2)  # (..., rows=in, cols=out)
        qmax = self.qw.qmax
        pos = np.clip(codes, 0, None) / qmax
        neg = np.clip(-codes, 0, None) / qmax
        g_pos = cfg.g_off + pos * (cfg.g_on - cfg.g_off)
        g_neg = cfg.g_off + neg * (cfg.g_on - cfg.g_off)

        def draw(method: str, shape, *args) -> np.ndarray:
            if isinstance(rng, np.random.Generator):
                return getattr(rng, method)(*args, shape)
            # Per-chip generator stack: chip i's slice comes from rng[i],
            # exactly as if each chip were programmed on its own.
            return np.stack(
                [getattr(g, method)(*args, shape[1:]) for g in rng], axis=0
            )

        if cfg.sigma_conductance > 0.0:
            g_pos = g_pos * (
                1.0 + draw("normal", g_pos.shape, 0.0, cfg.sigma_conductance)
            )
            g_neg = g_neg * (
                1.0 + draw("normal", g_neg.shape, 0.0, cfg.sigma_conductance)
            )
        if cfg.stuck_rate > 0.0:
            g_pos = np.where(
                draw("random", g_pos.shape) < cfg.stuck_rate, cfg.g_off, g_pos
            )
            g_neg = np.where(
                draw("random", g_neg.shape) < cfg.stuck_rate, cfg.g_off, g_neg
            )
        self.g_pos = g_pos
        self.g_neg = g_neg

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Analog weighted sum for a batch of input vectors ``(n, rows)``.

        Returns the digitized result in *weight units* (dequantized), i.e.
        directly comparable to ``x @ (codes * scale).T`` — shaped
        ``(n, cols)``, or ``(n_chips, n, cols)`` for a chip-batched array.

        The tiled datapath is vectorized: all full ``tile_rows``-row tiles
        are contracted by one stacked GEMM and ADC-digitized together,
        then accumulated in tile order (matching the digital accumulator);
        a shorter remainder tile keeps its own narrower ADC full-scale.
        """
        cfg = self.config
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.rows:
            raise ValueError(f"expected {self.rows} inputs, got {x.shape[1]}")
        n = x.shape[0]
        x_max = np.abs(x).max()
        v = x
        if cfg.dac_bits is not None:
            v = _uniform_quantize(x, cfg.dac_bits, x_max)
        v = v * cfg.v_read  # volts
        delta_g = self.g_pos - self.g_neg  # (..., rows, cols)

        def digitize(current: np.ndarray, tile_len: int) -> np.ndarray:
            if cfg.adc_bits is None:
                return current
            # Per-tile full-scale: worst-case single-tile current.
            full_scale = cfg.v_read * x_max * (cfg.g_on - cfg.g_off) * tile_len
            return _uniform_quantize(current, cfg.adc_bits, full_scale)

        currents = np.zeros(delta_g.shape[:-2] + (n, self.cols))
        n_full = self.rows // cfg.tile_rows
        rows_full = n_full * cfg.tile_rows
        if n_full:
            v_tiles = v[:, :rows_full].reshape(n, n_full, cfg.tile_rows)
            v_tiles = v_tiles.transpose(1, 0, 2)  # (tiles, n, tile_rows)
            dg = delta_g[..., :rows_full, :]
            dg_tiles = dg.reshape(
                dg.shape[:-2] + (n_full, cfg.tile_rows, self.cols)
            )  # (..., tiles, tile_rows, cols)
            tile_currents = digitize(v_tiles @ dg_tiles, cfg.tile_rows)
            for tile in range(n_full):  # digital accumulation, in tile order
                currents += tile_currents[..., tile, :, :]
        if rows_full < self.rows:
            tail = v[:, rows_full:] @ delta_g[..., rows_full:, :]
            currents += digitize(tail, self.rows - rows_full)
        # Convert current back to weight units.
        lsb = (self.config.g_on - self.config.g_off) / self.qw.qmax
        scale = np.asarray(self.qw.scale).reshape(-1)
        out_scale = float(scale[0]) if scale.size == 1 else scale  # per-column
        return currents / (cfg.v_read * lsb) * out_scale

    def ideal_result(self, x: np.ndarray) -> np.ndarray:
        """Digital reference: ``x @ (codes * scale).T`` (per chip if batched)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return x @ np.swapaxes(self.qw.dequantize(), -1, -2)

    @property
    def n_tiles(self) -> int:
        return (self.rows + self.config.tile_rows - 1) // self.config.tile_rows

    def energy_estimate(self, x: np.ndarray) -> float:
        """Static-power-free dynamic energy proxy: sum of |I|·V over cells."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64)) * self.config.v_read
        total = np.abs(x) @ (self.g_pos + self.g_neg)
        return float(total.sum() * self.config.v_read)
