"""Analog crossbar simulation of the in-memory weighted sum (Section II-D).

Models the full IMC datapath the paper abstracts away:

1. quantized weight codes are programmed as *differential conductance
   pairs* ``(G+, G-)`` — positive part on the G+ column, negative on G-;
2. the input vector is converted to voltages by a DAC of configurable
   resolution;
3. the array computes the weighted sum in the analog domain,
   ``I = V @ (G+ - G-)``, in O(1) time, optionally with conductance
   variation and stuck cells from the device model;
4. an ADC digitizes the column currents.

Large matrices are tiled into ``tile_rows``-row sub-arrays whose partial
sums are accumulated digitally, as real macros do.  The ideal crossbar
(infinite DAC/ADC resolution, no variation) reproduces the integer
matmul of :mod:`repro.quant` exactly — a property the test suite checks —
which justifies running the paper's fault campaigns at the algorithmic
level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..quant.functional import QuantizedWeight
from .devices import MTJParams


@dataclass
class CrossbarConfig:
    """Crossbar macro parameters.

    Attributes
    ----------
    g_on, g_off:
        Conductances (siemens) of the on/off cell states; multi-bit codes
        interpolate linearly between them.
    dac_bits, adc_bits:
        Data-converter resolutions; ``None`` disables quantization
        (ideal converter).
    tile_rows:
        Maximum rows per physical array; longer dot products are split
        across tiles and accumulated digitally.
    sigma_conductance:
        Relative programming variation applied per cell.
    stuck_rate, v_read:
        Fraction of stuck-at-off cells; read voltage for current scaling.
    """

    g_on: float = 2.5e-4  # 1 / R_P
    g_off: float = 1.0e-4  # 1 / R_AP
    dac_bits: Optional[int] = 8
    adc_bits: Optional[int] = 8
    tile_rows: int = 64
    sigma_conductance: float = 0.0
    stuck_rate: float = 0.0
    v_read: float = 0.2

    @classmethod
    def ideal(cls, **kwargs) -> "CrossbarConfig":
        """No converter quantization, no variation (unless overridden)."""
        kwargs.setdefault("dac_bits", None)
        kwargs.setdefault("adc_bits", None)
        return cls(**kwargs)

    @classmethod
    def from_mtj(cls, params: MTJParams, **kwargs) -> "CrossbarConfig":
        """Derive conductances from an MTJ device model."""
        return cls(g_on=1.0 / params.r_p, g_off=1.0 / params.r_ap, **kwargs)


def _uniform_quantize(values: np.ndarray, bits: int, max_abs: float) -> np.ndarray:
    """Symmetric mid-rise quantization to ``bits`` over ``[-max_abs, max_abs]``."""
    if max_abs == 0.0:
        return values
    levels = 2 ** (bits - 1) - 1
    scaled = np.clip(values / max_abs, -1.0, 1.0)
    return np.round(scaled * levels) / levels * max_abs


class CrossbarArray:
    """One programmed crossbar holding a ``(rows, cols)`` weight matrix.

    Parameters
    ----------
    qw:
        Quantized weight record (codes + scale) to program; codes map to
        differential conductance pairs.
    config:
        Macro parameters.
    rng:
        Source for programming variation / stuck cells (chip instance).
    """

    def __init__(
        self,
        qw: QuantizedWeight,
        config: Optional[CrossbarConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if qw.codes.ndim != 2:
            raise ValueError(f"crossbar expects a 2-D weight, got {qw.codes.shape}")
        self.config = config or CrossbarConfig()
        self.qw = qw
        self.rows, self.cols = qw.codes.T.shape  # inputs x outputs
        rng = rng or np.random.default_rng(0)
        self._program(rng)

    def _program(self, rng: np.random.Generator) -> None:
        """Map codes to differential conductances, with non-idealities."""
        cfg = self.config
        codes = self.qw.codes.T  # (rows=in, cols=out)
        qmax = self.qw.qmax
        pos = np.clip(codes, 0, None) / qmax
        neg = np.clip(-codes, 0, None) / qmax
        g_pos = cfg.g_off + pos * (cfg.g_on - cfg.g_off)
        g_neg = cfg.g_off + neg * (cfg.g_on - cfg.g_off)
        if cfg.sigma_conductance > 0.0:
            g_pos = g_pos * (1.0 + rng.normal(0.0, cfg.sigma_conductance, g_pos.shape))
            g_neg = g_neg * (1.0 + rng.normal(0.0, cfg.sigma_conductance, g_neg.shape))
        if cfg.stuck_rate > 0.0:
            g_pos = np.where(
                rng.random(g_pos.shape) < cfg.stuck_rate, cfg.g_off, g_pos
            )
            g_neg = np.where(
                rng.random(g_neg.shape) < cfg.stuck_rate, cfg.g_off, g_neg
            )
        self.g_pos = g_pos
        self.g_neg = g_neg

    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray) -> np.ndarray:
        """Analog weighted sum for a batch of input vectors ``(n, rows)``.

        Returns the digitized result in *weight units* (dequantized), i.e.
        directly comparable to ``x @ (codes * scale).T``.
        """
        cfg = self.config
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if x.shape[1] != self.rows:
            raise ValueError(f"expected {self.rows} inputs, got {x.shape[1]}")
        x_max = np.abs(x).max()
        v = x
        if cfg.dac_bits is not None:
            v = _uniform_quantize(x, cfg.dac_bits, x_max)
        v = v * cfg.v_read  # volts
        delta_g = self.g_pos - self.g_neg
        currents = np.zeros((x.shape[0], self.cols))
        for start in range(0, self.rows, cfg.tile_rows):
            stop = min(start + cfg.tile_rows, self.rows)
            tile_current = v[:, start:stop] @ delta_g[start:stop]
            if cfg.adc_bits is not None:
                # Per-tile full-scale: worst-case single-tile current.
                full_scale = (
                    cfg.v_read * x_max * (cfg.g_on - cfg.g_off) * (stop - start)
                )
                tile_current = _uniform_quantize(
                    tile_current, cfg.adc_bits, full_scale
                )
            currents += tile_current
        # Convert current back to weight units.
        lsb = (self.config.g_on - self.config.g_off) / self.qw.qmax
        scale = np.asarray(self.qw.scale).reshape(-1)
        out_scale = float(scale[0]) if scale.size == 1 else scale  # per-column
        return currents / (cfg.v_read * lsb) * out_scale

    def ideal_result(self, x: np.ndarray) -> np.ndarray:
        """Digital reference: ``x @ (codes * scale).T``."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return x @ self.qw.dequantize().T

    @property
    def n_tiles(self) -> int:
        return (self.rows + self.config.tile_rows - 1) // self.config.tile_rows

    def energy_estimate(self, x: np.ndarray) -> float:
        """Static-power-free dynamic energy proxy: sum of |I|·V over cells."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64)) * self.config.v_read
        total = np.abs(x) @ (self.g_pos + self.g_neg)
        return float(total.sum() * self.config.v_read)
