"""In-memory-computing substrate: crossbar arrays and STT-MRAM devices."""

from .crossbar import CrossbarArray, CrossbarConfig
from .devices import (
    MTJParams,
    bit_error_rate,
    read_margin,
    sample_resistances,
    switching_curve,
    switching_probability,
    tmr_at_temperature,
)
from .mapping import CrossbarLinear, deploy_linear_layers

__all__ = [
    "CrossbarArray",
    "CrossbarConfig",
    "CrossbarLinear",
    "deploy_linear_layers",
    "MTJParams",
    "switching_probability",
    "switching_curve",
    "sample_resistances",
    "tmr_at_temperature",
    "read_margin",
    "bit_error_rate",
]
