"""Deploy quantized layers onto simulated crossbars (inference only)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.module import Module
from ..quant.functional import fake_quantize_weight, binarize_weight
from ..quant.layers import QuantLinear
from ..tensor import Tensor
from .crossbar import CrossbarArray, CrossbarConfig


class CrossbarLinear(Module):
    """Inference-time replacement of a :class:`QuantLinear` by a crossbar.

    Programs the layer's quantized weights into a simulated
    :class:`CrossbarArray` once at construction (one chip instance) and
    routes forward passes through the analog datapath.  Gradients do not
    flow (deployment model).
    """

    def __init__(
        self,
        layer: QuantLinear,
        config: Optional[CrossbarConfig] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = layer.in_features
        self.out_features = layer.out_features
        if layer.weight_bits == 1:
            _, qw = binarize_weight(layer.weight)
            qw.scale = np.asarray(qw.scale).reshape(-1)
        else:
            _, qw = fake_quantize_weight(layer.weight, layer.weight_bits)
        self.array = CrossbarArray(qw, config=config, rng=rng)
        self._bias = None if layer.bias is None else layer.bias.data.copy()

    def forward(self, x: Tensor) -> Tensor:
        out = self.array.matvec(x.data)
        if self._bias is not None:
            out = out + self._bias
        return Tensor(out)

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"tiles={self.array.n_tiles}"
        )


def deploy_linear_layers(
    model: Module,
    config: Optional[CrossbarConfig] = None,
    rng: Optional[np.random.Generator] = None,
) -> int:
    """Swap every ``QuantLinear`` submodule for a :class:`CrossbarLinear`.

    Returns the number of layers deployed.  Mutates ``model`` in place —
    intended for inference-only deployment studies (see
    ``examples/imc_deployment.py``).
    """
    rng = rng or np.random.default_rng(0)
    count = 0
    for module in model.modules():
        for name, child in list(module._modules.items()):
            if isinstance(child, QuantLinear):
                module._modules[name] = CrossbarLinear(child, config=config, rng=rng)
                count += 1
    return count
