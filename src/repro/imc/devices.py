"""STT-MRAM device models (Fig. 4 of the paper).

The paper's Fig. 4 shows two device-level phenomena that motivate the
algorithmic noise models used in the fault campaigns:

* **(a) stochastic switching** — the probability that a write pulse
  switches the magnetic tunnel junction (MTJ) depends on pulse voltage and
  duration.  In the thermal-activation regime the mean switching time obeys
  the Néel-Arrhenius law ``tau(V) = tau0 * exp(Delta * (1 - V / Vc0))`` and
  the switching probability of a pulse of width ``t`` is
  ``P_sw = 1 - exp(-t / tau(V))`` [5].
* **(b) thermal resistance variation** — the parallel/antiparallel
  resistances ``R_P`` / ``R_AP`` are lot-to-lot Gaussian-distributed and
  the tunnel magnetoresistance ratio (TMR) degrades roughly linearly with
  temperature, shrinking the read margin.  Monte Carlo sampling of these
  distributions reproduces Fig. 4b.

Parameters default to representative published STT-MRAM values (Delta ≈ 60,
tau0 = 1 ns, TMR ≈ 100-200 %, R_P ≈ a few kΩ).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np


@dataclass
class MTJParams:
    """Magnetic-tunnel-junction parameters.

    Attributes
    ----------
    r_p:
        Parallel (low) resistance at the reference temperature, ohms.
    tmr:
        Tunnel magnetoresistance ratio at the reference temperature
        (``r_ap = r_p * (1 + tmr)``).
    sigma_r:
        Relative lot-to-lot standard deviation of both resistances.
    delta:
        Thermal stability factor (energy barrier over ``k_B T``).
    tau0_ns:
        Attempt time in nanoseconds.
    vc0:
        Critical switching voltage (V).
    temp_ref:
        Reference temperature (K).
    tmr_temp_slope:
        Fractional TMR loss per kelvin above ``temp_ref``.
    rp_temp_slope:
        Fractional R_P drift per kelvin above ``temp_ref``.
    """

    r_p: float = 4000.0
    tmr: float = 1.5
    sigma_r: float = 0.05
    delta: float = 60.0
    tau0_ns: float = 1.0
    vc0: float = 0.45
    temp_ref: float = 300.0
    tmr_temp_slope: float = 0.002
    rp_temp_slope: float = 0.0004

    @property
    def r_ap(self) -> float:
        return self.r_p * (1.0 + self.tmr)


def switching_probability(
    voltage: np.ndarray | float,
    pulse_ns: np.ndarray | float,
    params: Optional[MTJParams] = None,
) -> np.ndarray:
    """P(switch) for a write pulse — the Fig. 4a family of curves.

    Thermal-activation model: below the critical voltage the mean switching
    time grows exponentially; the pulse switches with probability
    ``1 - exp(-t / tau(V))``.  Voltages at or above ``vc0`` switch in the
    precessional regime, modelled as ``tau -> tau0``.
    """
    p = params or MTJParams()
    voltage = np.asarray(voltage, dtype=np.float64)
    pulse_ns = np.asarray(pulse_ns, dtype=np.float64)
    exponent = p.delta * (1.0 - voltage / p.vc0)
    exponent = np.clip(exponent, 0.0, 700.0)  # overflow guard
    tau = p.tau0_ns * np.exp(exponent)
    return 1.0 - np.exp(-pulse_ns / tau)


def switching_curve(
    voltages: Sequence[float],
    pulse_grid_ns: np.ndarray,
    params: Optional[MTJParams] = None,
) -> dict[float, np.ndarray]:
    """Switching probability vs pulse width for several voltages (Fig 4a)."""
    return {
        float(v): switching_probability(v, pulse_grid_ns, params) for v in voltages
    }


def tmr_at_temperature(temperature: float, params: Optional[MTJParams] = None) -> float:
    """TMR ratio at ``temperature`` (linear degradation model)."""
    p = params or MTJParams()
    scale = max(0.0, 1.0 - p.tmr_temp_slope * (temperature - p.temp_ref))
    return p.tmr * scale


def sample_resistances(
    temperature: float,
    n_devices: int,
    rng: np.random.Generator,
    params: Optional[MTJParams] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Monte Carlo R_P / R_AP samples at ``temperature`` (Fig. 4b).

    Returns ``(r_p_samples, r_ap_samples)`` in ohms.
    """
    p = params or MTJParams()
    r_p_mean = p.r_p * (1.0 + p.rp_temp_slope * (temperature - p.temp_ref))
    tmr = tmr_at_temperature(temperature, p)
    r_ap_mean = r_p_mean * (1.0 + tmr)
    r_p = rng.normal(r_p_mean, p.sigma_r * r_p_mean, n_devices)
    r_ap = rng.normal(r_ap_mean, p.sigma_r * r_ap_mean, n_devices)
    return r_p, r_ap


def read_margin(temperature: float, params: Optional[MTJParams] = None) -> float:
    """Separation of the two states in sigmas (distinguishability)."""
    p = params or MTJParams()
    rng = np.random.default_rng(0)
    r_p, r_ap = sample_resistances(temperature, 20000, rng, p)
    return float((r_ap.mean() - r_p.mean()) / np.sqrt(r_p.var() + r_ap.var()))


def bit_error_rate(
    temperature: float,
    params: Optional[MTJParams] = None,
    n_devices: int = 20000,
    seed: int = 0,
) -> float:
    """Probability that a midpoint-threshold read misclassifies the state.

    Grounds the bit-flip fault model of :mod:`repro.faults` in the device
    physics: as temperature compresses the resistance distributions, the
    overlap — and hence the read bit-error rate — grows.
    """
    p = params or MTJParams()
    rng = np.random.default_rng(seed)
    r_p, r_ap = sample_resistances(temperature, n_devices, rng, p)
    threshold = 0.5 * (r_p.mean() + r_ap.mean())
    errors = (r_p > threshold).sum() + (r_ap <= threshold).sum()
    return float(errors / (2 * n_devices))
