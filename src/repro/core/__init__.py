"""The paper's primary contribution.

:class:`InvertedNorm` — the inverted normalization layer with stochastic
affine transformations (affine dropout) — plus the Monte Carlo Bayesian
inference wrappers that turn a network of such layers into a BayNN.
"""

from .bayesian import (
    BayesianClassifier,
    BayesianRegressor,
    enable_stochastic_inference,
    mc_forward,
    stochastic_inference,
)
from .inverted_norm import (
    AffineDropoutSampler,
    ConventionalNormAdapter,
    InvertedNorm,
)

__all__ = [
    "InvertedNorm",
    "AffineDropoutSampler",
    "ConventionalNormAdapter",
    "BayesianClassifier",
    "BayesianRegressor",
    "enable_stochastic_inference",
    "stochastic_inference",
    "mc_forward",
]
