"""Monte Carlo Bayesian inference over stochastic models (Section III-D).

Following Gal & Ghahramani [17], a network trained with dropout-style
stochasticity approximates a Gaussian process; sampling fresh masks on each
of several forward passes yields an output distribution whose mean is the
prediction and whose spread quantifies uncertainty.  The paper's affine
dropout plugs into this machinery exactly like conventional dropout: every
:class:`~repro.nn.dropout.StochasticModule` (which includes
:class:`~repro.core.inverted_norm.InvertedNorm`) re-samples per pass when
``stochastic_inference`` is enabled.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

from ..nn.dropout import StochasticModule
from ..nn.module import Module
from ..tensor import Tensor, no_grad, ops


def enable_stochastic_inference(model: Module, enabled: bool = True) -> Module:
    """Switch Monte Carlo sampling on/off for every stochastic submodule."""
    for module in model.modules():
        if isinstance(module, StochasticModule):
            module.stochastic_inference = enabled
    return model


@contextlib.contextmanager
def stochastic_inference(model: Module) -> Iterator[Module]:
    """Context manager enabling MC sampling for the duration of the block."""
    enable_stochastic_inference(model, True)
    try:
        yield model
    finally:
        enable_stochastic_inference(model, False)


def mc_forward(
    model: Module, x: Tensor, num_samples: int, forward=None
) -> np.ndarray:
    """Stack ``num_samples`` stochastic forward passes → ``(s, *out)``.

    The model is put in ``eval()`` mode (deterministic normalization
    statistics, where applicable) with ``stochastic_inference`` enabled, so
    only the Bayesian noise sources re-sample between passes.
    """
    model.eval()
    forward = forward or (lambda inp: model(inp))
    outputs = []
    with no_grad(), stochastic_inference(model):
        for _ in range(num_samples):
            out = forward(x)
            outputs.append(out.data if isinstance(out, Tensor) else np.asarray(out))
    return np.stack(outputs, axis=0)


def _softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class BayesianClassifier:
    """Monte Carlo classification wrapper.

    Averages per-sample softmax distributions (the paper averages the
    stochastic outputs) and derives uncertainty metrics:

    * predictive NLL — the paper's uncertainty score for OOD detection,
    * predictive entropy and mutual information (BALD) for completeness.

    Parameters
    ----------
    model:
        Any module mapping inputs to class logits.
    num_samples:
        Monte Carlo forward passes per prediction.
    """

    def __init__(self, model: Module, num_samples: int = 8):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.model = model
        self.num_samples = num_samples

    def sample_proba(self, x: Tensor) -> np.ndarray:
        """Per-sample class probabilities, shape ``(s, n, classes)``."""
        logits = mc_forward(self.model, x, self.num_samples)
        return _softmax_np(logits, axis=-1)

    def predict_proba(self, x: Tensor) -> np.ndarray:
        """MC-averaged class probabilities, shape ``(n, classes)``."""
        return self.sample_proba(x).mean(axis=0)

    def predict(self, x: Tensor) -> np.ndarray:
        """Hard labels from the averaged predictive distribution."""
        return self.predict_proba(x).argmax(axis=-1)

    def nll(self, x: Tensor, labels: np.ndarray, eps: float = 1e-12) -> float:
        """Mean negative log-likelihood of ``labels`` under the MC average."""
        proba = self.predict_proba(x)
        labels = np.asarray(labels, dtype=np.int64)
        picked = proba[np.arange(len(labels)), labels]
        return float(-np.log(picked + eps).mean())

    def per_input_nll(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        """NLL of the *predicted* class per input — the OOD score.

        For unlabeled (potentially OOD) inputs the paper thresholds the NLL
        of the model's own prediction: confident ID inputs score low,
        shifted inputs score high.
        """
        proba = self.predict_proba(x)
        return -np.log(proba.max(axis=-1) + eps)

    def predictive_entropy(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        proba = self.predict_proba(x)
        return -(proba * np.log(proba + eps)).sum(axis=-1)

    def mutual_information(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        """BALD score: entropy of mean minus mean of entropies."""
        samples = self.sample_proba(x)
        mean = samples.mean(axis=0)
        h_mean = -(mean * np.log(mean + eps)).sum(axis=-1)
        h_samples = -(samples * np.log(samples + eps)).sum(axis=-1).mean(axis=0)
        return h_mean - h_samples

    def accuracy(self, x: Tensor, labels: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(labels)).mean())


class BayesianRegressor:
    """Monte Carlo regression wrapper (LSTM forecasting task).

    The prediction is the MC mean; predictive variance decomposes into the
    epistemic part (variance of MC means) reported here.
    """

    def __init__(self, model: Module, num_samples: int = 8, forward=None):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.model = model
        self.num_samples = num_samples
        self._forward = forward

    def sample_outputs(self, x: Tensor) -> np.ndarray:
        return mc_forward(self.model, x, self.num_samples, forward=self._forward)

    def predict(self, x: Tensor) -> np.ndarray:
        return self.sample_outputs(x).mean(axis=0)

    def predict_with_std(self, x: Tensor) -> tuple[np.ndarray, np.ndarray]:
        samples = self.sample_outputs(x)
        return samples.mean(axis=0), samples.std(axis=0)

    def rmse(self, x: Tensor, targets: np.ndarray) -> float:
        pred = self.predict(x)
        targets = np.asarray(targets)
        return float(np.sqrt(((pred - targets) ** 2).mean()))
