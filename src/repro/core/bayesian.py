"""Monte Carlo Bayesian inference over stochastic models (Section III-D).

Following Gal & Ghahramani [17], a network trained with dropout-style
stochasticity approximates a Gaussian process; sampling fresh masks on each
of several forward passes yields an output distribution whose mean is the
prediction and whose spread quantifies uncertainty.  The paper's affine
dropout plugs into this machinery exactly like conventional dropout: every
:class:`~repro.nn.dropout.StochasticModule` (which includes
:class:`~repro.core.inverted_norm.InvertedNorm`) re-samples per pass when
``stochastic_inference`` is enabled.

Sample streams and batching
---------------------------
Each of the ``num_samples`` passes draws its stochasticity from its own
``SeedSequence`` child of the active generator (one ``Generator.spawn``
per :func:`mc_forward` call), so sample ``s`` is a pure function of
``(parent stream, s)`` rather than of how many draws earlier samples made.
That indexing is what allows the *MC-batched* path — enabled via
:func:`repro.tensor.chipbatch.mc_batching`, the campaign engine's
``--mc-batched`` switch — to stack all samples (times any active chip
batch) along one leading instance axis and run a single vectorized
forward whose per-sample slices are bit-identical to the looped passes.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

from ..nn.dropout import StochasticModule
from ..nn.module import Module
from ..tensor import Tensor, no_grad, ops
from ..tensor.chipbatch import (
    ChipBatchRng,
    active_chip_count,
    mc_batching_active,
    mc_sample_axis,
    mc_sample_scope,
    spawn_sample_streams,
)
from ..tensor.random import get_rng, scoped_rng


def enable_stochastic_inference(model: Module, enabled: bool = True) -> Module:
    """Switch Monte Carlo sampling on/off for every stochastic submodule."""
    for module in model.modules():
        if isinstance(module, StochasticModule):
            module.stochastic_inference = enabled
    return model


@contextlib.contextmanager
def stochastic_inference(model: Module) -> Iterator[Module]:
    """Context manager enabling MC sampling for the duration of the block."""
    enable_stochastic_inference(model, True)
    try:
        yield model
    finally:
        enable_stochastic_inference(model, False)


def mc_forward(
    model: Module, x: Tensor, num_samples: int, forward=None
) -> np.ndarray:
    """Stack ``num_samples`` stochastic forward passes → ``(s, *out)``.

    The model is put in ``eval()`` mode (deterministic normalization
    statistics, where applicable) with ``stochastic_inference`` enabled, so
    only the Bayesian noise sources re-sample between passes.

    Pass ``s`` draws from the ``s``-th ``SeedSequence`` child of the active
    generator (see :func:`~repro.tensor.chipbatch.spawn_sample_streams`).
    Under :func:`~repro.tensor.chipbatch.mc_batching` the loop is replaced
    by ONE forward over a leading instance axis of ``chips * num_samples``
    stacked instances, reduced back to the looped layout — the returned
    array is bit-identical either way.
    """
    if num_samples < 1:
        raise ValueError(f"num_samples must be >= 1, got {num_samples}")
    model.eval()
    forward = forward or (lambda inp: model(inp))
    with no_grad(), stochastic_inference(model):
        if mc_batching_active() and num_samples > 1:
            return _mc_forward_batched(forward, x, num_samples)
        per_sample, _ = spawn_sample_streams(get_rng(), num_samples)
        outputs = []
        for s, stream in enumerate(per_sample):
            with scoped_rng(stream), mc_sample_scope(s, num_samples):
                out = forward(x)
                outputs.append(
                    out.data if isinstance(out, Tensor) else np.asarray(out)
                )
    return np.stack(outputs, axis=0)


def _mc_forward_batched(forward, x: Tensor, num_samples: int) -> np.ndarray:
    """One stacked forward over the ``chips x samples`` instance axis.

    The input — already chip-stacked if a chip batch is active — is
    repeated per MC sample in chip-major order, each instance draws from
    its own per-sample ``SeedSequence`` child, and the stacked output is
    reshaped back to the looped layout ``(samples, [chips,] *out)``.
    """
    n_chips = active_chip_count()  # instance count BEFORE the sample axis
    _, per_instance = spawn_sample_streams(get_rng(), num_samples)
    data = x.data if isinstance(x, Tensor) else np.asarray(x)
    if n_chips is None:
        stacked_in = np.broadcast_to(data[None], (num_samples,) + data.shape).copy()
    else:
        stacked_in = np.repeat(data, num_samples, axis=0)
    with mc_sample_axis(num_samples), scoped_rng(ChipBatchRng(per_instance)):
        out = forward(Tensor(stacked_in))
    arr = out.data if isinstance(out, Tensor) else np.asarray(out)
    if n_chips is None:
        return arr
    # (chips * samples, ...) chip-major → (samples, chips, ...)
    return np.moveaxis(
        arr.reshape(n_chips, num_samples, *arr.shape[1:]), 1, 0
    )


def _softmax_np(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class BayesianClassifier:
    """Monte Carlo classification wrapper.

    Averages per-sample softmax distributions (the paper averages the
    stochastic outputs) and derives uncertainty metrics:

    * predictive NLL — the paper's uncertainty score for OOD detection,
    * predictive entropy and mutual information (BALD) for completeness.

    Under an active chip batch every result gains a leading chip axis, and
    under :func:`~repro.tensor.chipbatch.mc_batching` the Monte Carlo loop
    inside :func:`mc_forward` collapses into one stacked forward with
    bit-identical results.

    Parameters
    ----------
    model:
        Any module mapping inputs to class logits.
    num_samples:
        Monte Carlo forward passes per prediction.
    """

    def __init__(self, model: Module, num_samples: int = 8):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.model = model
        self.num_samples = num_samples

    def sample_proba(self, x: Tensor) -> np.ndarray:
        """Per-sample class probabilities, shape ``(s, n, classes)``."""
        logits = mc_forward(self.model, x, self.num_samples)
        return _softmax_np(logits, axis=-1)

    def predict_proba(self, x: Tensor) -> np.ndarray:
        """MC-averaged class probabilities, shape ``(n, classes)``."""
        return self.sample_proba(x).mean(axis=0)

    def predict(self, x: Tensor) -> np.ndarray:
        """Hard labels from the averaged predictive distribution."""
        return self.predict_proba(x).argmax(axis=-1)

    def nll(self, x: Tensor, labels: np.ndarray, eps: float = 1e-12) -> float:
        """Mean negative log-likelihood of ``labels`` under the MC average."""
        proba = self.predict_proba(x)
        labels = np.asarray(labels, dtype=np.int64)
        picked = proba[np.arange(len(labels)), labels]
        return float(-np.log(picked + eps).mean())

    def per_input_nll(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        """NLL of the *predicted* class per input — the OOD score.

        For unlabeled (potentially OOD) inputs the paper thresholds the NLL
        of the model's own prediction: confident ID inputs score low,
        shifted inputs score high.
        """
        proba = self.predict_proba(x)
        return -np.log(proba.max(axis=-1) + eps)

    def predictive_entropy(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        proba = self.predict_proba(x)
        return -(proba * np.log(proba + eps)).sum(axis=-1)

    def mutual_information(self, x: Tensor, eps: float = 1e-12) -> np.ndarray:
        """BALD score: entropy of mean minus mean of entropies."""
        samples = self.sample_proba(x)
        mean = samples.mean(axis=0)
        h_mean = -(mean * np.log(mean + eps)).sum(axis=-1)
        h_samples = -(samples * np.log(samples + eps)).sum(axis=-1).mean(axis=0)
        return h_mean - h_samples

    def accuracy(self, x: Tensor, labels: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(labels)).mean())


class BayesianRegressor:
    """Monte Carlo regression wrapper (LSTM forecasting task).

    The prediction is the MC mean; predictive variance decomposes into the
    epistemic part (variance of MC means) reported here.  Like the
    classifier, it rides :func:`mc_forward` and therefore inherits the
    MC-batched single-pass path under
    :func:`~repro.tensor.chipbatch.mc_batching`.
    """

    def __init__(self, model: Module, num_samples: int = 8, forward=None):
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.model = model
        self.num_samples = num_samples
        self._forward = forward

    def sample_outputs(self, x: Tensor) -> np.ndarray:
        return mc_forward(self.model, x, self.num_samples, forward=self._forward)

    def predict(self, x: Tensor) -> np.ndarray:
        return self.sample_outputs(x).mean(axis=0)

    def predict_with_std(self, x: Tensor) -> tuple[np.ndarray, np.ndarray]:
        samples = self.sample_outputs(x)
        return samples.mean(axis=0), samples.std(axis=0)

    def rmse(self, x: Tensor, targets: np.ndarray) -> float:
        pred = self.predict(x)
        targets = np.asarray(targets)
        return float(np.sqrt(((pred - targets) ** 2).mean()))
