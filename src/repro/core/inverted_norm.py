"""Inverted normalization with stochastic affine transformations.

This is the paper's primary contribution (Section III).  Differences from a
conventional normalization layer:

1. **Inverted order** — the learnable affine transformation
   ``x * gamma + beta`` runs *before* normalization, not after (Fig. 2).
   ``gamma``/``beta`` are treated as ordinary weights/biases whose only
   objective is loss minimization.
2. **Affine Dropout** (Fig. 3) — on every sampled forward pass the weights
   are dropped **to one** and the biases **to zero**, independently, with
   probability ``p``.  Concretely with Bernoulli keep-masks ``m``:
   ``gamma_eff = gamma * m_g + (1 - m_g)`` and ``beta_eff = beta * m_b``.
   Vector-wise dropout (one mask per parameter vector, the hardware-friendly
   default used in the paper) and element-wise dropout (per channel) are both
   supported.
3. **Random initialization** (Section III-C) — ``gamma ~ N(1, sigma_gamma)``
   and ``beta ~ N(0, sigma_beta)`` (or uniform variants), instead of the
   conventional ones/zeros.
4. **Instance-level statistics** — normalization is computed per input
   instance over all features (LayerNorm-like, the paper's choice for
   ResNet-18 / M5 / LSTM) or per channel group (GroupNorm-like with groups
   of ``C_out / 8`` channels, the paper's choice for U-Net), with identical
   train- and test-time behaviour (no running statistics).

The stochastic affine transformation injects multiplicative and additive
randomness into each layer's weighted sum during training, which mirrors the
noise NVM non-idealities add at inference time and therefore hardens the
network against them; re-sampling the masks at inference time realizes
Monte Carlo Bayesian inference (Section III-D).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..nn.dropout import StochasticModule
from ..nn.module import Parameter
from ..nn.normalization import normalize
from ..tensor import Tensor
from ..tensor.chipbatch import chip_axes
from ..tensor.random import get_rng


class AffineDropoutSampler:
    """Samples the Bernoulli keep-masks for affine dropout (Fig. 3).

    Parameters
    ----------
    p:
        Drop probability for the weight and the bias (independently).
    granularity:
        ``"vector"`` — one Bernoulli draw per parameter vector per forward
        pass (the paper's efficient choice: a single RNG per layer in the
        IMC implementation); ``"element"`` — independent draw per channel.
    """

    def __init__(self, p: float = 0.3, granularity: str = "vector"):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        if granularity not in ("vector", "element"):
            raise ValueError(
                f"granularity must be 'vector' or 'element', got {granularity!r}"
            )
        self.p = p
        self.granularity = granularity

    def sample(
        self, num_features: int, rng: Optional[np.random.Generator] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return independent keep-masks ``(m_gamma, m_beta)``.

        Shape ``(num_features,)`` normally.  When the active generator is a
        chip batch (:class:`~repro.tensor.chipbatch.ChipBatchRng`), one mask
        pair is drawn *per chip* from that chip's own stream — exactly the
        draws the serial engine would make — and stacked to
        ``(n_chips, num_features)``.
        """
        rng = rng or get_rng()
        per_chip = getattr(rng, "generators", None)
        if per_chip is not None:
            pairs = [self.sample(num_features, g) for g in per_chip]
            return (
                np.stack([m_g for m_g, _ in pairs], axis=0),
                np.stack([m_b for _, m_b in pairs], axis=0),
            )
        if self.granularity == "vector":
            m_g = np.full(num_features, float(rng.random() >= self.p))
            m_b = np.full(num_features, float(rng.random() >= self.p))
        else:
            m_g = (rng.random(num_features) >= self.p).astype(np.float64)
            m_b = (rng.random(num_features) >= self.p).astype(np.float64)
        return m_g, m_b


class InvertedNorm(StochasticModule):
    """Inverted normalization layer with stochastic affine transformations.

    Drop-in replacement for a conventional normalization layer following a
    convolutional (or linear / recurrent) layer.

    Parameters
    ----------
    num_features:
        Number of channels (dimension 1 of the input).
    p:
        Affine-dropout probability (paper uses 0.3 for all models).
    mode:
        ``"instance"`` — normalize each instance over all non-batch dims
        (LayerNorm-like; ResNet-18, M5, LSTM in the paper);
        ``"group"`` — normalize channel groups per instance (GroupNorm-like;
        U-Net in the paper, with ``num_groups = 8`` so each group spans
        ``C_out / 8`` channels).
    num_groups:
        Number of channel groups for ``mode="group"``.
    init:
        ``"normal"`` — ``gamma ~ N(1, sigma_gamma)``, ``beta ~ N(0,
        sigma_beta)``; ``"uniform"`` — ``gamma ~ U(0, k_gamma)``,
        ``beta ~ U(-k_beta, k_beta)`` (Section III-C).
    granularity:
        Affine-dropout granularity, ``"vector"`` (default) or ``"element"``.
    eps:
        Numerical-stability constant of the normalization.

    Notes
    -----
    When neither training nor ``stochastic_inference`` is active the layer
    uses the *expected* affine parameters ``E[gamma_eff] = (1-p) gamma + p``
    and ``E[beta_eff] = (1-p) beta`` — a deterministic single-pass
    approximation of the Bayesian average (analogous to standard dropout
    rescaling).  All paper experiments run with Monte Carlo sampling via
    :func:`repro.core.bayesian.enable_stochastic_inference`.
    """

    def __init__(
        self,
        num_features: int,
        p: float = 0.3,
        mode: str = "instance",
        num_groups: int = 8,
        init: str = "normal",
        sigma_gamma: float = 0.3,
        sigma_beta: float = 0.3,
        k_gamma: float = 1.0,
        k_beta: float = 0.5,
        granularity: str = "vector",
        eps: float = 1e-5,
    ):
        super().__init__()
        if mode not in ("instance", "group"):
            raise ValueError(f"mode must be 'instance' or 'group', got {mode!r}")
        if mode == "group" and num_features % num_groups != 0:
            raise ValueError(
                f"num_features={num_features} not divisible by "
                f"num_groups={num_groups}"
            )
        self.num_features = num_features
        self.mode = mode
        self.num_groups = num_groups
        self.eps = eps
        self.dropout = AffineDropoutSampler(p=p, granularity=granularity)
        rng = get_rng()
        if init == "normal":
            weight = rng.normal(1.0, sigma_gamma, size=num_features)
            bias = rng.normal(0.0, sigma_beta, size=num_features)
        elif init == "uniform":
            weight = rng.uniform(0.0, k_gamma, size=num_features)
            bias = rng.uniform(-k_beta, k_beta, size=num_features)
        else:
            raise ValueError(f"init must be 'normal' or 'uniform', got {init!r}")
        self.weight = Parameter(weight)
        self.bias = Parameter(bias)

    @property
    def p(self) -> float:
        return self.dropout.p

    def _sample_affine_masks(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``(m_gamma, 1 - m_gamma, m_beta)`` in one sampling thunk.

        The complement is computed inside the thunk so forward plans can
        record the whole draw as one source step whose outputs feed the
        affine kernels directly (see :mod:`repro.tensor.plan`).
        """
        m_g, m_b = self.dropout.sample(self.num_features)
        return m_g, 1.0 - m_g, m_b

    def _effective_affine(self) -> Tuple[Tensor, Tensor]:
        """Apply affine dropout (Fig. 3) or its expectation."""
        if self.sampling:
            m_g, one_minus_g, m_b = self._scoped_mask(
                self._sample_affine_masks, self.num_features
            )
            gamma = self.weight * Tensor(m_g) + Tensor(one_minus_g)
            beta = self.bias * Tensor(m_b)
        else:
            keep = 1.0 - self.dropout.p
            gamma = self.weight * keep + self.dropout.p
            beta = self.bias * keep
        return gamma, beta

    def _param_shape(self, param_ndim: int, x_ndim: int) -> Tuple[int, ...]:
        """Broadcast shape placing features on the channel axis of ``x``.

        Under a chip batch the channel axis is 2 and per-chip sampled
        masks (``param_ndim == 2``) keep their leading chip axis.
        """
        c_axis = chip_axes(1)
        lead = (1,) * c_axis if param_ndim == 1 else (-1,) + (1,) * (c_axis - 1)
        return lead + (self.num_features,) + (1,) * (x_ndim - c_axis - 1)

    def forward(self, x: Tensor) -> Tensor:
        c_axis = chip_axes(1)
        if x.shape[c_axis] != self.num_features:
            raise ValueError(
                f"expected {self.num_features} channels, got {x.shape[c_axis]} "
                f"(input shape {x.shape})"
            )
        gamma, beta = self._effective_affine()
        # Inverted order: affine transformation FIRST (Fig. 2b) ...
        z = x * gamma.reshape(self._param_shape(gamma.ndim, x.ndim)) + beta.reshape(
            self._param_shape(beta.ndim, x.ndim)
        )
        # ... then normalization (per instance or per channel group), never
        # mixing statistics across chips of a batch.
        if self.mode == "instance":
            return normalize(z, tuple(range(c_axis, z.ndim)), self.eps)
        lead, c = z.shape[:c_axis], z.shape[c_axis]
        spatial = z.shape[c_axis + 1 :]
        grouped = z.reshape(*lead, self.num_groups, c // self.num_groups, *spatial)
        axes = tuple(range(c_axis + 1, grouped.ndim))
        return normalize(grouped, axes, self.eps).reshape(*lead, c, *spatial)

    def extra_repr(self) -> str:
        return (
            f"{self.num_features}, p={self.dropout.p}, mode={self.mode!r}, "
            f"granularity={self.dropout.granularity!r}"
        )


class ConventionalNormAdapter(StochasticModule):
    """Ablation helper: conventional order (normalize, then affine dropout).

    Used by the component-ablation benchmark to isolate the contribution of
    the *inverted* order from the contribution of the stochastic affine
    parameters: this layer keeps affine dropout and random initialization
    but applies the affine transformation after normalization, like a
    conventional layer.
    """

    def __init__(self, num_features: int, p: float = 0.3, mode: str = "instance",
                 num_groups: int = 8, sigma_gamma: float = 0.3,
                 sigma_beta: float = 0.3, eps: float = 1e-5,
                 granularity: str = "vector"):
        super().__init__()
        self._inner = InvertedNorm(
            num_features,
            p=p,
            mode=mode,
            num_groups=num_groups,
            sigma_gamma=sigma_gamma,
            sigma_beta=sigma_beta,
            eps=eps,
            granularity=granularity,
        )

    @property
    def weight(self):
        return self._inner.weight

    @property
    def bias(self):
        return self._inner.bias

    def forward(self, x: Tensor) -> Tensor:
        inner = self._inner
        inner.stochastic_inference = self.stochastic_inference
        object.__setattr__(inner, "training", self.training)
        c_axis = chip_axes(1)
        # Normalize first (conventional order) ...
        if inner.mode == "instance":
            x_hat = normalize(x, tuple(range(c_axis, x.ndim)), inner.eps)
        else:
            lead, c = x.shape[:c_axis], x.shape[c_axis]
            spatial = x.shape[c_axis + 1 :]
            grouped = x.reshape(
                *lead, inner.num_groups, c // inner.num_groups, *spatial
            )
            axes = tuple(range(c_axis + 1, grouped.ndim))
            x_hat = normalize(grouped, axes, inner.eps).reshape(*lead, c, *spatial)
        # ... then the stochastic affine transformation.
        gamma, beta = inner._effective_affine()
        return x_hat * gamma.reshape(
            inner._param_shape(gamma.ndim, x.ndim)
        ) + beta.reshape(inner._param_shape(beta.ndim, x.ndim))

    def extra_repr(self) -> str:
        return self._inner.extra_repr()
