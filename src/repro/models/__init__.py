"""The paper's four evaluated topologies and the method configurations.

Each model factory takes a :class:`~repro.models.methods.MethodConfig`
selecting between the conventional NN, the SpinDrop baselines, and the
proposed inverted normalization — identical backbones otherwise.
"""

from .lstm import LSTMForecaster
from .m5 import M5
from .methods import (
    METHOD_NAMES,
    MethodConfig,
    all_methods,
    conventional,
    proposed,
    spatial_spindrop,
    spindrop,
)
from .resnet import BasicBlock, ResNet18
from .unet import UNet

__all__ = [
    "MethodConfig",
    "METHOD_NAMES",
    "conventional",
    "spindrop",
    "spatial_spindrop",
    "proposed",
    "all_methods",
    "ResNet18",
    "BasicBlock",
    "M5",
    "LSTMForecaster",
    "UNet",
]
