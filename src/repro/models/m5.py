"""M5: five-layer 1-D CNN for audio classification (8/8-bit, Table I).

Follows the published M5 layout — a wide-kernel strided front-end
convolution followed by three 3-tap convolution/pool stages, global average
pooling and a linear classifier — with 8-bit weights (:class:`QuantConv1d`)
and 8-bit activations (:class:`QuantReLU`), the precision the paper deploys
for Google Speech Commands.  Channel widths are configurable (paper: 128/
128/256/512; scaled defaults for the synthetic audio task).
"""

from __future__ import annotations

from ..nn import GlobalAvgPool1d, MaxPool1d, Module, Sequential
from ..quant import QuantConv1d, QuantLinear, QuantReLU
from ..tensor import Tensor
from .methods import MethodConfig


class _ConvUnit(Module):
    """conv → norm(method) → dropout(method) → quantized ReLU."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int,
        method: MethodConfig,
        bits: int,
    ):
        super().__init__()
        self.conv = QuantConv1d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=kernel_size // 2,
            weight_bits=bits,
        )
        self.norm = method.make_norm(out_channels, dims="1d", mode="instance")
        self.drop = method.make_dropout(dims="1d")
        self.act = QuantReLU(bits=bits)

    def forward(self, x: Tensor) -> Tensor:
        return self.act(self.drop(self.norm(self.conv(x))))


class M5(Module):
    """8/8-bit M5 audio classifier.

    Parameters
    ----------
    method:
        Normalization / stochasticity configuration.
    num_classes:
        Output classes.
    base_width:
        First-stage channels (paper: 128; scaled default 16).
    front_kernel, front_stride:
        Front-end convolution geometry (paper: 80/4 on 16 kHz audio; scaled
        defaults 19/4 for length-256 synthetic waveforms).
    bits:
        Weight/activation bit width (Table I: 8).
    """

    def __init__(
        self,
        method: MethodConfig,
        num_classes: int = 10,
        in_channels: int = 1,
        base_width: int = 16,
        front_kernel: int = 19,
        front_stride: int = 4,
        bits: int = 8,
    ):
        super().__init__()
        self.method = method
        w = base_width
        self.features = Sequential(
            _ConvUnit(in_channels, w, front_kernel, front_stride, method, bits),
            MaxPool1d(4),
            _ConvUnit(w, w, 3, 1, method, bits),
            MaxPool1d(4),
            _ConvUnit(w, 2 * w, 3, 1, method, bits),
            _ConvUnit(2 * w, 2 * w, 3, 1, method, bits),
        )
        self.pool = GlobalAvgPool1d()
        self.classifier = QuantLinear(2 * w, num_classes, weight_bits=bits)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.pool(self.features(x)))

    def extra_repr(self) -> str:
        return f"method={self.method.name!r}"
