"""LSTM autoregressive forecaster (8/8-bit, Table I / Fig. 6b).

Two quantized LSTM layers followed by a quantized linear head, matching the
paper's "NN with two LSTM layers and a classifier layer" for the atmospheric
CO2 forecast.  The method's normalization (inverted norm for the proposed
method) is applied to the hidden features between recurrent layers and
before the head; SpinDrop-style baselines insert dropout at the same sites,
the standard placement for recurrent dropout.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..nn import Module, ModuleList
from ..nn.dropout import resample_masks, set_mask_scope
from ..quant import QuantLinear, QuantLSTMCell
from ..tensor import Tensor, stack_tensors
from .methods import MethodConfig


class LSTMForecaster(Module):
    """Quantized two-layer LSTM regression model.

    Parameters
    ----------
    method:
        Normalization / stochasticity configuration.
    input_size:
        Features per time step (1 for the scalar CO2 series).
    hidden_size:
        LSTM hidden width (paper-scale unspecified; default 24).
    num_layers:
        Recurrent depth (paper: 2).
    bits:
        Weight bit width (Table I: 8).
    """

    def __init__(
        self,
        method: MethodConfig,
        input_size: int = 1,
        hidden_size: int = 24,
        num_layers: int = 2,
        bits: int = 8,
    ):
        super().__init__()
        self.method = method
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells: List[QuantLSTMCell] = []
        norms: List[Module] = []
        drops: List[Module] = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(QuantLSTMCell(in_size, hidden_size, weight_bits=bits))
            norms.append(method.make_norm(hidden_size, dims="1d", mode="instance"))
            drops.append(method.make_dropout(dims="1d"))
        self.cells = ModuleList(cells)
        self.norms = ModuleList(norms)
        self.drops = ModuleList(drops)
        self.head = QuantLinear(hidden_size, 1, weight_bits=bits)
        # Variational-RNN mask discipline: one stochastic mask per sequence,
        # shared across timesteps, resampled at the start of each forward.
        set_mask_scope(self, "frozen")

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(n, t, input_size)`` windows to scalar forecasts ``(n,)``.

        Chip-batched ``(chips, n, t, input_size)`` inputs map to
        ``(chips, n)`` forecasts: indexing is time-step-from-the-right, and
        the zero initial states broadcast against chip-stacked gates.
        """
        resample_masks(self)
        n, t = x.shape[-3], x.shape[-2]
        states: List[Tuple[Tensor, Tensor]] = [
            (
                Tensor(np.zeros((n, self.hidden_size))),
                Tensor(np.zeros((n, self.hidden_size))),
            )
            for _ in range(self.num_layers)
        ]
        last_hidden = None
        for step in range(t):
            inp = x[..., step, :]
            for layer in range(self.num_layers):
                h, c = self.cells[layer](inp, states[layer])
                states[layer] = (h, c)
                # Normalize the hidden features feeding the next layer /
                # the head (the method's stochastic site for this model).
                inp = self.drops[layer](self.norms[layer](h))
            last_hidden = inp
        # Residual head: predict the increment over the last observation.
        # The per-instance normalization discards absolute level, so the
        # head models the (stationary) step change and the level is
        # restored from the input window — standard for trend series.
        delta = self.head(last_hidden)
        delta = delta.reshape(*delta.shape[:-1])
        return delta + x[..., t - 1, 0]

    def forecast(self, window: Tensor, steps: int) -> np.ndarray:
        """Iterated multi-step forecast from a seed window (autoregressive).

        Feeds each prediction back as the newest observation.  Returns the
        ``steps`` predicted values (normalized scale).
        """
        history = window.data.copy()  # (n, t, 1)
        predictions = []
        for _ in range(steps):
            pred = self.forward(Tensor(history)).data  # (n,)
            predictions.append(pred)
            history = np.concatenate(
                [history[:, 1:, :], pred.reshape(-1, 1, 1)], axis=1
            )
        return np.stack(predictions, axis=1)  # (n, steps)

    def extra_repr(self) -> str:
        return f"method={self.method.name!r}"
