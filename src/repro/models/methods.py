"""Method configurations: which normalization/stochasticity each network uses.

The paper's Table I compares four methods on every topology:

* **conventional** — the plain (non-Bayesian) NN with conventional
  normalization and no inference-time stochasticity;
* **SpinDrop** [8] — Bernoulli-dropout-based Bayesian NN (dropout after
  each normalization);
* **SpatialSpinDrop** [7] — spatial (channel-wise) dropout variant;
* **proposed** — the inverted normalization layer with stochastic affine
  transformations replacing every normalization layer (dropout-free).

A :class:`MethodConfig` is consumed by every model factory in
:mod:`repro.models`; it builds the appropriate normalization layer and
block-level dropout for the chosen method, so all methods share the same
backbone, training loop, and fault-injection surface.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..core.inverted_norm import ConventionalNormAdapter, InvertedNorm
from ..nn import (
    BatchNorm1d,
    BatchNorm2d,
    Dropout,
    GroupNorm,
    Identity,
    LayerNorm,
    Module,
    SpatialDropout1d,
    SpatialDropout2d,
)

METHOD_NAMES = (
    "conventional",
    "spindrop",
    "spatial-spindrop",
    "proposed",
    "proposed-conventional-order",
)


@dataclass(frozen=True)
class MethodConfig:
    """Declarative method description.

    Parameters
    ----------
    name:
        One of :data:`METHOD_NAMES`.
    p:
        Dropout probability (conventional dropout or affine dropout;
        paper default 0.3).
    sigma_gamma, sigma_beta:
        Initialization spread of the inverted-norm affine parameters
        (Section III-C / IV-F; paper default 0.3).
    granularity:
        Affine-dropout granularity for the proposed method.
    init:
        ``"normal"`` or ``"uniform"`` affine initialization.
    conventional_norm:
        Normalization family for non-proposed methods: ``"batch"`` (CNN
        default), ``"layer"``, ``"group"``, or ``"none"``.
    """

    name: str = "proposed"
    p: float = 0.3
    sigma_gamma: float = 0.3
    sigma_beta: float = 0.3
    granularity: str = "vector"
    init: str = "normal"
    conventional_norm: str = "batch"
    #: Training-budget scale: dropout-based baselines converge slower, so
    #: each method trains to (its own) convergence for fair comparison.
    epochs_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.name not in METHOD_NAMES:
            raise ValueError(
                f"unknown method {self.name!r}; expected one of {METHOD_NAMES}"
            )

    # ------------------------------------------------------------------
    @property
    def uses_inverted_norm(self) -> bool:
        return self.name in ("proposed", "proposed-conventional-order")

    @property
    def is_bayesian(self) -> bool:
        """Methods evaluated with Monte Carlo sampling at inference."""
        return self.name != "conventional"

    def with_(self, **kwargs) -> "MethodConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    def make_norm(
        self,
        num_features: int,
        dims: str = "2d",
        mode: str = "instance",
        num_groups: int = 8,
    ) -> Module:
        """Normalization layer after a conv/linear/recurrent computation.

        ``mode``/``num_groups`` select the statistics of the *proposed*
        layer (instance for ResNet/M5/LSTM, group for U-Net, matching
        Section IV-A-1); non-proposed methods use ``conventional_norm``.
        """
        if self.uses_inverted_norm:
            cls = (
                InvertedNorm
                if self.name == "proposed"
                else ConventionalNormAdapter
            )
            kwargs = dict(
                p=self.p,
                mode=mode,
                num_groups=num_groups,
                sigma_gamma=self.sigma_gamma,
                sigma_beta=self.sigma_beta,
                granularity=self.granularity,
            )
            if cls is InvertedNorm:
                kwargs["init"] = self.init
            return cls(num_features, **kwargs)
        if self.conventional_norm == "batch":
            return BatchNorm2d(num_features) if dims == "2d" else BatchNorm1d(num_features)
        if self.conventional_norm == "layer":
            return LayerNorm(num_features)
        if self.conventional_norm == "group":
            return GroupNorm(num_groups, num_features)
        if self.conventional_norm == "none":
            return Identity()
        raise ValueError(f"unknown conventional norm {self.conventional_norm!r}")

    def make_dropout(self, dims: str = "2d") -> Module:
        """Block-level dropout for the SpinDrop-family baselines."""
        if self.name == "spindrop":
            return Dropout(self.p)
        if self.name == "spatial-spindrop":
            return SpatialDropout2d(self.p) if dims == "2d" else SpatialDropout1d(self.p)
        return Identity()


def conventional(**kwargs) -> MethodConfig:
    """The plain NN baseline (Table I column 'NN')."""
    return MethodConfig(name="conventional", **kwargs)


def spindrop(**kwargs) -> MethodConfig:
    """SpinDrop [8]: Bernoulli-dropout Bayesian NN."""
    kwargs.setdefault("epochs_multiplier", 2.0)
    return MethodConfig(name="spindrop", **kwargs)


def spatial_spindrop(**kwargs) -> MethodConfig:
    """SpatialSpinDrop [7]: spatial-dropout Bayesian NN."""
    kwargs.setdefault("epochs_multiplier", 2.0)
    return MethodConfig(name="spatial-spindrop", **kwargs)


def proposed(**kwargs) -> MethodConfig:
    """The paper's method: inverted normalization + affine dropout."""
    return MethodConfig(name="proposed", **kwargs)


def all_methods(**kwargs) -> list[MethodConfig]:
    """The four Table-I methods in the paper's column order."""
    return [
        conventional(**kwargs),
        spindrop(**kwargs),
        spatial_spindrop(**kwargs),
        proposed(**kwargs),
    ]
