"""U-Net for retinal vessel segmentation (1-bit W / 4-bit A, Table I).

Encoder/decoder with skip connections.  Block convolutions are binarized
(:class:`QuantConv2d` with ``weight_bits=1``) and activations are quantized
to 4 bits with PACT [19], matching the paper's DRIVE deployment.  The
normalization after every convolution comes from the method configuration;
for the proposed method the paper normalizes "across groups of C_out/8
channels ... the same train-time and test-time behavior as Group
Normalization", i.e. group mode with 8 groups.

Up-sampling uses nearest-neighbour resize + binary 3x3 convolution (the
standard artifact-free alternative to transposed convolution); the final
1x1 projection to logits is full precision, as is the stem.
"""

from __future__ import annotations

from ..nn import Conv2d, MaxPool2d, Module, UpsampleNearest2d
from ..quant import PACT, QuantConv2d
from ..tensor import Tensor, concatenate
from .methods import MethodConfig


class _UNetConvBlock(Module):
    """Two (binconv → norm → PACT) units."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        method: MethodConfig,
        act_bits: int,
        num_groups: int = 8,
    ):
        super().__init__()
        self.conv1 = QuantConv2d(in_channels, out_channels, 3, padding=1, weight_bits=1)
        self.norm1 = method.make_norm(
            out_channels, dims="2d", mode="group", num_groups=num_groups
        )
        self.drop1 = method.make_dropout(dims="2d")
        self.act1 = PACT(bits=act_bits)
        self.conv2 = QuantConv2d(out_channels, out_channels, 3, padding=1, weight_bits=1)
        self.norm2 = method.make_norm(
            out_channels, dims="2d", mode="group", num_groups=num_groups
        )
        self.drop2 = method.make_dropout(dims="2d")
        self.act2 = PACT(bits=act_bits)

    def forward(self, x: Tensor) -> Tensor:
        out = self.act1(self.drop1(self.norm1(self.conv1(x))))
        return self.act2(self.drop2(self.norm2(self.conv2(out))))


class UNet(Module):
    """Binary-weight U-Net with 4-bit PACT activations.

    Parameters
    ----------
    method:
        Normalization / stochasticity configuration.
    base_width:
        Channels of the first encoder level (doubled per level; must be a
        multiple of 8 for the group-wise normalization).
    depth:
        Number of down/up-sampling levels.
    act_bits:
        PACT activation bit width (Table I: 4).
    """

    def __init__(
        self,
        method: MethodConfig,
        in_channels: int = 1,
        base_width: int = 8,
        depth: int = 2,
        act_bits: int = 4,
    ):
        super().__init__()
        if base_width % 8 != 0:
            raise ValueError(f"base_width must be a multiple of 8, got {base_width}")
        self.method = method
        self.depth = depth
        widths = [base_width * (2**i) for i in range(depth + 1)]

        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False)
        encoders = []
        for level in range(depth):
            encoders.append(
                _UNetConvBlock(widths[level], widths[level], method, act_bits)
            )
        self.encoders = _module_list(encoders)
        self.pools = _module_list([MaxPool2d(2) for _ in range(depth)])
        self.downs = _module_list(
            [
                QuantConv2d(widths[level], widths[level + 1], 1, weight_bits=1)
                for level in range(depth)
            ]
        )
        self.bottleneck = _UNetConvBlock(widths[depth], widths[depth], method, act_bits)

        ups = []
        up_convs = []
        decoders = []
        for level in reversed(range(depth)):
            ups.append(UpsampleNearest2d(2))
            up_convs.append(
                QuantConv2d(widths[level + 1], widths[level], 3, padding=1, weight_bits=1)
            )
            decoders.append(
                _UNetConvBlock(2 * widths[level], widths[level], method, act_bits)
            )
        self.ups = _module_list(ups)
        self.up_convs = _module_list(up_convs)
        self.decoders = _module_list(decoders)
        self.head = Conv2d(widths[0], 1, 1)

    def forward(self, x: Tensor) -> Tensor:
        """Map ``(n, c, h, w)`` images to per-pixel logits ``(n, h, w)``.

        Chip-batched ``(chips, n, c, h, w)`` inputs map to
        ``(chips, n, h, w)`` logits: skip concatenation addresses the
        channel axis from the right, so the extra leading axis is inert.
        """
        out = self.stem(x)
        skips = []
        for level in range(self.depth):
            out = self.encoders[level](out)
            skips.append(out)
            out = self.downs[level](self.pools[level](out))
        out = self.bottleneck(out)
        for i, level in enumerate(reversed(range(self.depth))):
            out = self.up_convs[i](self.ups[i](out))
            out = concatenate([out, skips[level]], axis=-3)
            out = self.decoders[i](out)
        logits = self.head(out)
        return logits.reshape(*logits.shape[:-3], *logits.shape[-2:])

    def extra_repr(self) -> str:
        return f"method={self.method.name!r}"


def _module_list(modules):
    from ..nn import ModuleList

    return ModuleList(list(modules))
