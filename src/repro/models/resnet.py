"""Binarized ResNet-18 for image classification (CIFAR-10 task, Table I).

Topology follows the CIFAR variant of ResNet-18 — a full-precision 3x3 stem,
four stages of two residual BasicBlocks with channel doubling and stride-2
downsampling, global average pooling, and a full-precision classifier — with
the block convolutions binarized IR-Net-style [18] (1-bit weights) and
activations binarized by a sign function (1/1 W/A in Table I).  First and
last layers stay full precision, the universal practice for binary networks.

The normalization after every convolution is supplied by the
:class:`~repro.models.methods.MethodConfig`, so the same backbone serves the
conventional NN, the SpinDrop baselines, and the proposed inverted
normalization (which the paper applies "following all the convolutional
layers as a drop-in replacement").

Width and input size are configurable; the defaults are scaled for CPU
training on the synthetic image task (DESIGN.md §2).
"""

from __future__ import annotations

from typing import List

from ..nn import Conv2d, GlobalAvgPool2d, Linear, Module, Sequential
from ..quant import QuantConv2d, SignActivation
from ..tensor import Tensor
from .methods import MethodConfig


class BasicBlock(Module):
    """Binary residual block: two (sign → binconv → norm) units + skip.

    The residual connection around each binary convolution (Bi-Real-Net
    style) preserves an information path through the non-differentiable
    sign, which binary ResNets require to train.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int,
        method: MethodConfig,
    ):
        super().__init__()
        self.sign1 = SignActivation()
        self.conv1 = QuantConv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, weight_bits=1
        )
        self.norm1 = method.make_norm(out_channels, dims="2d", mode="instance")
        self.sign2 = SignActivation()
        self.conv2 = QuantConv2d(
            out_channels, out_channels, 3, stride=1, padding=1, weight_bits=1
        )
        self.norm2 = method.make_norm(out_channels, dims="2d", mode="instance")
        # SpinDrop-family baselines sample one dropout per residual block,
        # placed inside the first branch so the skip path keeps a clean
        # signal (binarized networks do not train otherwise at this scale).
        self.drop = method.make_dropout(dims="2d")
        if stride != 1 or in_channels != out_channels:
            # Full-precision 1x1 projection shortcut (negligible footprint).
            self.shortcut = Conv2d(
                in_channels, out_channels, 1, stride=stride, bias=False
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        identity = self.shortcut(x) if self.shortcut is not None else x
        out = self.drop(self.norm1(self.conv1(self.sign1(x))))
        out = out + identity
        out = self.norm2(self.conv2(self.sign2(out))) + out
        return out


class ResNet18(Module):
    """Binarized ResNet-18 classifier.

    Parameters
    ----------
    method:
        Normalization / stochasticity configuration.
    num_classes:
        Output classes (10 for the image task).
    base_width:
        Channels of the first stage (paper: 64; scaled default 16).
    in_channels:
        Input image channels.
    """

    STAGE_BLOCKS = (2, 2, 2, 2)

    def __init__(
        self,
        method: MethodConfig,
        num_classes: int = 10,
        base_width: int = 16,
        in_channels: int = 3,
    ):
        super().__init__()
        self.method = method
        widths = [base_width * (2**i) for i in range(4)]
        self.stem = Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False)
        self.stem_norm = method.make_norm(widths[0], dims="2d", mode="instance")
        stages: List[Module] = []
        channels = widths[0]
        for stage_idx, (width, blocks) in enumerate(zip(widths, self.STAGE_BLOCKS)):
            stride = 1 if stage_idx == 0 else 2
            for block_idx in range(blocks):
                stages.append(
                    BasicBlock(
                        channels,
                        width,
                        stride if block_idx == 0 else 1,
                        method,
                    )
                )
                channels = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.classifier = Linear(channels, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem_norm(self.stem(x))
        out = self.stages(out)
        return self.classifier(self.pool(out))

    def extra_repr(self) -> str:
        return f"method={self.method.name!r}"
