"""Long-lived campaign service: daemon, sharding scheduler, and client.

The service keeps the expensive per-process state — trained models,
frozen deployment quantization, traced plans, registered fault
programs — warm across requests, shards each sweep's ``(task,
fault-kind)`` groups across N workers, and serves every
already-computed cell from the content-addressed result store
(:mod:`repro.eval.cache`) so overlapping robustness grids never
recompute a cell.  Results are bit-identical to the serial engine in
every configuration.

Run a daemon with ``python -m repro.serve --workers 2`` and talk to it
with :class:`~repro.serve.client.ServiceClient` or the CLI's
``--connect`` flag; ``--serve N`` spins up an in-process service for
one invocation.
"""

from .chaos import ChaosSchedule, LegacyKill
from .client import (
    IncompleteSweepError,
    ServiceClient,
    ServiceUnavailable,
    service_sweep,
)
from .daemon import CampaignService
from .protocol import ChecksumError, ConnectionClosed, ProtocolError
from .shard import ShardUnit, assign_units, revive_workers, shard_units

__all__ = [
    "CampaignService",
    "ChaosSchedule",
    "ChecksumError",
    "ConnectionClosed",
    "IncompleteSweepError",
    "LegacyKill",
    "ProtocolError",
    "ServiceClient",
    "ServiceUnavailable",
    "ShardUnit",
    "assign_units",
    "revive_workers",
    "service_sweep",
    "shard_units",
]
