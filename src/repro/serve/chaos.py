"""Deterministic chaos engine for the campaign service.

Fault-recovery code is only trustworthy if the faults themselves are
reproducible: a flaky test that kills a worker "sometimes" proves
nothing, and a chaos run that cannot be replayed cannot be debugged.
This module makes every injected fault a **pure function of a seed**:

* a :class:`ChaosSchedule` names the event kinds it may emit
  (:data:`EVENT_KINDS` — worker ``kill``/``hang``, frame
  ``frame_drop``/``frame_delay``/``frame_corrupt``), a firing
  probability, and a trial budget;
* every *decision site* in the service is identified by stable
  coordinates — ``(worker, round, units_done)`` for worker events,
  ``(attempt, method, scenario)`` for frame events — hashed to an
  :func:`event_index`;
* whether an event fires is decided by one draw from
  ``SeedSequence(chaos_seed, spawn_key=(kind, event_index))`` — no
  shared counters, no wall clock, no thread-ordering dependence, so
  concurrent workers consult the schedule without races and two runs of
  the same (schedule, request) inject byte-identical fault sequences.

Boundedness is structural, not statistical: the *trial* coordinate (the
shard round for worker events, the client retry attempt for frame
events) gates every decision on ``trial < max_trials``, so after the
budgeted number of rounds/retries the schedule goes quiet and the sweep
is guaranteed to drain.  That is what lets the chaos tests assert both
"recovery happened" (counters non-zero) and "the result is bit-identical
to the cold serial reference" under every schedule.

The pre-PR9 one-shot hook (``chaos={"worker": w, "after_units": k,
"round": r}``) is kept as :class:`LegacyKill`; :func:`as_schedule`
normalizes either form coming off the wire.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Every event kind a schedule may emit.  ``kill`` makes a worker die
#: cleanly before its next unit; ``hang`` makes it stop responding (the
#: daemon's watchdog must declare it dead); the ``frame_*`` kinds act on
#: reply frames through the protocol shim (dropped entirely, delayed by
#: ``delay`` seconds, or sent with a corrupted payload so the CRC check
#: fires client-side).
EVENT_KINDS = ("kill", "hang", "frame_drop", "frame_delay", "frame_corrupt")

_WORKER_KINDS = ("kill", "hang")
_FRAME_KINDS = ("frame_drop", "frame_delay", "frame_corrupt")


def event_index(*coords) -> int:
    """Stable integer identity of one chaos decision site.

    A pure function of the coordinate tuple (CRC-32 of the canonical
    ``repr``), identical across processes, threads, and sessions — the
    spawn key that makes each site's draw independent yet replayable.
    """
    blob = "\x1f".join(repr(c) for c in coords).encode("utf-8")
    return zlib.crc32(blob)


@dataclass(frozen=True)
class ChaosSchedule:
    """A seeded, replayable schedule of service faults.

    ``kinds`` selects which of :data:`EVENT_KINDS` may fire, each with
    probability ``p`` per decision site; ``max_trials`` bounds how many
    trials (shard rounds for worker events, client retry attempts for
    frame events) stay chaotic before the schedule goes quiet, which
    bounds the recovery work a sweep can be forced into; ``delay`` is
    the injected latency of a ``frame_delay`` event in seconds.

    The schedule is a frozen value object: picklable (it rides inside
    the sweep request), hashable, and stateless — both ends of the wire
    and every worker thread see the same pure function.
    """

    seed: int
    kinds: Tuple[str, ...]
    p: float = 1.0
    max_trials: int = 1
    delay: float = 0.05

    def __post_init__(self):
        unknown = [k for k in self.kinds if k not in EVENT_KINDS]
        if unknown:
            raise ValueError(
                f"unknown chaos event kinds {unknown}; expected a subset "
                f"of {EVENT_KINDS}"
            )

    def fires(self, kind: str, trial: int, *coords) -> bool:
        """Does ``kind`` fire at this site?  Pure function of the inputs.

        ``trial`` is the boundedness gate (round / attempt number);
        ``coords`` the remaining stable site coordinates.
        """
        if kind not in self.kinds or trial >= self.max_trials:
            return False
        seq = np.random.SeedSequence(
            self.seed,
            spawn_key=(EVENT_KINDS.index(kind), event_index(trial, *coords)),
        )
        draw = float(np.random.Generator(np.random.PCG64(seq)).random())
        return draw < self.p

    # -- decision sites ------------------------------------------------
    def worker_event(
        self, worker: int, round_no: int, units_done: int
    ) -> Optional[str]:
        """Worker fate before its next unit: ``kill``, ``hang``, or None.

        Consulted by every worker thread before each shard unit; the
        trial coordinate is the round number, so a re-sharded round past
        ``max_trials`` is guaranteed chaos-free and the sweep drains.
        When several kinds fire at one site the first in
        :data:`EVENT_KINDS` order wins, keeping composed schedules
        deterministic.
        """
        for kind in _WORKER_KINDS:
            if self.fires(kind, round_no, "worker", worker, units_done):
                return kind
        return None

    def frame_event(
        self, attempt: int, method: str, scenario: int
    ) -> Optional[str]:
        """Fate of one reply frame: a ``frame_*`` kind or None.

        Consulted at the daemon's single send site per partial frame;
        the trial coordinate is the client's retry attempt, so a retried
        request past ``max_trials`` sees clean frames and converges.
        """
        for kind in _FRAME_KINDS:
            if self.fires(kind, attempt, "frame", method, scenario):
                return kind
        return None


@dataclass(frozen=True)
class LegacyKill:
    """The pre-PR9 one-shot chaos hook: kill one worker at one point.

    Mirrors the historical ``chaos={"worker", "after_units", "round"}``
    request dict — worker ``worker`` dies in round ``round`` once it has
    completed ``after_units`` units.  Deterministic by construction (no
    seed involved) and frame-silent.
    """

    worker: int
    after_units: int = 0
    round: int = 0

    def worker_event(
        self, worker: int, round_no: int, units_done: int
    ) -> Optional[str]:
        """``kill`` at exactly the configured (worker, round, unit) point."""
        if (
            worker == self.worker
            and round_no == self.round
            and units_done >= self.after_units
        ):
            return "kill"
        return None

    def frame_event(
        self, attempt: int, method: str, scenario: int
    ) -> Optional[str]:
        """Legacy hook never touches frames."""
        return None

    @property
    def delay(self) -> float:
        return 0.0


def as_schedule(chaos) -> Optional[object]:
    """Normalize a request's ``chaos`` field to a schedule (or None).

    Accepts ``None``, a :class:`ChaosSchedule`/:class:`LegacyKill`, or
    the legacy ``{"worker", "after_units", "round"}`` dict that older
    clients (and existing tests) send.
    """
    if chaos is None:
        return None
    if isinstance(chaos, dict):
        return LegacyKill(
            worker=chaos["worker"],
            after_units=chaos.get("after_units", 0),
            round=chaos.get("round", 0),
        )
    return chaos
