"""Client API for the campaign service.

:class:`ServiceClient` speaks the length-prefixed protocol to a running
:class:`~repro.serve.daemon.CampaignService` and reassembles streamed
partial frames into the same :class:`~repro.eval.campaigns.RobustnessSweep`
the in-process driver returns — means and stds are computed exactly as
:class:`~repro.faults.campaign.CampaignResult` computes them, so a
service-served sweep is bit-identical to a serial one.  Transport time
is accounted under the ``transport`` profile stage, never attributed to
``trace``/``replay``/``attach``.

Fault tolerance lives at this layer:

* **deadlines** — ``connect_timeout`` bounds TCP connect,
  ``request_timeout`` bounds every blocking socket read/write (a stalled
  frame trips it instead of hanging the caller for the default 600 s);
* **retries with deterministic backoff** — transport-class failures
  (refused/dropped connections, deadline trips, CRC
  :class:`~repro.serve.protocol.ChecksumError`\\ s, replies missing
  scenarios) tear down the socket and re-send the *same* request up to
  ``retries`` more times, sleeping ``backoff * 2**attempt`` scaled by a
  jitter factor that is a pure function of ``(request_id, attempt)`` —
  reproducible, yet de-synchronized across concurrent clients;
* **idempotent request ids** — every logical sweep carries one
  ``request_id`` (re-sent verbatim on retry), so the daemon counts the
  request once, accumulates its recovery counters across attempts, and
  a retried sweep never double-counts;
* application errors (an ``error`` frame from the daemon) are **not**
  retried — the request itself is bad, and re-sending it cannot help.

When every attempt fails the client raises :class:`ServiceUnavailable`;
callers wanting graceful degradation catch it and fall back to the
in-process engine (the CLI's ``--fallback-local``), which is safe
because the determinism contract makes both paths bit-identical.
"""

from __future__ import annotations

import hashlib
import socket
import time
import uuid
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults import FaultSpec
from ..models import MethodConfig
from ..eval.campaigns import MethodCurve, RobustnessSweep
from .protocol import recv_message, send_message

Address = Union[str, Tuple[str, int]]

#: Transport-class failures worth retrying: connection setup/teardown
#: (``ConnectionError`` and subclasses, including ``ProtocolError`` /
#: ``ChecksumError``), socket deadlines and OS-level failures
#: (``OSError``), and structurally incomplete replies.
RETRYABLE_ERRORS = (ConnectionError, OSError)


class ServiceUnavailable(ConnectionError):
    """Every connection/retry attempt against the service failed.

    Carries the last underlying error as ``__cause__``.  Callers opting
    into graceful degradation catch this and run the sweep in-process.
    """


class IncompleteSweepError(ConnectionError):
    """A sweep reply completed but is missing scenario frames.

    Happens when reply frames are lost in flight (or dropped by a chaos
    ``frame_drop`` event): the ``done`` frame arrived, but some scenario
    never did.  Retryable — the daemon landed every computed value in
    the result store, so the retried request streams the missing
    scenarios from the store without recomputing anything.
    """


def backoff_delay(
    request_id: str, attempt: int, base: float, cap: float = 30.0
) -> float:
    """Deterministic exponential backoff with per-request jitter.

    ``base * 2**attempt``, scaled by a jitter factor in ``[0.5, 1.0)``
    that is a pure function of ``(request_id, attempt)`` (first 8 bytes
    of their SHA-256).  Reproducible — the same retried request waits
    the same schedule every run — while concurrent clients with distinct
    request ids spread out instead of stampeding in lockstep.
    """
    digest = hashlib.sha256(
        f"{request_id}:{attempt}".encode("utf-8")
    ).digest()
    jitter = 0.5 + int.from_bytes(digest[:8], "big") / 2**65
    return min(cap, base * (2.0**attempt)) * jitter


class ServiceClient:
    """One logical connection to a campaign service daemon.

    Usable as a context manager; the socket is opened lazily on the
    first request, re-opened automatically after any transport failure,
    and a single client may issue any number of requests (the daemon
    keeps per-connection state out of the protocol).

    ``retries`` is the number of *additional* attempts after the first
    (so ``retries=2`` means at most three sends of one request);
    ``retries=0`` fails fast on the first transport error.
    """

    def __init__(
        self,
        address: Address,
        connect_timeout: float = 5.0,
        request_timeout: float = 600.0,
        retries: int = 2,
        backoff: float = 0.25,
    ):
        self.host, self.port = _parse_address(address)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self._sock: Optional[socket.socket] = None

    def _connection(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            # Connect and request deadlines are separate knobs: connect
            # failures are fast/cheap to retry, requests legitimately
            # stream for a long time.
            sock.settimeout(self.request_timeout)
            self._sock = sock
        return self._sock

    def close(self) -> None:
        """Close the socket (if open) and always reset it to None.

        Also the error-recovery primitive: after any transport failure
        the retry loop calls ``close()`` so the next attempt dials a
        fresh connection instead of wedging on the dead socket.
        """
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- retry loop ----------------------------------------------------
    def _attempts(self, request_id: str):
        """Yield attempt numbers, sleeping the backoff between them."""
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(backoff_delay(request_id, attempt - 1, self.backoff))
            yield attempt

    def _with_retries(self, request_id: str, fn: Callable[[int], dict]):
        """Run ``fn(attempt)``, retrying transport-class failures.

        Any :data:`RETRYABLE_ERRORS` tears the socket down and re-runs
        ``fn`` after the deterministic backoff; exhaustion raises
        :class:`ServiceUnavailable` from the last error.  Application
        errors propagate immediately.
        """
        last: Optional[BaseException] = None
        for attempt in self._attempts(request_id):
            try:
                return fn(attempt)
            except RETRYABLE_ERRORS as exc:
                self.close()
                last = exc
        raise ServiceUnavailable(
            f"service at {self.host}:{self.port} unavailable after "
            f"{self.retries + 1} attempt(s): {last!r}"
        ) from last

    # -- simple ops ----------------------------------------------------
    def _roundtrip(self, request: dict) -> dict:
        request_id = request.setdefault("request_id", uuid.uuid4().hex)

        def attempt_once(attempt: int) -> dict:
            sock = self._connection()
            send_message(sock, dict(request, attempt=attempt))
            reply = recv_message(sock)
            if not reply.get("ok", False):
                raise RuntimeError(
                    f"service error: {reply.get('message', 'unknown')}"
                )
            return reply

        return self._with_retries(request_id, attempt_once)

    def ping(self) -> dict:
        """Liveness check; returns the daemon's worker count."""
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        """Cumulative daemon statistics (requests, cells, store counters)."""
        return self._roundtrip({"op": "stats"})

    def shutdown(self) -> None:
        """Ask the daemon to exit (the reply confirms before it stops).

        Never retried: a lost reply is indistinguishable from a daemon
        that already stopped, and re-dialing a stopping service to ask
        it to stop again helps nobody.
        """
        try:
            sock = self._connection()
            send_message(
                sock,
                {"op": "shutdown", "request_id": uuid.uuid4().hex,
                 "attempt": 0},
            )
            recv_message(sock)
        finally:
            self.close()

    # -- sweeps --------------------------------------------------------
    def sweep(
        self,
        task_name: str,
        methods: Sequence[MethodConfig],
        specs: Sequence[FaultSpec],
        preset: str = "small",
        seed: int = 0,
        n_runs: Optional[int] = None,
        samples: Optional[int] = None,
        max_eval_samples: Optional[int] = -1,
        use_store: bool = True,
        on_partial: Optional[Callable[[dict], None]] = None,
        chaos=None,
    ) -> Tuple[RobustnessSweep, dict]:
        """Run one robustness sweep through the service.

        Returns ``(sweep, stats)`` where ``sweep`` matches
        :func:`repro.eval.campaigns.run_robustness_sweep` bit for bit and
        ``stats`` is the daemon's per-request accounting (store counter
        deltas, ``redundant_cells``, recovery counters, per-worker
        throughput rows, round assignments).  ``on_partial`` observes
        every streamed frame as it arrives — each carries one scenario's
        full value array and its source (``"store"`` or ``"computed"``).
        ``chaos`` injects deterministic faults: a
        :class:`~repro.serve.chaos.ChaosSchedule`, or the legacy
        one-shot ``{"worker": i, "after_units": k}`` kill dict.

        The whole sweep is one idempotent request: retried attempts
        re-send the same ``request_id`` with an incremented ``attempt``,
        and everything a failed attempt computed is served from the
        result store on the retry, so no cell is ever computed twice.
        """
        request = {
            "op": "sweep",
            "task": task_name,
            "preset": preset,
            "seed": seed,
            "n_runs": n_runs,
            "samples": samples,
            "max_eval_samples": max_eval_samples,
            "methods": list(methods),
            "specs": list(specs),
            "use_store": use_store,
            "chaos": chaos,
            "request_id": uuid.uuid4().hex,
        }

        def attempt_once(attempt: int) -> Tuple[RobustnessSweep, dict]:
            sock = self._connection()
            send_message(sock, dict(request, attempt=attempt))
            values_by_method: Dict[str, Dict[int, np.ndarray]] = {}
            while True:
                frame = recv_message(sock)
                kind = frame.get("kind")
                if kind == "partial":
                    per_scenario = values_by_method.setdefault(
                        frame["method"], {}
                    )
                    per_scenario[frame["scenario"]] = np.asarray(
                        frame["values"], dtype=np.float64
                    )
                    if on_partial is not None:
                        on_partial(frame)
                    continue
                if kind == "error":
                    raise RuntimeError(
                        f"service error: {frame.get('message', 'unknown')}"
                    )
                if kind == "done":
                    stats = frame["stats"]
                    break
                raise RuntimeError(f"unexpected frame kind {kind!r}")
            return (
                self._assemble(methods, specs, stats, values_by_method),
                stats,
            )

        return self._with_retries(request["request_id"], attempt_once)

    @staticmethod
    def _assemble(
        methods: Sequence[MethodConfig],
        specs: Sequence[FaultSpec],
        stats: dict,
        values_by_method: Dict[str, Dict[int, np.ndarray]],
    ) -> RobustnessSweep:
        meta = stats["task"]
        fault_kind = next((s.kind for s in specs if s.kind != "none"), "none")
        sweep = RobustnessSweep(
            task_name=meta["name"],
            metric_name=meta["metric_name"],
            higher_is_better=meta["higher_is_better"],
            fault_kind=fault_kind,
        )
        for method in methods:
            per_scenario = values_by_method.get(method.name, {})
            missing = [i for i in range(len(specs)) if i not in per_scenario]
            if missing:
                # A dropped frame, not a bad request: the done frame
                # arrived but these scenarios never did.  Retryable; the
                # retry streams them from the store.
                raise IncompleteSweepError(
                    f"service reply for {method.name!r} is missing "
                    f"scenarios {missing}"
                )
            ordered: List[np.ndarray] = [
                per_scenario[i] for i in range(len(specs))
            ]
            sweep.curves[method.name] = MethodCurve(
                method=method,
                levels=np.array([s.level for s in specs]),
                # float(values.mean()) / float(values.std()) is exactly
                # CampaignResult.mean / .std — bit-identity depends on it.
                means=np.array([float(v.mean()) for v in ordered]),
                stds=np.array([float(v.std()) for v in ordered]),
            )
        return sweep


def _parse_address(address: Address) -> Tuple[str, int]:
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


def service_sweep(
    address: Address,
    task_name: str,
    methods: Sequence[MethodConfig],
    specs: Sequence[FaultSpec],
    client_options: Optional[dict] = None,
    **kwargs,
) -> Tuple[RobustnessSweep, dict]:
    """One-shot sweep against a running daemon (connect, sweep, close).

    ``client_options`` are passed to :class:`ServiceClient` (deadlines,
    retries, backoff).
    """
    with ServiceClient(address, **(client_options or {})) as client:
        return client.sweep(task_name, methods, specs, **kwargs)
