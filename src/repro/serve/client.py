"""Client API for the campaign service.

:class:`ServiceClient` speaks the length-prefixed protocol to a running
:class:`~repro.serve.daemon.CampaignService` and reassembles streamed
partial frames into the same :class:`~repro.eval.campaigns.RobustnessSweep`
the in-process driver returns — means and stds are computed exactly as
:class:`~repro.faults.campaign.CampaignResult` computes them, so a
service-served sweep is bit-identical to a serial one.  Transport time
is accounted under the ``transport`` profile stage, never attributed to
``trace``/``replay``/``attach``.
"""

from __future__ import annotations

import socket
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..faults import FaultSpec
from ..models import MethodConfig
from ..eval.campaigns import MethodCurve, RobustnessSweep
from .protocol import recv_message, send_message

Address = Union[str, Tuple[str, int]]


def _parse_address(address: Address) -> Tuple[str, int]:
    if isinstance(address, tuple):
        return address[0], int(address[1])
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    return host, int(port)


class ServiceClient:
    """One connection to a campaign service daemon.

    Usable as a context manager; the connection is opened lazily on the
    first request and a single client may issue any number of requests
    (the daemon keeps per-connection state out of the protocol).
    """

    def __init__(self, address: Address):
        self.host, self.port = _parse_address(address)
        self._sock: Optional[socket.socket] = None

    def _connection(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=600.0
            )
        return self._sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- simple ops ----------------------------------------------------
    def _roundtrip(self, request: dict) -> dict:
        sock = self._connection()
        send_message(sock, request)
        reply = recv_message(sock)
        if not reply.get("ok", False):
            raise RuntimeError(
                f"service error: {reply.get('message', 'unknown')}"
            )
        return reply

    def ping(self) -> dict:
        """Liveness check; returns the daemon's worker count."""
        return self._roundtrip({"op": "ping"})

    def stats(self) -> dict:
        """Cumulative daemon statistics (requests, cells, store counters)."""
        return self._roundtrip({"op": "stats"})

    def shutdown(self) -> None:
        """Ask the daemon to exit (the reply confirms before it stops)."""
        try:
            self._roundtrip({"op": "shutdown"})
        finally:
            self.close()

    # -- sweeps --------------------------------------------------------
    def sweep(
        self,
        task_name: str,
        methods: Sequence[MethodConfig],
        specs: Sequence[FaultSpec],
        preset: str = "small",
        seed: int = 0,
        n_runs: Optional[int] = None,
        samples: Optional[int] = None,
        max_eval_samples: Optional[int] = -1,
        use_store: bool = True,
        on_partial: Optional[Callable[[dict], None]] = None,
        chaos: Optional[dict] = None,
    ) -> Tuple[RobustnessSweep, dict]:
        """Run one robustness sweep through the service.

        Returns ``(sweep, stats)`` where ``sweep`` matches
        :func:`repro.eval.campaigns.run_robustness_sweep` bit for bit and
        ``stats`` is the daemon's per-request accounting (store counter
        deltas, ``redundant_cells``, per-worker throughput rows, round
        assignments).  ``on_partial`` observes every streamed frame as it
        arrives — each carries one scenario's full value array and its
        source (``"store"`` or ``"computed"``).  ``chaos`` injects a
        deterministic worker death (``{"worker": i, "after_units": k}``)
        for re-shard testing.
        """
        sock = self._connection()
        send_message(sock, {
            "op": "sweep",
            "task": task_name,
            "preset": preset,
            "seed": seed,
            "n_runs": n_runs,
            "samples": samples,
            "max_eval_samples": max_eval_samples,
            "methods": list(methods),
            "specs": list(specs),
            "use_store": use_store,
            "chaos": chaos,
        })
        values_by_method: Dict[str, Dict[int, np.ndarray]] = {}
        while True:
            frame = recv_message(sock)
            kind = frame.get("kind")
            if kind == "partial":
                per_scenario = values_by_method.setdefault(frame["method"], {})
                per_scenario[frame["scenario"]] = np.asarray(
                    frame["values"], dtype=np.float64
                )
                if on_partial is not None:
                    on_partial(frame)
                continue
            if kind == "error":
                raise RuntimeError(
                    f"service error: {frame.get('message', 'unknown')}"
                )
            if kind == "done":
                stats = frame["stats"]
                break
            raise RuntimeError(f"unexpected frame kind {kind!r}")
        return self._assemble(methods, specs, stats, values_by_method), stats

    @staticmethod
    def _assemble(
        methods: Sequence[MethodConfig],
        specs: Sequence[FaultSpec],
        stats: dict,
        values_by_method: Dict[str, Dict[int, np.ndarray]],
    ) -> RobustnessSweep:
        meta = stats["task"]
        fault_kind = next((s.kind for s in specs if s.kind != "none"), "none")
        sweep = RobustnessSweep(
            task_name=meta["name"],
            metric_name=meta["metric_name"],
            higher_is_better=meta["higher_is_better"],
            fault_kind=fault_kind,
        )
        for method in methods:
            per_scenario = values_by_method.get(method.name, {})
            missing = [i for i in range(len(specs)) if i not in per_scenario]
            if missing:
                raise RuntimeError(
                    f"service reply for {method.name!r} is missing "
                    f"scenarios {missing}"
                )
            ordered: List[np.ndarray] = [
                per_scenario[i] for i in range(len(specs))
            ]
            sweep.curves[method.name] = MethodCurve(
                method=method,
                levels=np.array([s.level for s in specs]),
                # float(values.mean()) / float(values.std()) is exactly
                # CampaignResult.mean / .std — bit-identity depends on it.
                means=np.array([float(v.mean()) for v in ordered]),
                stds=np.array([float(v.std()) for v in ordered]),
            )
        return sweep


def service_sweep(
    address: Address,
    task_name: str,
    methods: Sequence[MethodConfig],
    specs: Sequence[FaultSpec],
    **kwargs,
) -> Tuple[RobustnessSweep, dict]:
    """One-shot sweep against a running daemon (connect, sweep, close)."""
    with ServiceClient(address) as client:
        return client.sweep(task_name, methods, specs, **kwargs)
