"""Deterministic sharding of a campaign grid across service workers.

The unit of work is one *kind group* from the batched executor
(:func:`repro.faults.executor._kind_groups`): a maximal run of
same-fault-kind scenario ranges that the scenario-batched engine can
stack into single vectorized passes.  Sharding at this granularity
keeps every unit on the engine's fastest path — splitting a kind group
across workers would forfeit cross-scenario stacking, and joining
unrelated groups would gain nothing (the engine re-derives per-cell
hermetic streams either way, so placement never affects values).

Assignment is longest-processing-time greedy with total ordering on
ties, so it is a pure function of ``(units, worker_ids)``: any two
schedulers holding the same pending units and the same surviving
workers — including a re-shard after a worker death — compute the same
placement.  That determinism is what makes worker failure testable:
replaying a request with the same death injected yields the same
rounds, the same assignments, and (because cells are hermetic) the
same bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..faults.executor import WorkCell, _kind_groups


@dataclass(frozen=True)
class ShardUnit:
    """One schedulable kind group of a sweep's cell grid.

    ``index`` is the unit's position in the grid's group list (the
    deterministic identity used for assignment ordering and re-shard
    bookkeeping), ``kind`` the shared fault kind, ``ranges`` the
    ``(start, stop)`` cell-index ranges of its scenarios in the flat
    grid, and ``n_cells`` the total cell count (the LPT weight).
    """

    index: int
    kind: str
    ranges: Tuple[Tuple[int, int], ...]
    n_cells: int

    @property
    def start(self) -> int:
        return self.ranges[0][0]

    @property
    def stop(self) -> int:
        return self.ranges[-1][1]


def shard_units(cells: Sequence[WorkCell]) -> List[ShardUnit]:
    """Partition a cell grid into schedulable kind-group units."""
    units = []
    for index, group in enumerate(_kind_groups(cells)):
        start, stop = group[0][0], group[-1][1]
        units.append(
            ShardUnit(
                index=index,
                kind=cells[start].spec.kind,
                ranges=tuple(group),
                n_cells=stop - start,
            )
        )
    return units


def revive_workers(
    dead: Sequence[int],
    respawns_used: Dict[int, int],
    max_respawns: int,
) -> List[int]:
    """Dead worker ids eligible for a respawn, in deterministic order.

    A worker may be respawned at most ``max_respawns`` times per sweep
    (``respawns_used`` counts what it has already consumed); past the
    budget the service degrades to the survivors.  The returned order is
    sorted by id so that — like :func:`assign_units` — the revive step
    is a pure function of its inputs and a replayed chaos run rebuilds
    the identical ``alive`` list round for round.
    """
    return sorted(
        wid for wid in dead if respawns_used.get(wid, 0) < max_respawns
    )


def assign_units(
    units: Sequence[ShardUnit], worker_ids: Sequence[int]
) -> Dict[int, List[ShardUnit]]:
    """Deterministically place units on workers (LPT greedy).

    Units are considered heaviest-first (ties broken by unit index) and
    each goes to the currently least-loaded worker (ties broken by the
    lowest worker id).  Every key of the returned dict is a worker id
    from ``worker_ids``, present even when its list is empty, so callers
    can spawn one worker per key unconditionally.
    """
    if not worker_ids:
        raise ValueError("cannot assign shard units to zero workers")
    if len(set(worker_ids)) != len(worker_ids):
        raise ValueError(f"duplicate worker ids: {list(worker_ids)}")
    assignment: Dict[int, List[ShardUnit]] = {wid: [] for wid in worker_ids}
    load = {wid: 0 for wid in worker_ids}
    for unit in sorted(units, key=lambda u: (-u.n_cells, u.index)):
        target = min(load, key=lambda wid: (load[wid], wid))
        assignment[target].append(unit)
        load[target] += unit.n_cells
    return assignment
