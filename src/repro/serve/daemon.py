"""The campaign service daemon.

One :class:`CampaignService` process keeps everything a cold campaign
run pays for — trained models, frozen deployment quantization, traced
plans, registered fault programs — warm across requests.  The warm
state lives on per-worker model replicas (fault hooks, plan caches,
and program registries are per-model state, exactly as in the thread
backend of :mod:`repro.faults.executor`), so the first request per
(worker, task, method) pays trace/program cost once and every later
request replays.

A sweep request is served in rounds:

1. scenarios already in the content-addressed result store stream back
   immediately (``source="store"``) — the store pre-check is what makes
   a repeated or overlapping sweep compute **zero** redundant cells;
2. the remaining scenarios are flattened into a hermetic cell grid
   (original scenario indices, so values are bit-identical to a cold
   serial run), partitioned into kind-group :class:`ShardUnit`\\ s, and
   placed on workers by the deterministic LPT scheduler;
3. each worker re-checks the store per scenario before computing (a
   unit re-issued after a worker death never recomputes what a previous
   round already landed), runs its units on the batched engine, lands
   fresh values in the store, and streams one partial frame per
   scenario as soon as it completes;
4. a worker death (or injected chaos, for tests) returns its unfinished
   units to the pool; survivors get a deterministic re-shard and the
   round counter advances.  Assignments of every round are recorded in
   the reply stats so re-shard determinism is directly assertable.

The reply's ``stats`` carry per-request store-counter deltas
(hit/miss/put/merge), ``redundant_cells`` (cells computed whose store
entry already existed — the quantity the acceptance criteria pin to
zero), and per-worker ``cells``/``seconds``/``cells_per_sec`` rows.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from queue import SimpleQueue
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..faults import FaultSpec
from ..faults.executor import WorkCell, run_cells
from ..models import MethodConfig
from ..eval.cache import ResultStore, campaign_key, result_store
from ..eval.campaigns import TaskEvalHandle, campaign_eval_cap
from ..eval.tasks import Task, build_task, mc_runs, mc_samples
from .protocol import recv_message, send_message
from .shard import ShardUnit, assign_units, shard_units


def _replicate(model):
    """Worker-private model copy (hooks/plans/programs are per-model)."""
    import copy

    replica = copy.deepcopy(model)
    for module in replica.modules():
        if hasattr(module, "invalidate_quant_cache"):
            module.invalidate_quant_cache()
    return replica


def _broadcast(values: np.ndarray, n_runs: int) -> np.ndarray:
    """Mirror the campaign's fault-free short-circuit re-broadcast."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < n_runs:
        values = np.full(n_runs, values[0] if len(values) else np.nan)
    return values[:n_runs]


class CampaignService:
    """Long-lived sharded campaign server on the loopback interface.

    ``start()`` binds (``port=0`` picks a free port, re-read from
    ``self.port``) and serves connections on background threads;
    ``serve_forever()`` blocks until ``stop()`` (or a client's
    ``shutdown`` request).  Sweeps are serialized by a request lock —
    parallelism lives *inside* a request, across shard workers — while
    ``ping``/``stats`` stay responsive on their own connections.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        verbose: bool = False,
    ):
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.store = store if store is not None else result_store()
        self.verbose = verbose
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._sweep_lock = threading.Lock()
        # Warm (worker, handle) → (model replica, evaluator); the replica
        # carries traced plans and programmed faults across requests.
        self._pairs: Dict[Tuple[int, Hashable], Tuple[object, object]] = {}
        self.requests = 0
        self.total_served_cells = 0
        self.total_computed_cells = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CampaignService":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(8)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._log(f"listening on {self.host}:{self.port}")
        return self

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def stop(self) -> None:
        self._stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro.serve] {message}", file=sys.stderr, flush=True)

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed by stop()
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            while not self._stopped.is_set():
                try:
                    request = recv_message(conn)
                except (ConnectionError, OSError):
                    return
                try:
                    if not self._dispatch(conn, request):
                        return
                except (ConnectionError, OSError):
                    return

    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        """Handle one request; returns False to drop the connection."""
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            send_message(conn, {"kind": "done", "ok": True, "pong": True,
                                "workers": self.workers})
            return True
        if op == "stats":
            send_message(conn, {
                "kind": "done", "ok": True,
                "requests": self.requests,
                "served_cells": self.total_served_cells,
                "computed_cells": self.total_computed_cells,
                "store": self.store.snapshot(),
                "warm_pairs": len(self._pairs),
                "workers": self.workers,
            })
            return True
        if op == "shutdown":
            send_message(conn, {"kind": "done", "ok": True})
            self.stop()
            return False
        if op == "sweep":
            try:
                with self._sweep_lock:
                    stats = self._handle_sweep(conn, request)
                send_message(conn, {"kind": "done", "ok": True, "stats": stats})
            except Exception as exc:  # noqa: BLE001 - reported to the client
                self._log(f"sweep failed: {exc!r}")
                send_message(
                    conn, {"kind": "error", "ok": False, "message": repr(exc)}
                )
            return True
        send_message(
            conn, {"kind": "error", "ok": False,
                   "message": f"unknown op {op!r}"}
        )
        return True

    # -- sweep execution -----------------------------------------------
    def _handle_sweep(self, conn: socket.socket, request: dict) -> dict:
        task: Task = build_task(
            request["task"], preset=request["preset"], seed=request["seed"]
        )
        preset = request["preset"]
        seed = request["seed"]
        n_runs = request.get("n_runs") or mc_runs(preset)
        samples = request.get("samples") or mc_samples(preset)
        max_eval_samples = request.get("max_eval_samples", -1)
        if max_eval_samples == -1:
            max_eval_samples = campaign_eval_cap(preset)
        methods: Sequence[MethodConfig] = request["methods"]
        specs: Sequence[FaultSpec] = request["specs"]
        use_store = bool(request.get("use_store", True))
        chaos = request.get("chaos")
        self.requests += 1

        store_before = self.store.snapshot()
        stats = {
            "task": {
                "name": task.name,
                "metric_name": task.metric_name,
                "higher_is_better": task.higher_is_better,
            },
            "served_cells": 0, "computed_cells": 0, "redundant_cells": 0,
            "rounds": 0, "reshards": 0, "worker_deaths": 0,
            "assignments": [], "store_seconds": 0.0, "compute_seconds": 0.0,
        }
        per_worker: Dict[int, Dict[str, float]] = {}
        alive = list(range(self.workers))

        for method in methods:
            self._sweep_method(
                conn, task, method, specs, preset, seed, n_runs, samples,
                max_eval_samples, use_store, chaos, alive, stats, per_worker,
            )

        store_after = self.store.snapshot()
        stats["store"] = {
            k: store_after[k] - store_before[k] for k in store_after
        }
        stats["workers"] = [
            {
                "worker": wid,
                "cells": int(row["cells"]),
                "seconds": row["seconds"],
                "cells_per_sec": (
                    row["cells"] / row["seconds"] if row["seconds"] > 0 else 0.0
                ),
            }
            for wid, row in sorted(per_worker.items())
        ]
        self.total_served_cells += stats["served_cells"]
        self.total_computed_cells += stats["computed_cells"]
        self._log(
            f"sweep done: served={stats['served_cells']} "
            f"computed={stats['computed_cells']} "
            f"redundant={stats['redundant_cells']} rounds={stats['rounds']}"
        )
        return stats

    def _sweep_method(
        self, conn, task, method, specs, preset, seed, n_runs, samples,
        max_eval_samples, use_store, chaos, alive, stats, per_worker,
    ) -> None:
        keys = [
            campaign_key(task, method, spec, n_runs, samples, seed,
                         max_eval_samples)
            for spec in specs
        ]
        # Store pre-check: completed scenarios stream back without touching
        # a worker.
        pending: List[int] = []
        for idx, key in enumerate(keys):
            values = None
            if use_store:
                t0 = time.perf_counter()
                values = self.store.get(key)
                stats["store_seconds"] += time.perf_counter() - t0
            if values is not None and len(values) == n_runs:
                spec = specs[idx]
                n_eff = 1 if spec.kind == "none" or spec.level == 0.0 \
                    else n_runs
                stats["served_cells"] += n_eff
                send_message(conn, {
                    "kind": "partial", "method": method.name,
                    "scenario": idx, "values": values, "source": "store",
                })
            else:
                pending.append(idx)
        if not pending:
            return

        # Hermetic grid over the pending scenarios, original indices intact.
        grid: List[WorkCell] = []
        for idx in pending:
            spec = specs[idx]
            n_eff = 1 if spec.kind == "none" or spec.level == 0.0 else n_runs
            grid.extend(WorkCell(idx, run, spec) for run in range(n_eff))
        pending_units = shard_units(grid)

        handle = TaskEvalHandle(
            task.name, preset, seed, method, samples, max_eval_samples,
            task.seed,
        )
        ctx = {
            "grid": grid, "keys": keys, "seed": seed, "n_runs": n_runs,
            "use_store": use_store, "method": method.name,
        }

        round_no = 0
        while pending_units:
            if not alive:
                raise RuntimeError(
                    f"all {self.workers} workers died with "
                    f"{len(pending_units)} shard units unfinished"
                )
            assignment = assign_units(pending_units, alive)
            active = {wid for wid, units in assignment.items() if units}
            for wid in sorted(active):
                stats["assignments"].append({
                    "round": round_no, "method": method.name, "worker": wid,
                    "units": [u.index for u in assignment[wid]],
                    "cells": sum(u.n_cells for u in assignment[wid]),
                })
                # Replicas are built on this thread (handle builds may touch
                # the process-global RNG) and kept warm across requests.
                self._ensure_pair(wid, handle)
            events: SimpleQueue = SimpleQueue()
            threads = [
                threading.Thread(
                    target=self._worker_round,
                    args=(wid, assignment[wid], handle, ctx, chaos, round_no,
                          events),
                    name=f"serve-worker-{wid}",
                    daemon=True,
                )
                for wid in sorted(active)
            ]
            for thread in threads:
                thread.start()
            completed: set = set()
            while active:
                event = events.get()
                wid = event["worker"]
                if event["kind"] == "unit":
                    completed.add(event["unit"])
                    row = per_worker.setdefault(
                        wid, {"cells": 0, "seconds": 0.0}
                    )
                    row["cells"] += event["computed"]
                    row["seconds"] += event["compute_seconds"]
                    stats["computed_cells"] += event["computed"]
                    stats["served_cells"] += event["served"]
                    stats["redundant_cells"] += event["redundant"]
                    stats["store_seconds"] += event["store_seconds"]
                    stats["compute_seconds"] += event["compute_seconds"]
                    for scenario_idx, values in event["payloads"]:
                        send_message(conn, {
                            "kind": "partial", "method": ctx["method"],
                            "scenario": scenario_idx, "values": values,
                            "source": event["sources"][scenario_idx],
                            "worker": wid, "round": round_no,
                        })
                elif event["kind"] == "exit":
                    active.discard(wid)
                elif event["kind"] == "death":
                    active.discard(wid)
                    if wid in alive:
                        alive.remove(wid)
                    stats["worker_deaths"] += 1
                    self._log(
                        f"worker {wid} died in round {round_no}"
                        + (f": {event['error']}" if event.get("error") else "")
                    )
            for thread in threads:
                thread.join()
            pending_units = [
                u for u in pending_units if u.index not in completed
            ]
            round_no += 1
            stats["rounds"] += 1
            if pending_units:
                stats["reshards"] += 1

    def _ensure_pair(self, wid: int, handle: TaskEvalHandle) -> None:
        key = (wid, handle)
        if key in self._pairs:
            return
        model, evaluator = handle.build()
        # handle.build() returns the shared memory-cached model; fault
        # hooks are per-model state, so every worker gets a private copy.
        self._pairs[key] = (_replicate(model), evaluator)
        self._log(f"built replica for worker {wid} / {handle.method.name}")

    def _worker_round(
        self, wid: int, units: Sequence[ShardUnit], handle: TaskEvalHandle,
        ctx: dict, chaos: Optional[dict], round_no: int, events: SimpleQueue,
    ) -> None:
        done_units = 0
        try:
            for unit in units:
                if (
                    chaos is not None
                    and chaos.get("worker") == wid
                    and chaos.get("round", 0) == round_no
                    and done_units >= chaos.get("after_units", 0)
                ):
                    events.put({"kind": "death", "worker": wid,
                                "error": "chaos injection"})
                    return
                events.put(self._process_unit(wid, unit, handle, ctx))
                done_units += 1
            events.put({"kind": "exit", "worker": wid})
        except BaseException as exc:  # noqa: BLE001 - death → re-shard
            events.put({"kind": "death", "worker": wid, "error": repr(exc)})

    def _process_unit(
        self, wid: int, unit: ShardUnit, handle: TaskEvalHandle, ctx: dict
    ) -> dict:
        grid = ctx["grid"]
        keys = ctx["keys"]
        n_runs = ctx["n_runs"]
        model, evaluator = self._pairs[(wid, handle)]
        event = {
            "kind": "unit", "worker": wid, "unit": unit.index,
            "payloads": [], "sources": {}, "computed": 0, "served": 0,
            "redundant": 0, "store_seconds": 0.0, "compute_seconds": 0.0,
        }
        # Per-scenario store re-check: a unit re-issued after a worker
        # death — or racing an overlapping request — serves what another
        # worker already landed instead of recomputing it.
        pending_ranges: List[Tuple[int, int]] = []
        for start, stop in unit.ranges:
            scenario_idx = grid[start].scenario_index
            if ctx["use_store"]:
                t0 = time.perf_counter()
                values = self.store.get(keys[scenario_idx])
                event["store_seconds"] += time.perf_counter() - t0
                if values is not None and len(values) == n_runs:
                    event["served"] += stop - start
                    event["payloads"].append((scenario_idx, values))
                    event["sources"][scenario_idx] = "store"
                    continue
            pending_ranges.append((start, stop))
        if pending_ranges:
            cells = [
                grid[i] for start, stop in pending_ranges
                for i in range(start, stop)
            ]
            t0 = time.perf_counter()
            values = run_cells(
                cells, ctx["seed"], model=model, evaluator=evaluator,
                executor="batched",
            )
            event["compute_seconds"] += time.perf_counter() - t0
            offset = 0
            for start, stop in pending_ranges:
                n_cells = stop - start
                scenario_idx = grid[start].scenario_index
                full = _broadcast(values[offset:offset + n_cells], n_runs)
                offset += n_cells
                event["computed"] += n_cells
                if ctx["use_store"]:
                    t0 = time.perf_counter()
                    newly = self.store.put(keys[scenario_idx], full)
                    event["store_seconds"] += time.perf_counter() - t0
                    if not newly:
                        event["redundant"] += n_cells
                event["payloads"].append((scenario_idx, full))
                event["sources"][scenario_idx] = "computed"
        return event
