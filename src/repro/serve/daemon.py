"""The campaign service daemon.

One :class:`CampaignService` process keeps everything a cold campaign
run pays for — trained models, frozen deployment quantization, traced
plans, registered fault programs — warm across requests.  The warm
state lives on per-worker model replicas (fault hooks, plan caches,
and program registries are per-model state, exactly as in the thread
backend of :mod:`repro.faults.executor`), so the first request per
(worker, task, method) pays trace/program cost once and every later
request replays.

A sweep request is served in rounds:

1. scenarios already in the content-addressed result store stream back
   immediately (``source="store"``) — the store pre-check is what makes
   a repeated or overlapping sweep compute **zero** redundant cells;
2. the remaining scenarios are flattened into a hermetic cell grid
   (original scenario indices, so values are bit-identical to a cold
   serial run), partitioned into kind-group :class:`ShardUnit`\\ s, and
   placed on workers by the deterministic LPT scheduler;
3. each worker re-checks the store per scenario before computing (a
   unit re-issued after a worker death never recomputes what a previous
   round already landed), runs its units on the batched engine, lands
   fresh values in the store, and streams one partial frame per
   scenario as soon as it completes;
4. a worker death — a raised exception, an injected chaos kill, or a
   **hang** declared by the per-unit watchdog (no heartbeat for
   ``unit_deadline`` seconds) — returns its unfinished units to the
   pool; survivors get a deterministic re-shard, dead workers with
   respawn budget left (``max_respawns`` per worker per sweep) are
   revived with a **fresh replica** (re-warmed plans and fault programs
   on first use), and the round counter advances.  Assignments of every
   round are recorded in the reply stats so re-shard determinism is
   directly assertable.

Fault recovery is supervised from the sweep's connection thread: it
drains worker events with a watchdog tick, declares hung workers dead
(their late events are discarded — an abandoned worker can never
corrupt a round it no longer belongs to), and re-shards exactly as for
a clean crash.  Injected faults come from a deterministic
:class:`~repro.serve.chaos.ChaosSchedule` (worker kill/hang, frame
drop/delay/corrupt through the protocol shim), so every recovery path
is replayable bit-for-bit.

The reply's ``stats`` carry per-request store-counter deltas
(hit/miss/put/merge), ``redundant_cells`` (cells computed whose store
entry already existed — the quantity the acceptance criteria pin to
zero), recovery counters (``worker_deaths`` / ``hangs`` / ``respawns``
/ ``retries`` / ``frames_dropped``, accumulated across retried
attempts of one idempotent ``request_id``), and per-worker
``cells``/``seconds``/``cells_per_sec`` rows.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from collections import OrderedDict
from queue import Empty, SimpleQueue
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..faults import FaultSpec
from ..faults.executor import WorkCell, run_cells
from ..models import MethodConfig
from ..eval.cache import ResultStore, campaign_key, result_store
from ..eval.campaigns import TaskEvalHandle, campaign_eval_cap
from ..eval.tasks import Task, build_task, mc_runs, mc_samples
from .chaos import as_schedule
from .protocol import ConnectionClosed, recv_message, send_message
from .shard import ShardUnit, assign_units, revive_workers, shard_units

#: Recovery counters accumulated across retried attempts of one
#: idempotent ``request_id`` (the client re-sends the same id, so the
#: final reply accounts for everything its earlier attempts triggered).
RECOVERY_COUNTERS = (
    "worker_deaths",
    "hangs",
    "respawns",
    "reshards",
    "frames_dropped",
    "frames_delayed",
    "frames_corrupted",
)

#: Remembered request ids / counter carry-overs (FIFO-bounded).
MAX_REMEMBERED_REQUESTS = 256


def _replicate(model):
    """Worker-private model copy (hooks/plans/programs are per-model)."""
    import copy

    replica = copy.deepcopy(model)
    for module in replica.modules():
        if hasattr(module, "invalidate_quant_cache"):
            module.invalidate_quant_cache()
    return replica


def _broadcast(values: np.ndarray, n_runs: int) -> np.ndarray:
    """Mirror the campaign's fault-free short-circuit re-broadcast."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) < n_runs:
        values = np.full(n_runs, values[0] if len(values) else np.nan)
    return values[:n_runs]


class CampaignService:
    """Long-lived sharded campaign server on the loopback interface.

    ``start()`` binds (``port=0`` picks a free port, re-read from
    ``self.port``) and serves connections on background threads;
    ``serve_forever()`` blocks until ``stop()`` (or a client's
    ``shutdown`` request).  Sweeps are serialized by a request lock —
    parallelism lives *inside* a request, across shard workers — while
    ``ping``/``stats`` stay responsive on their own connections.

    ``unit_deadline`` is the per-unit watchdog: a worker that has not
    heartbeat for that many seconds while holding a unit is declared
    dead exactly as if it had crashed (default 300 s — far beyond any
    tiny/small unit; chaos tests shrink it).  ``max_respawns`` bounds
    how many times each dead worker is revived per sweep before the
    service degrades to the survivors (0 disables respawn entirely).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store: Optional[ResultStore] = None,
        verbose: bool = False,
        unit_deadline: float = 300.0,
        max_respawns: int = 1,
        watchdog_tick: float = 0.05,
    ):
        self.host = host
        self.port = port
        self.workers = max(1, int(workers))
        self.store = store if store is not None else result_store()
        self.verbose = verbose
        self.unit_deadline = float(unit_deadline)
        self.max_respawns = max(0, int(max_respawns))
        self.watchdog_tick = float(watchdog_tick)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopped = threading.Event()
        self._sweep_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._conns: Set[socket.socket] = set()
        # Warm (worker, handle) → (model replica, evaluator); the replica
        # carries traced plans and programmed faults across requests.
        self._pairs: Dict[Tuple[int, Hashable], Tuple[object, object]] = {}
        self.requests = 0
        self.retried_requests = 0
        self.conn_errors = 0
        self.total_served_cells = 0
        self.total_computed_cells = 0
        self.recovery_totals: Dict[str, int] = {
            k: 0 for k in RECOVERY_COUNTERS
        }
        self._request_attempts: "OrderedDict[str, int]" = OrderedDict()
        self._request_counters: "OrderedDict[str, Dict[str, int]]" = (
            OrderedDict()
        )

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CampaignService":
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(8)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        self._log(f"listening on {self.host}:{self.port}")
        return self

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        self._stopped.wait()

    def stop(self) -> None:
        """Stop accepting, close live connections, interrupt sweeps.

        Closing the tracked connections wakes every handler blocked in a
        read and fails every in-flight sweep's next frame send, so a
        stop with a sweep in flight winds down promptly instead of
        serving from a half-dead daemon; workers notice the flag at
        their next unit boundary.
        """
        self._stopped.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            # shutdown() first: close() alone does not wake a thread
            # blocked in accept(), and the blocked syscall would keep the
            # kernel socket alive — the port would stay bound and a
            # restart on the same port would fail with EADDRINUSE.
            try:
                listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                listener.close()
            except OSError:
                pass
        thread = self._accept_thread
        if (
            thread is not None
            and thread is not threading.current_thread()
            and thread.is_alive()
        ):
            thread.join(timeout=5.0)
        # Wait for an in-flight sweep to wind down (its next frame send
        # fails now that the connection is closed, and its workers stop
        # at their unit boundary).  Without this, a successor daemon
        # sharing the store would race the old workers' final puts.
        if self._sweep_lock.acquire(timeout=60.0):
            self._sweep_lock.release()
        with self._state_lock:
            live = list(self._conns)
            self._conns.clear()
        for conn in live:
            try:
                conn.close()
            except OSError:
                pass

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[repro.serve] {message}", file=sys.stderr, flush=True)

    # -- connection handling -------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                conn, _ = self._listener.accept()
            except (OSError, AttributeError):
                if self._stopped.is_set():
                    return  # listener closed by stop()
                self._conn_error("accept", "listener error")
                return
            with self._state_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _conn_error(self, where: str, exc) -> None:
        """Count and log one connection-level failure (flaky client, dead
        socket, mid-frame EOF).  Sockets closed by our own ``stop()`` are
        expected teardown, not errors."""
        if self._stopped.is_set():
            return
        with self._state_lock:
            self.conn_errors += 1
        self._log(f"connection error during {where}: {exc!r}")

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            with conn:
                while not self._stopped.is_set():
                    try:
                        request = recv_message(conn)
                    except ConnectionClosed:
                        return  # orderly client close between frames
                    except (ConnectionError, OSError) as exc:
                        self._conn_error("recv", exc)
                        return
                    if self._stopped.is_set():
                        return
                    try:
                        if not self._dispatch(conn, request):
                            return
                    except (ConnectionError, OSError) as exc:
                        self._conn_error("send", exc)
                        return
        finally:
            with self._state_lock:
                self._conns.discard(conn)

    def _dispatch(self, conn: socket.socket, request: dict) -> bool:
        """Handle one request; returns False to drop the connection."""
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            send_message(conn, {"kind": "done", "ok": True, "pong": True,
                                "workers": self.workers})
            return True
        if op == "stats":
            send_message(conn, {
                "kind": "done", "ok": True,
                "requests": self.requests,
                "retried_requests": self.retried_requests,
                "conn_errors": self.conn_errors,
                "served_cells": self.total_served_cells,
                "computed_cells": self.total_computed_cells,
                "recovery": dict(self.recovery_totals),
                "store": self.store.snapshot(),
                "warm_pairs": len(self._pairs),
                "workers": self.workers,
                "unit_deadline": self.unit_deadline,
                "max_respawns": self.max_respawns,
            })
            return True
        if op == "shutdown":
            # Flag first, reply second: a client that saw the reply can
            # rely on the service being observably stopping.
            self._stopped.set()
            send_message(conn, {"kind": "done", "ok": True})
            self.stop()
            return False
        if op == "sweep":
            try:
                with self._sweep_lock:
                    stats = self._handle_sweep(conn, request)
                send_message(conn, {"kind": "done", "ok": True, "stats": stats})
            except (ConnectionError, OSError):
                raise  # the client is gone; no error frame can reach it
            except Exception as exc:  # noqa: BLE001 - reported to the client
                if self._stopped.is_set():
                    # A stopping service is unavailable, not a judge of
                    # the request: drop the connection so the client
                    # classifies this as retryable transport failure.
                    raise ConnectionError("service stopping") from exc
                self._log(f"sweep failed: {exc!r}")
                send_message(
                    conn, {"kind": "error", "ok": False, "message": repr(exc)}
                )
            return True
        send_message(
            conn, {"kind": "error", "ok": False,
                   "message": f"unknown op {op!r}"}
        )
        return True

    # -- idempotent request accounting ---------------------------------
    def _register_attempt(self, request_id: Optional[str]) -> int:
        """Record one attempt of ``request_id``; returns prior attempts.

        The id makes retries idempotent in the accounting: ``requests``
        counts logical requests once however often the client re-sends,
        and recovery counters carry over so the final reply reports
        everything earlier attempts triggered.
        """
        if request_id is None:
            self.requests += 1
            return 0
        prior = self._request_attempts.get(request_id, 0)
        self._request_attempts[request_id] = prior + 1
        while len(self._request_attempts) > MAX_REMEMBERED_REQUESTS:
            self._request_attempts.popitem(last=False)
        if prior == 0:
            self.requests += 1
        else:
            self.retried_requests += 1
        return prior

    def _carried_counters(self, request_id: Optional[str]) -> Dict[str, int]:
        if request_id is None:
            return {k: 0 for k in RECOVERY_COUNTERS}
        saved = self._request_counters.get(request_id, {})
        return {k: saved.get(k, 0) for k in RECOVERY_COUNTERS}

    def _save_counters(
        self, request_id: Optional[str], stats: dict, carried: Dict[str, int]
    ) -> None:
        for k in RECOVERY_COUNTERS:
            self.recovery_totals[k] += stats.get(k, 0) - carried.get(k, 0)
        if request_id is None:
            return
        self._request_counters[request_id] = {
            k: stats.get(k, 0) for k in RECOVERY_COUNTERS
        }
        while len(self._request_counters) > MAX_REMEMBERED_REQUESTS:
            self._request_counters.popitem(last=False)

    # -- sweep execution -----------------------------------------------
    def _handle_sweep(self, conn: socket.socket, request: dict) -> dict:
        task: Task = build_task(
            request["task"], preset=request["preset"], seed=request["seed"]
        )
        preset = request["preset"]
        seed = request["seed"]
        n_runs = request.get("n_runs") or mc_runs(preset)
        samples = request.get("samples") or mc_samples(preset)
        max_eval_samples = request.get("max_eval_samples", -1)
        if max_eval_samples == -1:
            max_eval_samples = campaign_eval_cap(preset)
        methods: Sequence[MethodConfig] = request["methods"]
        specs: Sequence[FaultSpec] = request["specs"]
        use_store = bool(request.get("use_store", True))
        chaos = as_schedule(request.get("chaos"))
        request_id = request.get("request_id")
        attempt = int(request.get("attempt") or 0)
        prior_attempts = self._register_attempt(request_id)
        carried = self._carried_counters(request_id)

        store_before = self.store.snapshot()
        stats = {
            "task": {
                "name": task.name,
                "metric_name": task.metric_name,
                "higher_is_better": task.higher_is_better,
            },
            "served_cells": 0, "computed_cells": 0, "redundant_cells": 0,
            "rounds": 0, "attempt": attempt,
            "retries": prior_attempts,
            "store_seconds": 0.0, "compute_seconds": 0.0,
            "assignments": [],
        }
        stats.update(carried)
        per_worker: Dict[int, Dict[str, float]] = {}
        alive = list(range(self.workers))
        # Per-sweep worker health, shared across the method loop so a
        # worker's respawn budget spans the whole request.
        health = {"dead": set(), "respawns_used": {}}

        try:
            for method in methods:
                if self._stopped.is_set():
                    raise RuntimeError("service stopping")
                self._sweep_method(
                    conn, task, method, specs, preset, seed, n_runs, samples,
                    max_eval_samples, use_store, chaos, attempt, alive,
                    health, stats, per_worker,
                )
        finally:
            self._save_counters(request_id, stats, carried)

        store_after = self.store.snapshot()
        stats["store"] = {
            k: store_after[k] - store_before[k] for k in store_after
        }
        stats["workers"] = [
            {
                "worker": wid,
                "cells": int(row["cells"]),
                "seconds": row["seconds"],
                "cells_per_sec": (
                    row["cells"] / row["seconds"] if row["seconds"] > 0 else 0.0
                ),
            }
            for wid, row in sorted(per_worker.items())
        ]
        self.total_served_cells += stats["served_cells"]
        self.total_computed_cells += stats["computed_cells"]
        self._log(
            f"sweep done: served={stats['served_cells']} "
            f"computed={stats['computed_cells']} "
            f"redundant={stats['redundant_cells']} rounds={stats['rounds']}"
        )
        return stats

    def _send_frame(
        self, conn, frame: dict, chaos, attempt: int, stats: dict
    ) -> None:
        """Single send site for partial frames — the chaos protocol shim.

        A ``frame_drop`` event swallows the frame (the client notices
        the missing scenario at ``done`` and retries), ``frame_delay``
        sleeps past the schedule's ``delay`` before sending (tripping a
        client request deadline when one is armed), and
        ``frame_corrupt`` sends a payload that fails its CRC-32
        client-side.  All three are counted in the reply stats.
        """
        event = None
        if chaos is not None:
            event = chaos.frame_event(attempt, frame["method"], frame["scenario"])
        if event == "frame_drop":
            stats["frames_dropped"] += 1
            self._log(
                f"chaos: dropping frame {frame['method']}/{frame['scenario']}"
            )
            return
        if event == "frame_delay":
            stats["frames_delayed"] += 1
            self._log(
                f"chaos: delaying frame {frame['method']}/{frame['scenario']} "
                f"by {chaos.delay:.2f}s"
            )
            time.sleep(chaos.delay)
        corrupt = event == "frame_corrupt"
        if corrupt:
            stats["frames_corrupted"] += 1
            self._log(
                f"chaos: corrupting frame {frame['method']}/{frame['scenario']}"
            )
        send_message(conn, frame, corrupt=corrupt)

    def _sweep_method(
        self, conn, task, method, specs, preset, seed, n_runs, samples,
        max_eval_samples, use_store, chaos, attempt, alive, health, stats,
        per_worker,
    ) -> None:
        keys = [
            campaign_key(task, method, spec, n_runs, samples, seed,
                         max_eval_samples)
            for spec in specs
        ]
        # Store pre-check: completed scenarios stream back without touching
        # a worker.
        pending: List[int] = []
        for idx, key in enumerate(keys):
            values = None
            if use_store:
                t0 = time.perf_counter()
                values = self.store.get(key)
                stats["store_seconds"] += time.perf_counter() - t0
            if values is not None and len(values) == n_runs:
                spec = specs[idx]
                n_eff = 1 if spec.kind == "none" or spec.level == 0.0 \
                    else n_runs
                stats["served_cells"] += n_eff
                self._send_frame(conn, {
                    "kind": "partial", "method": method.name,
                    "scenario": idx, "values": values, "source": "store",
                }, chaos, attempt, stats)
            else:
                pending.append(idx)
        if not pending:
            return

        # Hermetic grid over the pending scenarios, original indices intact.
        grid: List[WorkCell] = []
        for idx in pending:
            spec = specs[idx]
            n_eff = 1 if spec.kind == "none" or spec.level == 0.0 else n_runs
            grid.extend(WorkCell(idx, run, spec) for run in range(n_eff))
        pending_units = shard_units(grid)

        handle = TaskEvalHandle(
            task.name, preset, seed, method, samples, max_eval_samples,
            task.seed,
        )
        ctx = {
            "grid": grid, "keys": keys, "seed": seed, "n_runs": n_runs,
            "use_store": use_store, "method": method.name,
        }

        round_no = 0
        while pending_units:
            if self._stopped.is_set():
                raise RuntimeError("service stopping")
            if not alive:
                raise RuntimeError(
                    f"all {self.workers} workers died with "
                    f"{len(pending_units)} shard units unfinished"
                )
            assignment = assign_units(pending_units, alive)
            active = {wid for wid, units in assignment.items() if units}
            for wid in sorted(active):
                stats["assignments"].append({
                    "round": round_no, "method": method.name, "worker": wid,
                    "units": [u.index for u in assignment[wid]],
                    "cells": sum(u.n_cells for u in assignment[wid]),
                })
                # Replicas are built on this thread (handle builds may touch
                # the process-global RNG) and kept warm across requests; a
                # respawned worker's pair was dropped on death, so this is
                # where its replica re-warms.
                self._ensure_pair(wid, handle)
            completed = self._run_round(
                conn, assignment, active, handle, ctx, chaos, attempt,
                round_no, alive, health, stats, per_worker,
            )
            pending_units = [
                u for u in pending_units if u.index not in completed
            ]
            round_no += 1
            stats["rounds"] += 1
            if pending_units:
                stats["reshards"] = stats.get("reshards", 0) + 1
                # Units going back to the pool are the service-side retries.
                stats["retries"] += len(pending_units)
                for wid in revive_workers(
                    sorted(health["dead"]), health["respawns_used"],
                    self.max_respawns,
                ):
                    health["respawns_used"][wid] = (
                        health["respawns_used"].get(wid, 0) + 1
                    )
                    health["dead"].discard(wid)
                    alive.append(wid)
                    stats["respawns"] += 1
                    self._log(
                        f"respawning worker {wid} "
                        f"({health['respawns_used'][wid]}/{self.max_respawns} "
                        "respawns used)"
                    )
                alive.sort()

    def _run_round(
        self, conn, assignment, active, handle, ctx, chaos, attempt,
        round_no, alive, health, stats, per_worker,
    ) -> set:
        """Supervise one shard round; returns the completed unit indices.

        The sweep thread is the supervisor: it drains worker events with
        a ``watchdog_tick`` timeout and, whenever the queue stays quiet,
        checks every active worker's heartbeat against ``unit_deadline``.
        A worker past the deadline is *declared dead* — its ``abandoned``
        event is set (waking a chaos-simulated hang immediately), it is
        removed from the alive pool exactly like a crashed worker, and
        any event it emits later is discarded, so an abandoned worker can
        never corrupt the accounting of a round it was evicted from.
        """
        events: SimpleQueue = SimpleQueue()
        hearts: Dict[int, float] = {
            wid: time.monotonic() for wid in sorted(active)
        }
        abandoned: Dict[int, threading.Event] = {
            wid: threading.Event() for wid in sorted(active)
        }
        threads = {
            wid: threading.Thread(
                target=self._worker_round,
                args=(wid, assignment[wid], handle, ctx, chaos, round_no,
                      events, hearts, abandoned[wid]),
                name=f"serve-worker-{wid}",
                daemon=True,
            )
            for wid in sorted(active)
        }
        for thread in threads.values():
            thread.start()
        completed: set = set()
        declared: set = set()
        try:
            self._drain_round(
                conn, events, hearts, abandoned, active, completed, declared,
                handle, ctx, chaos, attempt, round_no, alive, health, stats,
                per_worker,
            )
        except (ConnectionError, OSError):
            # The client is gone (or stop() closed its socket).  Wind the
            # round down before unwinding: a worker left running here
            # would share its warm replica with a retried attempt's round
            # and race on per-model fault-hook state.
            for wid in sorted(active):
                abandoned[wid].set()
            for wid, thread in threads.items():
                if wid not in declared:
                    thread.join()
            raise
        for wid, thread in threads.items():
            if wid not in declared:
                thread.join()
        return completed

    def _drain_round(
        self, conn, events, hearts, abandoned, active, completed, declared,
        handle, ctx, chaos, attempt, round_no, alive, health, stats,
        per_worker,
    ) -> None:
        while active:
            try:
                event = events.get(timeout=self.watchdog_tick)
            except Empty:
                now = time.monotonic()
                for wid in sorted(active):
                    if now - hearts.get(wid, now) <= self.unit_deadline:
                        continue
                    declared.add(wid)
                    abandoned[wid].set()
                    active.discard(wid)
                    if wid in alive:
                        alive.remove(wid)
                    health["dead"].add(wid)
                    self._pairs.pop((wid, handle), None)
                    stats["hangs"] += 1
                    self._log(
                        f"worker {wid} hung in round {round_no} (no "
                        f"heartbeat for {self.unit_deadline:.1f}s); "
                        "declared dead"
                    )
                continue
            wid = event["worker"]
            if wid in declared:
                continue  # late event from an abandoned worker
            if event["kind"] == "unit":
                completed.add(event["unit"])
                row = per_worker.setdefault(
                    wid, {"cells": 0, "seconds": 0.0}
                )
                row["cells"] += event["computed"]
                row["seconds"] += event["compute_seconds"]
                stats["computed_cells"] += event["computed"]
                stats["served_cells"] += event["served"]
                stats["redundant_cells"] += event["redundant"]
                stats["store_seconds"] += event["store_seconds"]
                stats["compute_seconds"] += event["compute_seconds"]
                for scenario_idx, values in event["payloads"]:
                    self._send_frame(conn, {
                        "kind": "partial", "method": ctx["method"],
                        "scenario": scenario_idx, "values": values,
                        "source": event["sources"][scenario_idx],
                        "worker": wid, "round": round_no,
                    }, chaos, attempt, stats)
            elif event["kind"] == "exit":
                active.discard(wid)
            elif event["kind"] == "death":
                active.discard(wid)
                if wid in alive:
                    alive.remove(wid)
                health["dead"].add(wid)
                self._pairs.pop((wid, handle), None)
                stats["worker_deaths"] += 1
                self._log(
                    f"worker {wid} died in round {round_no}"
                    + (f": {event['error']}" if event.get("error") else "")
                )

    def _ensure_pair(self, wid: int, handle: TaskEvalHandle) -> None:
        key = (wid, handle)
        if key in self._pairs:
            return
        model, evaluator = handle.build()
        # handle.build() returns the shared memory-cached model; fault
        # hooks are per-model state, so every worker gets a private copy.
        self._pairs[key] = (_replicate(model), evaluator)
        self._log(f"built replica for worker {wid} / {handle.method.name}")

    def _worker_round(
        self, wid: int, units: Sequence[ShardUnit], handle: TaskEvalHandle,
        ctx: dict, chaos, round_no: int, events: SimpleQueue,
        hearts: Dict[int, float], abandoned: threading.Event,
    ) -> None:
        done_units = 0
        try:
            for unit in units:
                if abandoned.is_set():
                    return  # declared dead; the round moved on without us
                if self._stopped.is_set():
                    break
                hearts[wid] = time.monotonic()
                event = (
                    chaos.worker_event(wid, round_no, done_units)
                    if chaos is not None else None
                )
                if event == "kill":
                    events.put({"kind": "death", "worker": wid,
                                "error": "chaos kill"})
                    return
                if event == "hang":
                    # Stop heartbeating and go quiet; the watchdog will
                    # declare us dead and set `abandoned`, at which point
                    # we exit without emitting anything.
                    abandoned.wait(timeout=self.unit_deadline * 4.0 + 1.0)
                    return
                events.put(self._process_unit(wid, unit, handle, ctx))
                done_units += 1
            events.put({"kind": "exit", "worker": wid})
        except BaseException as exc:  # noqa: BLE001 - death → re-shard
            events.put({"kind": "death", "worker": wid, "error": repr(exc)})

    def _process_unit(
        self, wid: int, unit: ShardUnit, handle: TaskEvalHandle, ctx: dict
    ) -> dict:
        grid = ctx["grid"]
        keys = ctx["keys"]
        n_runs = ctx["n_runs"]
        model, evaluator = self._pairs[(wid, handle)]
        event = {
            "kind": "unit", "worker": wid, "unit": unit.index,
            "payloads": [], "sources": {}, "computed": 0, "served": 0,
            "redundant": 0, "store_seconds": 0.0, "compute_seconds": 0.0,
        }
        # Per-scenario store re-check: a unit re-issued after a worker
        # death — or racing an overlapping request — serves what another
        # worker already landed instead of recomputing it.
        pending_ranges: List[Tuple[int, int]] = []
        for start, stop in unit.ranges:
            scenario_idx = grid[start].scenario_index
            if ctx["use_store"]:
                t0 = time.perf_counter()
                values = self.store.get(keys[scenario_idx])
                event["store_seconds"] += time.perf_counter() - t0
                if values is not None and len(values) == n_runs:
                    event["served"] += stop - start
                    event["payloads"].append((scenario_idx, values))
                    event["sources"][scenario_idx] = "store"
                    continue
            pending_ranges.append((start, stop))
        if pending_ranges:
            cells = [
                grid[i] for start, stop in pending_ranges
                for i in range(start, stop)
            ]
            t0 = time.perf_counter()
            values = run_cells(
                cells, ctx["seed"], model=model, evaluator=evaluator,
                executor="batched",
            )
            event["compute_seconds"] += time.perf_counter() - t0
            offset = 0
            for start, stop in pending_ranges:
                n_cells = stop - start
                scenario_idx = grid[start].scenario_index
                full = _broadcast(values[offset:offset + n_cells], n_runs)
                offset += n_cells
                event["computed"] += n_cells
                if ctx["use_store"]:
                    t0 = time.perf_counter()
                    newly = self.store.put(keys[scenario_idx], full)
                    event["store_seconds"] += time.perf_counter() - t0
                    if not newly:
                        event["redundant"] += n_cells
                event["payloads"].append((scenario_idx, full))
                event["sources"][scenario_idx] = "computed"
        return event
