"""Run a campaign service daemon: ``python -m repro.serve``.

The daemon binds the loopback interface (``--port 0`` picks a free
port, printed on startup so wrappers can parse it), keeps models /
plans / fault programs warm across requests, and serves sweeps until a
client sends ``shutdown`` or the process receives SIGINT.
"""

from __future__ import annotations

import argparse
from typing import List, Optional

from .daemon import CampaignService


def main(argv: Optional[List[str]] = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived sharded campaign service.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="interface to bind (loopback only by design)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = pick a free one, printed below)")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard workers per sweep request (default 2)")
    parser.add_argument("--unit-deadline", type=float, default=300.0,
                        help="per-unit watchdog deadline in seconds; a "
                             "worker silent this long is declared dead "
                             "(default 300)")
    parser.add_argument("--max-respawns", type=int, default=1,
                        help="respawn budget per dead worker per sweep "
                             "before degrading to survivors (default 1)")
    parser.add_argument("--verbose", action="store_true",
                        help="log requests and worker events to stderr")
    args = parser.parse_args(argv)
    service = CampaignService(
        host=args.host, port=args.port, workers=args.workers,
        verbose=args.verbose, unit_deadline=args.unit_deadline,
        max_respawns=args.max_respawns,
    ).start()
    print(f"repro campaign service listening on "
          f"{service.host}:{service.port}", flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        service.stop()


if __name__ == "__main__":
    main()
