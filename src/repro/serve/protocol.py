"""Length-prefixed message framing for the campaign service.

Messages are pickled Python dicts preceded by an 8-byte big-endian
length.  The prefix makes framing self-describing over any stream
transport (TCP socket, ``socket.socketpair`` pipe), so a reader always
knows exactly how many payload bytes to consume and partial reads from
the kernel never split a message.  A hard size cap rejects absurd
frames before allocating for them — a truncated or garbage prefix
surfaces as a clean :class:`ProtocolError` instead of an OOM.

The service speaks a small request/response vocabulary of dicts with an
``op`` field (``ping``, ``stats``, ``sweep``, ``shutdown``); sweep
responses stream as a sequence of ``{"kind": "partial", ...}`` frames
terminated by one ``{"kind": "done", ...}`` (or ``{"kind": "error"}``).
Pickle is safe here because both ends are the same trusted codebase on
the loopback interface — the daemon binds ``127.0.0.1`` only.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from ..tensor import plan as _plan

_HEADER = struct.Struct(">Q")

#: Refuse frames above this size (64 MiB) — far beyond any sweep payload.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A malformed frame (oversized, truncated, or unpicklable)."""


def send_message(sock: socket.socket, message: Any) -> None:
    """Frame and send one message (length prefix + pickle payload)."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"refusing to send {len(payload)} byte frame "
            f"(cap {MAX_MESSAGE_BYTES})"
        )
    with _plan.stage("transport"):
        sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message; raises ``ConnectionError`` on EOF."""
    with _plan.stage("transport"):
        header = _recv_exact(sock, _HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"refusing {length} byte frame (cap {MAX_MESSAGE_BYTES})"
            )
        payload = _recv_exact(sock, length)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is protocol-fatal
        raise ProtocolError(f"unpicklable frame: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes, looping over short kernel reads."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
