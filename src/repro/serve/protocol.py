"""Length-prefixed, checksummed message framing for the campaign service.

Messages are pickled Python dicts preceded by a 12-byte header: an
8-byte big-endian payload length and a 4-byte CRC-32 of the payload.
The length prefix makes framing self-describing over any stream
transport (TCP socket, ``socket.socketpair`` pipe), so a reader always
knows exactly how many payload bytes to consume and partial reads from
the kernel never split a message.  A hard size cap rejects absurd
frames before allocating for them — a truncated or garbage prefix
surfaces as a clean :class:`ProtocolError` instead of an OOM.

The CRC classifies corruption instead of letting it poison unpickle: a
frame whose payload does not match its checksum raises
:class:`ChecksumError` *before* ``pickle.loads`` runs, and the error is
**retryable** — the bytes were damaged in flight (or by an injected
``frame_corrupt`` chaos event), so the same request can simply be sent
again.  EOF cleanly between frames raises :class:`ConnectionClosed`
(an orderly peer close, not an error); EOF *inside* a frame stays a
plain :class:`ConnectionError`.

The service speaks a small request/response vocabulary of dicts with an
``op`` field (``ping``, ``stats``, ``sweep``, ``shutdown``); sweep
responses stream as a sequence of ``{"kind": "partial", ...}`` frames
terminated by one ``{"kind": "done", ...}`` (or ``{"kind": "error"}``).
Pickle is safe here because both ends are the same trusted codebase on
the loopback interface — the daemon binds ``127.0.0.1`` only (the CRC
is an integrity check against accidental corruption, not a security
boundary).
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any

from ..tensor import plan as _plan

_HEADER = struct.Struct(">QI")

#: Refuse frames above this size (64 MiB) — far beyond any sweep payload.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


class ProtocolError(ConnectionError):
    """A malformed frame (oversized, truncated, or unpicklable)."""


class ChecksumError(ProtocolError):
    """A frame whose payload fails its CRC-32 — corrupted in flight.

    Retryable by construction: the sender framed a valid message, the
    bytes were damaged between the endpoints, so re-sending the same
    request is safe and is exactly what the client's retry loop does.
    """


class ConnectionClosed(ConnectionError):
    """EOF cleanly between frames — an orderly peer close, not a fault."""


def send_message(sock: socket.socket, message: Any, corrupt: bool = False) -> None:
    """Frame and send one message (length + CRC-32 prefix, pickle payload).

    ``corrupt=True`` is the chaos engine's protocol shim: the checksum
    is computed over the *intact* payload and then one payload byte is
    flipped, so the receiver's CRC check — not its unpickler — detects
    the damage, exactly as with real in-flight corruption.
    """
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"refusing to send {len(payload)} byte frame "
            f"(cap {MAX_MESSAGE_BYTES})"
        )
    checksum = zlib.crc32(payload)
    if corrupt and payload:
        damaged = bytearray(payload)
        damaged[len(damaged) // 2] ^= 0xFF
        payload = bytes(damaged)
    with _plan.stage("transport"):
        sock.sendall(_HEADER.pack(len(payload), checksum) + payload)


def recv_message(sock: socket.socket) -> Any:
    """Receive one framed message.

    Raises :class:`ConnectionClosed` on EOF at a frame boundary, plain
    ``ConnectionError`` on EOF mid-frame, :class:`ChecksumError` when
    the payload fails its CRC, and :class:`ProtocolError` for oversized
    or unpicklable frames.
    """
    with _plan.stage("transport"):
        header = _recv_exact(sock, _HEADER.size, at_boundary=True)
        length, checksum = _HEADER.unpack(header)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"refusing {length} byte frame (cap {MAX_MESSAGE_BYTES})"
            )
        payload = _recv_exact(sock, length)
    actual = zlib.crc32(payload)
    if actual != checksum:
        raise ChecksumError(
            f"frame checksum mismatch (expected {checksum:#010x}, "
            f"got {actual:#010x} over {length} bytes)"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure is protocol-fatal
        raise ProtocolError(f"unpicklable frame: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int, at_boundary: bool = False) -> bytes:
    """Read exactly ``n`` bytes, looping over short kernel reads.

    ``at_boundary`` marks the read that starts a frame: EOF before any
    byte arrives there is an orderly close (:class:`ConnectionClosed`),
    while EOF anywhere else means the peer died mid-frame.
    """
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == n:
                raise ConnectionClosed("connection closed between frames")
            raise ConnectionError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
