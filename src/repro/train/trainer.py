"""Generic training loop."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..data.dataset import ArrayDataset, DataLoader
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from .optim import Optimizer


@dataclass
class History:
    """Per-epoch training record."""

    loss: List[float] = field(default_factory=list)
    metric: List[float] = field(default_factory=list)
    lr: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.loss[-1] if self.loss else float("nan")


class Trainer:
    """Minimal epoch-based trainer.

    Parameters
    ----------
    model:
        Module mapping a batch tensor to predictions.
    optimizer:
        Optimizer over ``model.parameters()``.
    loss_fn:
        ``(predictions, targets) -> scalar Tensor``.
    metric_fn:
        Optional ``(model, dataset) -> float`` evaluated after each epoch.
    schedule:
        Optional LR schedule with a ``step(epoch) -> lr`` method.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor],
        metric_fn: Optional[Callable[[Module, ArrayDataset], float]] = None,
        schedule=None,
        grad_clip: Optional[float] = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.metric_fn = metric_fn
        self.schedule = schedule
        self.grad_clip = grad_clip

    def _clip_gradients(self) -> None:
        if self.grad_clip is None:
            return
        total = 0.0
        for p in self.optimizer.parameters:
            if p.grad is not None:
                total += float((p.grad**2).sum())
        norm = np.sqrt(total)
        if norm > self.grad_clip:
            scale = self.grad_clip / (norm + 1e-12)
            for p in self.optimizer.parameters:
                if p.grad is not None:
                    p.grad *= scale

    def train_epoch(self, loader: DataLoader) -> float:
        """One pass over the loader; returns the mean batch loss."""
        self.model.train()
        losses = []
        for x, y in loader:
            self.optimizer.zero_grad()
            pred = self.model(x)
            loss = self.loss_fn(pred, y)
            loss.backward()
            self._clip_gradients()
            self.optimizer.step()
            losses.append(loss.item())
        return float(np.mean(losses))

    def fit(
        self,
        train_set: ArrayDataset,
        epochs: int,
        batch_size: int = 32,
        eval_set: Optional[ArrayDataset] = None,
        verbose: bool = False,
    ) -> History:
        """Train for ``epochs`` epochs; returns the loss/metric history."""
        history = History()
        loader = DataLoader(train_set, batch_size=batch_size, shuffle=True)
        for epoch in range(epochs):
            if self.schedule is not None:
                self.schedule.step(epoch)
            mean_loss = self.train_epoch(loader)
            history.loss.append(mean_loss)
            history.lr.append(self.optimizer.lr)
            if self.metric_fn is not None and eval_set is not None:
                history.metric.append(self.metric_fn(self.model, eval_set))
            if verbose:
                metric_note = (
                    f", metric={history.metric[-1]:.4f}" if history.metric else ""
                )
                print(f"epoch {epoch + 1}/{epochs}: loss={mean_loss:.4f}{metric_note}")
        return history


def evaluate_batched(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 128,
    reduce: Callable[[Tensor], np.ndarray] = lambda out: out.data,
) -> np.ndarray:
    """Deterministic batched forward over a dataset (no grad, eval mode)."""
    model.eval()
    pieces = []
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            x, _ = dataset[np.s_[start : start + batch_size]]
            pieces.append(reduce(model(Tensor(x))))
    return np.concatenate(pieces, axis=0)
