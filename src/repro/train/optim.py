"""Optimizers (SGD with momentum, Adam) and LR schedules."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from ..nn.module import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad
            p.mark_updated()


class Adam(Optimizer):
    """Adam with decoupled epsilon and optional weight decay (L2 style)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            p.mark_updated()


class CosineSchedule:
    """Cosine learning-rate decay from ``lr`` to ``lr * floor``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, floor: float = 0.05):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.total_epochs = max(1, total_epochs)
        self.floor = floor

    def step(self, epoch: int) -> float:
        progress = min(1.0, epoch / self.total_epochs)
        scale = self.floor + 0.5 * (1.0 - self.floor) * (1.0 + np.cos(np.pi * progress))
        self.optimizer.lr = self.base_lr * scale
        return self.optimizer.lr


class StepSchedule:
    """Multiply the LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_size = step_size
        self.gamma = gamma

    def step(self, epoch: int) -> float:
        self.optimizer.lr = self.base_lr * self.gamma ** (epoch // self.step_size)
        return self.optimizer.lr
