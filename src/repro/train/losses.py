"""Loss functions (all return scalar Tensors, differentiable)."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy from raw logits and integer labels."""
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = ops.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def nll_loss(log_probs: Tensor, labels: np.ndarray) -> Tensor:
    """Mean negative log-likelihood from log-probabilities."""
    labels = np.asarray(labels, dtype=np.int64)
    n = log_probs.shape[0]
    return -log_probs[np.arange(n), labels].mean()


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target_t
    return (diff * diff).mean()


def l1_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean absolute error."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    return ops.abs_(pred - target_t).mean()


def bce_with_logits(logits: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Binary cross-entropy on logits, numerically stable.

    Uses ``max(x, 0) - x*t + log(1 + exp(-|x|))``.
    """
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    relu_x = ops.relu(logits)
    softplus = ops.log(1.0 + ops.exp(-ops.abs_(logits)))
    return (relu_x - logits * target_t + softplus).mean()


def dice_loss(logits: Tensor, target: np.ndarray | Tensor, eps: float = 1.0) -> Tensor:
    """Soft Dice loss on sigmoid probabilities (binary segmentation)."""
    target_t = target if isinstance(target, Tensor) else Tensor(target)
    probs = ops.sigmoid(logits)
    axes = tuple(range(1, logits.ndim))
    intersection = (probs * target_t).sum(axis=axes)
    denom = probs.sum(axis=axes) + target_t.sum(axis=axes)
    dice = (2.0 * intersection + eps) / (denom + eps)
    return 1.0 - dice.mean()


def segmentation_loss(
    logits: Tensor, target: np.ndarray | Tensor, dice_weight: float = 0.5
) -> Tensor:
    """BCE + Dice combination used for the vessel-segmentation task."""
    return (1.0 - dice_weight) * bce_with_logits(logits, target) + dice_weight * dice_loss(
        logits, target
    )


def l2_regularization(parameters, weight_decay: float) -> Tensor:
    """Explicit L2 penalty (the Bayesian interpretation of [17] pairs
    dropout with weight decay)."""
    total = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return weight_decay * total
