"""Training substrate: losses, optimizers, schedules, metrics, trainer."""

from .losses import (
    bce_with_logits,
    cross_entropy,
    dice_loss,
    l1_loss,
    l2_regularization,
    mse_loss,
    nll_loss,
    segmentation_loss,
)
from .metrics import (
    accuracy,
    binary_miou,
    expected_calibration_error,
    improvement_percent,
    nll_from_probs,
    rmse,
)
from .optim import SGD, Adam, CosineSchedule, Optimizer, StepSchedule
from .trainer import History, Trainer, evaluate_batched

__all__ = [
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "l1_loss",
    "bce_with_logits",
    "dice_loss",
    "segmentation_loss",
    "l2_regularization",
    "SGD",
    "Adam",
    "Optimizer",
    "CosineSchedule",
    "StepSchedule",
    "accuracy",
    "rmse",
    "binary_miou",
    "nll_from_probs",
    "expected_calibration_error",
    "improvement_percent",
    "Trainer",
    "History",
    "evaluate_batched",
]
