"""Task metrics: accuracy, mIoU, RMSE, NLL, calibration error."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct hard predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim > labels.ndim:
        predictions = predictions.argmax(axis=-1)
    return float((predictions == labels).mean())


def rmse(predictions: np.ndarray, targets: np.ndarray) -> float | np.ndarray:
    """Root mean squared error.

    ``predictions`` may carry a leading chip/batch axis that ``targets``
    lacks (chip-batched campaign evaluation); the error is then reduced
    per leading slice and an array is returned.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets).reshape(-1)
    if predictions.ndim > 1:
        lead = predictions.shape[0]
        flat = predictions.reshape(lead, -1)
        if flat.shape[1] == targets.size:
            return np.sqrt(((flat - targets) ** 2).mean(axis=-1))
    predictions = predictions.reshape(-1)
    return float(np.sqrt(((predictions - targets) ** 2).mean()))


def binary_miou(pred_mask: np.ndarray, true_mask: np.ndarray) -> float:
    """Mean IoU over the two classes of a binary segmentation.

    ``mIoU = (IoU_foreground + IoU_background) / 2`` — the metric reported
    for DRIVE in Table I.
    """
    pred = np.asarray(pred_mask).astype(bool)
    true = np.asarray(true_mask).astype(bool)
    ious = []
    for cls_pred, cls_true in ((pred, true), (~pred, ~true)):
        union = (cls_pred | cls_true).sum()
        if union == 0:
            ious.append(1.0)
        else:
            ious.append((cls_pred & cls_true).sum() / union)
    return float(np.mean(ious))


def binary_miou_stack(pred_masks: np.ndarray, true_mask: np.ndarray) -> np.ndarray:
    """Per-slice :func:`binary_miou` over a leading chip/instance axis.

    ``pred_masks`` carries one predicted mask per slice (shape
    ``(stack, *mask)``), scored against ``true_mask`` — either one shared
    ground truth of shape ``mask`` (the chip-batched case: every chip's
    prediction scores against the same image) or one truth per slice of
    shape ``(stack, *mask)`` (the image-batched case: slice ``i`` scores
    against its own image).  Pure array ops over the stack axis,
    bit-identical to looping ``binary_miou`` slice by slice: integer
    intersection/union sums are exact, the float division and the final
    two-class average ``(fg + bg) / 2`` match the loop's arithmetic
    operation for operation.
    """
    pred = np.asarray(pred_masks).astype(bool)
    true = np.asarray(true_mask).astype(bool)
    stack = pred.shape[0]
    per_slice_truth = true.shape == pred.shape
    pred = pred.reshape(stack, -1)
    true = true.reshape(stack, -1) if per_slice_truth else true.reshape(-1)
    ious = []
    for cls_pred, cls_true in ((pred, true), (~pred, ~true)):
        inter = (cls_pred & cls_true).sum(axis=1)
        union = (cls_pred | cls_true).sum(axis=1)
        # union == 0 → empty class in both masks → IoU defined as 1.0
        ious.append(np.where(union == 0, 1.0, inter / np.maximum(union, 1)))
    return (ious[0] + ious[1]) / 2.0


def nll_from_probs(probs: np.ndarray, labels: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of integer labels under ``probs``."""
    probs = np.asarray(probs)
    labels = np.asarray(labels, dtype=np.int64)
    picked = probs[np.arange(len(labels)), labels]
    return float(-np.log(picked + eps).mean())


def expected_calibration_error(
    probs: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """ECE over equal-width confidence bins."""
    probs = np.asarray(probs)
    labels = np.asarray(labels, dtype=np.int64)
    confidences = probs.max(axis=-1)
    predictions = probs.argmax(axis=-1)
    correct = predictions == labels
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    ece = 0.0
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (confidences > lo) & (confidences <= hi)
        if not mask.any():
            continue
        gap = abs(correct[mask].mean() - confidences[mask].mean())
        ece += mask.mean() * gap
    return float(ece)


def improvement_percent(baseline: float, improved: float, higher_is_better: bool = True) -> float:
    """Relative improvement in percent, as reported in the paper's claims.

    For higher-is-better metrics: ``(improved - baseline) / baseline``.
    For lower-is-better metrics (RMSE): ``(baseline - improved) / baseline``.
    """
    if baseline == 0:
        return 0.0
    delta = improved - baseline if higher_is_better else baseline - improved
    return float(100.0 * delta / abs(baseline))
