"""Baseline methods the paper compares against (Table I, Figs. 5-6).

* **Conventional NN** — point-estimate network, conventional normalization,
  single deterministic forward pass at inference.
* **SpinDrop** [8] — Bayesian binary NN realized with Bernoulli dropout
  after each normalization; MC sampling at inference (the spintronic
  implementation samples the dropout mask with stochastic MTJ switching —
  see :func:`repro.imc.switching_probability` for the device mechanism).
* **SpatialSpinDrop** [7] — same, with spatial (channel-wise) dropout,
  cheaper in a crossbar datapath because one RNG gates a whole feature map.

These are thin re-exports of :mod:`repro.models.methods` plus the dropout
modules themselves; models built from a
:class:`~repro.models.methods.MethodConfig` share backbone, training recipe
and fault-injection surface with the proposed method, so comparisons are
apples-to-apples.
"""

from ..models.methods import (
    METHOD_NAMES,
    MethodConfig,
    all_methods,
    conventional,
    proposed,
    spatial_spindrop,
    spindrop,
)
from ..nn.dropout import Dropout, SpatialDropout1d, SpatialDropout2d

__all__ = [
    "MethodConfig",
    "METHOD_NAMES",
    "conventional",
    "spindrop",
    "spatial_spindrop",
    "proposed",
    "all_methods",
    "Dropout",
    "SpatialDropout1d",
    "SpatialDropout2d",
]
