"""Differentiable convolution, pooling and up-sampling primitives.

Convolutions use the im2col / GEMM formulation: sliding windows of the
padded input are flattened into a matrix with one vectorized gather (the
flat gather index is a pure function of the geometry and cached across
calls — see :func:`_im2col_indices`; campaigns hit the same shapes
thousands of times), and one large matmul computes all output positions.
The backward pass reuses the saved column matrix for the weight gradient
and scatters the column gradient back into the input with a small loop
over kernel positions (no ``np.add.at`` on fancy indices, which would be
orders of magnitude slower).

These functions are the computational kernels behind
:class:`repro.nn.conv.Conv2d` and friends.

Chip-batched evaluation
-----------------------
The Monte Carlo campaign engine's ``batched`` backend evaluates ``C``
simulated chips in one pass (see :mod:`repro.tensor.chipbatch`), which
shows up here as an extra leading *chip axis*:

* a 5-D activation ``(C, n, c, h, w)`` against a shared 4-D weight is
  folded into the batch dimension (fully differentiable, exact);
* a 5-D *per-chip* weight ``(C, c_out, c_in, kh, kw)`` — produced by
  chip-batched fault injection — selects a batched-GEMM path that
  contracts each chip's columns with its own kernel.  This path is
  inference-only: campaigns never backpropagate through faulty chips.

Pooling and up-sampling accept the extra leading axis transparently.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .tensor import Tensor, as_tensor


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# ----------------------------------------------------------------------
# im2col gather-index cache
# ----------------------------------------------------------------------
# Monte Carlo campaigns run the same convolution geometries thousands of
# times (every chip instance, MC sample, and evaluation batch reuses the
# model's fixed shapes), so the column-gather index — a pure function of
# (channels, padded spatial size, kernel, stride, dilation) — is computed
# once and cached.  The flat index maps position (out_pixel, c*kh*kw) to
# the offset inside one sample's padded (c, hp, wp) block; gathering with
# it is bit-identical to the strided-window copy it replaces, and lets the
# instance-batched path collect every instance's columns in ONE vectorized
# take instead of a per-chip Python loop.
_IM2COL_INDEX_CACHE: dict = {}
_IM2COL_INDEX_CACHE_MAX = 128


def _im2col_indices(
    c: int,
    hp: int,
    wp: int,
    kh: int,
    kw: int,
    stride_h: int,
    stride_w: int,
    dilation_h: int = 1,
    dilation_w: int = 1,
) -> Tuple[np.ndarray, int, int]:
    """Cached flat gather index for one im2col geometry.

    Returns ``(index, oh, ow)`` where ``index`` has shape
    ``(oh * ow, c * kh * kw)`` and indexes the flattened ``(c, hp, wp)``
    block of one sample, laid out exactly like the window copy in
    :func:`_im2col2d` (rows ordered ``(oh, ow)``, columns ``(c, kh, kw)``).
    """
    key = (c, hp, wp, kh, kw, stride_h, stride_w, dilation_h, dilation_w)
    cached = _IM2COL_INDEX_CACHE.get(key)
    if cached is not None:
        return cached
    span_h = (kh - 1) * dilation_h + 1
    span_w = (kw - 1) * dilation_w + 1
    oh = (hp - span_h) // stride_h + 1
    ow = (wp - span_w) // stride_w + 1
    ki = np.repeat(np.arange(kh) * dilation_h, kw)
    kj = np.tile(np.arange(kw) * dilation_w, kh)
    # (c, kh*kw) offsets within one sample's flattened (c, hp, wp) block.
    patch = np.arange(c)[:, None] * (hp * wp) + (ki * wp + kj)[None, :]
    oi = np.repeat(np.arange(oh) * stride_h, ow)
    oj = np.tile(np.arange(ow) * stride_w, oh)
    origin = oi * wp + oj  # (oh*ow,)
    index = origin[:, None] + patch.reshape(1, -1)
    if len(_IM2COL_INDEX_CACHE) >= _IM2COL_INDEX_CACHE_MAX:
        _IM2COL_INDEX_CACHE.clear()
    _IM2COL_INDEX_CACHE[key] = (index, oh, ow)
    return index, oh, ow


def _im2col2d(
    xp: np.ndarray, kh: int, kw: int, stride_h: int, stride_w: int
) -> Tuple[np.ndarray, int, int]:
    """Flatten sliding windows of a padded NCHW array into a matrix.

    Returns ``(cols, oh, ow)`` where ``cols`` has shape
    ``(n * oh * ow, c * kh * kw)``.  Gathered with the cached flat index
    of :func:`_im2col_indices` — bit-identical to (and measurably faster
    than) a strided 6-D window copy.
    """
    n, c, hp, wp = xp.shape
    index, oh, ow = _im2col_indices(c, hp, wp, kh, kw, stride_h, stride_w)
    flat = np.ascontiguousarray(xp).reshape(n, c * hp * wp)
    cols = np.take(flat, index, axis=1)
    return cols.reshape(n * oh * ow, c * kh * kw), oh, ow


def _col2im2d(
    dcols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride_h: int,
    stride_w: int,
    pad_h: int,
    pad_w: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Scatter column gradients back to the (unpadded) input gradient."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad_h, w + 2 * pad_w
    dxp = np.zeros((n, c, hp, wp), dtype=dcols.dtype)
    dcols = dcols.reshape(n, oh, ow, c, kh, kw)
    for ki in range(kh):
        for kj in range(kw):
            dxp[
                :,
                :,
                ki : ki + stride_h * oh : stride_h,
                kj : kj + stride_w * ow : stride_w,
            ] += dcols[:, :, :, :, ki, kj].transpose(0, 3, 1, 2)
    if pad_h or pad_w:
        return dxp[:, :, pad_h : hp - pad_h, pad_w : wp - pad_w]
    return dxp


def _im2col2d_chips(
    xp: np.ndarray, kh: int, kw: int, stride_h: int, stride_w: int
) -> Tuple[np.ndarray, int, int]:
    """Instance-batched :func:`_im2col2d` for a padded ``(C, n, c, hp, wp)``
    array.

    Returns ``(cols, oh, ow)`` with ``cols`` of shape
    ``(C, n * oh * ow, c * kh * kw)`` — one column matrix per instance,
    ready for a batched GEMM against per-instance kernels.  Columns are
    collected with ONE vectorized gather over the whole stack using the
    cached index of :func:`_im2col_indices` (campaigns repeat the same
    geometry thousands of times), which is bit-identical to — and, with
    the per-instance Python loop gone, faster than — the strided window
    copy it replaces.
    """
    n_chips, n, c, hp, wp = xp.shape
    index, oh, ow = _im2col_indices(c, hp, wp, kh, kw, stride_h, stride_w)
    flat = np.ascontiguousarray(xp).reshape(n_chips * n, c * hp * wp)
    cols = np.take(flat, index, axis=1)  # (C*n, oh*ow, c*kh*kw)
    return cols.reshape(n_chips, n * oh * ow, c * kh * kw), oh, ow


def _conv2d_chipbatched(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> Tensor:
    """Batched-GEMM convolution of per-chip kernels (inference-only).

    ``weight`` is ``(C, c_out, c_in, kh, kw)`` — one faulty kernel per
    simulated chip.  ``x`` is either a shared ``(n, c_in, h, w)`` input
    (broadcast across chips by the GEMM) or an already chip-batched
    ``(C, n, c_in, h, w)`` activation.  Output: ``(C, n, c_out, oh, ow)``.
    """
    sh, sw = stride
    ph, pw = padding
    n_chips, c_out, c_in, kh, kw = weight.shape
    if x.shape[-3] != c_in:
        raise ValueError(
            f"conv2d channel mismatch: input {x.shape[-3]} vs weight {c_in}"
        )
    if x.ndim == 5 and x.shape[0] != n_chips:
        raise ValueError(
            f"conv2d chip mismatch: input {x.shape[0]} vs weight {n_chips}"
        )
    pad_spec = ((0, 0),) * (x.ndim - 2) + ((ph, ph), (pw, pw))
    n = x.shape[-4]
    chip_batched_input = x.ndim == 5

    def kernel(xv: np.ndarray, wv: np.ndarray, bv=None) -> np.ndarray:
        xp = np.pad(xv, pad_spec) if (ph or pw) else xv
        if not chip_batched_input:
            cols, oh, ow = _im2col2d(xp, kh, kw, sh, sw)  # (n*oh*ow, k)
        else:
            cols, oh, ow = _im2col2d_chips(xp, kh, kw, sh, sw)
        w_mat = wv.reshape(n_chips, c_out, c_in * kh * kw)
        out_mat = cols @ w_mat.transpose(0, 2, 1)  # (C, n*oh*ow, c_out)
        if bv is not None:
            out_mat = out_mat + bv
        return np.moveaxis(out_mat.reshape(n_chips, n, oh, ow, c_out), -1, 2)

    out = kernel(x.data, weight.data, None if bias is None else bias.data)
    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        raise RuntimeError(
            "chip-batched conv2d is inference-only; campaigns never "
            "backpropagate through per-chip faulty kernels"
        )

    return Tensor._make(out, parents, backward, "conv2d_chips", kernel=kernel)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int | Tuple[int, int] = 1,
    padding: int | Tuple[int, int] = 0,
) -> Tensor:
    """2-D cross-correlation over an NCHW tensor.

    Parameters
    ----------
    x: ``(n, c_in, h, w)``, or ``(C, n, c_in, h, w)`` under a chip batch
    weight: ``(c_out, c_in, kh, kw)``, or ``(C, c_out, c_in, kh, kw)``
    bias: ``(c_out,)`` or None
    """
    x, weight = as_tensor(x), as_tensor(weight)
    if weight.ndim == 5:
        return _conv2d_chipbatched(x, weight, bias, _pair(stride), _pair(padding))
    if x.ndim == 5:
        # Shared weight across chips: fold the chip axis into the batch.
        # Composed from differentiable reshapes, so gradients stay exact.
        n_chips, n = x.shape[0], x.shape[1]
        folded = conv2d(
            x.reshape(n_chips * n, *x.shape[2:]),
            weight,
            bias,
            stride=stride,
            padding=padding,
        )
        return folded.reshape(n_chips, n, *folded.shape[1:])
    sh, sw = _pair(stride)
    ph, pw = _pair(padding)
    n, c, h, w = x.shape
    c_out, c_in, kh, kw = weight.shape
    if c_in != c:
        raise ValueError(f"conv2d channel mismatch: input {c} vs weight {c_in}")

    xp = np.pad(x.data, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else x.data
    cols, oh, ow = _im2col2d(xp, kh, kw, sh, sw)
    w_mat = weight.data.reshape(c_out, -1)
    out_mat = cols @ w_mat.T
    if bias is not None:
        out_mat = out_mat + bias.data
    out = out_mat.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    parents = [x, weight] + ([bias] if bias is not None else [])

    def kernel(xv: np.ndarray, wv: np.ndarray, bv=None) -> np.ndarray:
        # Replay kernel: the exact eager computation above, re-run on the
        # current slot arrays (bit-identical numpy call sequence).
        xpk = np.pad(xv, ((0, 0), (0, 0), (ph, ph), (pw, pw))) if (ph or pw) else xv
        colsk, ohk, owk = _im2col2d(xpk, kh, kw, sh, sw)
        out_k = colsk @ wv.reshape(c_out, -1).T
        if bv is not None:
            out_k = out_k + bv
        return out_k.reshape(n, ohk, owk, c_out).transpose(0, 3, 1, 2)

    def backward(grad: np.ndarray) -> None:
        gmat = np.ascontiguousarray(grad.transpose(0, 2, 3, 1)).reshape(-1, c_out)
        if weight.requires_grad:
            weight._accumulate((gmat.T @ cols).reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(gmat.sum(axis=0))
        if x.requires_grad:
            dcols = gmat @ w_mat
            x._accumulate(
                _col2im2d(dcols, x.shape, kh, kw, sh, sw, ph, pw, oh, ow)
            )

    return Tensor._make(out, parents, backward, "conv2d", kernel=kernel)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """1-D cross-correlation over an NCL tensor.

    Implemented by viewing the signal as an NC1L image and reusing
    :func:`conv2d`.  Leading chip axes on ``x`` and/or ``weight`` pass
    straight through.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    x4 = x.reshape(*x.shape[:-1], 1, x.shape[-1])
    w4 = weight.reshape(*weight.shape[:-1], 1, weight.shape[-1])
    out = conv2d(x4, w4, bias=bias, stride=(1, stride), padding=(0, padding))
    return out.reshape(*out.shape[:-2], out.shape[-1])


def conv_transpose2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int | Tuple[int, int] = 1,
) -> Tensor:
    """2-D transposed convolution (fractionally-strided convolution).

    Parameters
    ----------
    x: ``(n, c_in, h, w)``
    weight: ``(c_in, c_out, kh, kw)`` (PyTorch layout)

    Output spatial size is ``(h - 1) * stride + k``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    sh, sw = _pair(stride)
    n, c_in, h, w = x.shape
    wc_in, c_out, kh, kw = weight.shape
    if wc_in != c_in:
        raise ValueError(f"conv_transpose2d channel mismatch: {c_in} vs {wc_in}")
    ho = (h - 1) * sh + kh
    wo = (w - 1) * sw + kw

    # Forward is the col2im scatter of (x projected through the weights).
    x_mat = np.ascontiguousarray(x.data.transpose(0, 2, 3, 1)).reshape(-1, c_in)
    w_mat = weight.data.reshape(c_in, c_out * kh * kw)
    dcols = x_mat @ w_mat  # (n*h*w, c_out*kh*kw)
    out = _col2im2d(dcols, (n, c_out, ho, wo), kh, kw, sh, sw, 0, 0, h, w)
    if bias is not None:
        out = out + bias.data.reshape(1, -1, 1, 1)
    parents = [x, weight] + ([bias] if bias is not None else [])

    def kernel(xv: np.ndarray, wv: np.ndarray, bv=None) -> np.ndarray:
        xm = np.ascontiguousarray(xv.transpose(0, 2, 3, 1)).reshape(-1, c_in)
        dc = xm @ wv.reshape(c_in, c_out * kh * kw)
        res = _col2im2d(dc, (n, c_out, ho, wo), kh, kw, sh, sw, 0, 0, h, w)
        if bv is not None:
            res = res + bv.reshape(1, -1, 1, 1)
        return res

    def backward(grad: np.ndarray) -> None:
        # Backward is the im2col gather (ordinary convolution structure).
        gcols, goh, gow = _im2col2d(grad, kh, kw, sh, sw)
        assert (goh, gow) == (h, w)
        if x.requires_grad:
            gx_mat = gcols @ w_mat.T  # (n*h*w, c_in)
            x._accumulate(gx_mat.reshape(n, h, w, c_in).transpose(0, 3, 1, 2))
        if weight.requires_grad:
            gw = x_mat.T @ gcols  # (c_in, c_out*kh*kw)
            weight._accumulate(gw.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))

    return Tensor._make(
        out, parents, backward, "conv_transpose2d", kernel=kernel
    )


def max_pool2d(
    x: Tensor, kernel_size: int | Tuple[int, int], stride: Optional[int] = None
) -> Tensor:
    """Max pooling over an NCHW tensor (no padding).

    A 5-D ``(C, n, c, h, w)`` chip batch is folded into the batch axis.
    """
    x = as_tensor(x)
    if x.ndim == 5:
        folded = max_pool2d(
            x.reshape(x.shape[0] * x.shape[1], *x.shape[2:]), kernel_size, stride
        )
        return folded.reshape(x.shape[0], x.shape[1], *folded.shape[1:])
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    s0, s1, s2, s3 = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
    )
    flat = windows.reshape(n, c, oh, ow, kh * kw)
    argmax = flat.argmax(axis=-1)
    out = np.take_along_axis(flat, argmax[..., None], axis=-1)[..., 0]

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        for idx in range(kh * kw):
            ki, kj = divmod(idx, kw)
            mask = argmax == idx
            dx[:, :, ki : ki + sh * oh : sh, kj : kj + sw * ow : sw] += grad * mask
        x._accumulate(dx)

    def kernel(xv: np.ndarray) -> np.ndarray:
        t0, t1, t2, t3 = xv.strides
        win = as_strided(
            xv,
            shape=(n, c, oh, ow, kh, kw),
            strides=(t0, t1, t2 * sh, t3 * sw, t2, t3),
        )
        fl = win.reshape(n, c, oh, ow, kh * kw)
        am = fl.argmax(axis=-1)
        return np.take_along_axis(fl, am[..., None], axis=-1)[..., 0].copy()

    return Tensor._make(out.copy(), [x], backward, "max_pool2d", kernel=kernel)


def avg_pool2d(
    x: Tensor, kernel_size: int | Tuple[int, int], stride: Optional[int] = None
) -> Tensor:
    """Average pooling over an NCHW tensor (no padding).

    A 5-D ``(C, n, c, h, w)`` chip batch is folded into the batch axis.
    """
    x = as_tensor(x)
    if x.ndim == 5:
        folded = avg_pool2d(
            x.reshape(x.shape[0] * x.shape[1], *x.shape[2:]), kernel_size, stride
        )
        return folded.reshape(x.shape[0], x.shape[1], *folded.shape[1:])
    kh, kw = _pair(kernel_size)
    sh, sw = _pair(stride if stride is not None else kernel_size)
    n, c, h, w = x.shape
    oh = (h - kh) // sh + 1
    ow = (w - kw) // sw + 1
    s0, s1, s2, s3 = x.data.strides
    windows = as_strided(
        x.data,
        shape=(n, c, oh, ow, kh, kw),
        strides=(s0, s1, s2 * sh, s3 * sw, s2, s3),
    )
    out = windows.mean(axis=(-1, -2))
    scale = 1.0 / (kh * kw)

    def kernel(xv: np.ndarray) -> np.ndarray:
        t0, t1, t2, t3 = xv.strides
        win = as_strided(
            xv,
            shape=(n, c, oh, ow, kh, kw),
            strides=(t0, t1, t2 * sh, t3 * sw, t2, t3),
        )
        return win.mean(axis=(-1, -2))

    def backward(grad: np.ndarray) -> None:
        dx = np.zeros_like(x.data)
        g = grad * scale
        for ki in range(kh):
            for kj in range(kw):
                dx[:, :, ki : ki + sh * oh : sh, kj : kj + sw * ow : sw] += g
        x._accumulate(dx)

    return Tensor._make(out, [x], backward, "avg_pool2d", kernel=kernel)


def max_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling over an NCL tensor (chip batches pass through)."""
    x = as_tensor(x)
    x4 = x.reshape(*x.shape[:-1], 1, x.shape[-1])
    out = max_pool2d(x4, (1, kernel_size), (1, stride if stride else kernel_size))
    return out.reshape(*out.shape[:-2], out.shape[-1])


def avg_pool1d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling over an NCL tensor (chip batches pass through)."""
    x = as_tensor(x)
    x4 = x.reshape(*x.shape[:-1], 1, x.shape[-1])
    out = avg_pool2d(x4, (1, kernel_size), (1, stride if stride else kernel_size))
    return out.reshape(*out.shape[:-2], out.shape[-1])


def upsample_nearest2d(x: Tensor, scale: int = 2) -> Tensor:
    """Nearest-neighbour up-sampling of an NCHW tensor by an integer factor.

    Operates on the trailing two (spatial) axes, so chip-batched 5-D
    activations up-sample transparently.
    """
    x = as_tensor(x)
    data = x.data.repeat(scale, axis=-2).repeat(scale, axis=-1)
    h, w = x.shape[-2], x.shape[-1]

    def backward(grad: np.ndarray) -> None:
        g = grad.reshape(*x.shape[:-2], h, scale, w, scale).sum(axis=(-3, -1))
        x._accumulate(g)

    return Tensor._make(
        data, [x], backward, "upsample_nearest2d",
        kernel=lambda a: a.repeat(scale, axis=-2).repeat(scale, axis=-1),
    )
