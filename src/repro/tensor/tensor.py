"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class — the computational substrate
for the whole library.  It intentionally mirrors a small, explicit subset of
the PyTorch tensor API (``+``, ``@``, ``sum``, ``reshape``, ``backward`` ...)
so that the layer and model code in :mod:`repro.nn` reads like mainstream
deep-learning code.

Implementation notes
--------------------
* Graphs are recorded eagerly: every differentiable operation creates a new
  ``Tensor`` holding a closure (``_backward``) that, given the output
  gradient, accumulates gradients into its parents.
* ``backward`` performs an iterative topological sort (no recursion, so deep
  LSTM graphs do not hit the interpreter recursion limit).
* Broadcasting is supported everywhere numpy broadcasts; gradients of
  broadcast operands are reduced back to the operand shape by
  :func:`unbroadcast`.
* Default dtype is ``float64`` — the models here are small, and double
  precision makes finite-difference gradient checks tight.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from . import plan as _plan
from .grad_mode import is_grad_enabled
from .plan import fusable as _fusable, outable as _outable, viewing as _viewing

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float64


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so that it has ``shape``.

    Inverse of numpy broadcasting: sums over axes that were added or
    stretched when an operand of ``shape`` was broadcast to ``grad.shape``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that broadcasting prepended.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A numpy array with reverse-mode autograd.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Copied only if conversion requires.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    # Make numpy defer to Tensor.__radd__ etc. instead of elementwise-looping.
    __array_priority__ = 100.0

    def __init__(self, data: ArrayLike, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data: np.ndarray = np.asarray(data, dtype=DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
        op: str,
        kernel=None,
        kernel_inputs: Optional[Sequence[np.ndarray]] = None,
    ) -> "Tensor":
        """Create an output tensor, recording history if grad mode is on.

        ``kernel`` is the op's replay kernel for trace-compiled plans (see
        :mod:`repro.tensor.plan`): a pure function of the parents' arrays
        (or of ``kernel_inputs``, when the computation consumes extra
        non-tensor arrays such as dropout masks) that reproduces ``data``
        bit for bit.  ``plan.CONSTANT`` marks the output as frozen for the
        plan key's lifetime; ``None`` poisons any active trace, falling
        back to interpretation.
        """
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data)
        if requires:
            out.requires_grad = True
            out._backward = backward
            out._parents = tuple(parents)
            out._op = op
        else:
            trace = _plan._STATE.trace
            if trace is not None:
                inputs = (
                    kernel_inputs
                    if kernel_inputs is not None
                    else [p.data for p in parents]
                )
                trace.record_op(kernel, inputs, out.data, op)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first use)."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_note})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, no copy)."""
        return self.data

    def tolist(self):
        return self.data.tolist()

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """Return a tensor sharing data but severed from the graph."""
        out = Tensor(self.data)
        return out

    def clone(self) -> "Tensor":
        """Return a differentiable copy."""

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)

        return Tensor._make(
            self.data.copy(), [self], backward, "clone",
            kernel=lambda a: a.copy(),
        )

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of the final objective w.r.t. this tensor.  Defaults to
            ``1.0`` which requires this tensor to be a scalar.
        """
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                raise RuntimeError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
                )

        # Iterative topological order over the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Seed and propagate in reverse topological order.
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
            if node._backward is not None:
                # Interior node: temporarily route parent accumulation
                # through the grads dict via _accumulate monkey-free path.
                node._run_backward(node_grad, grads)

    def _run_backward(self, grad: np.ndarray, grads: dict) -> None:
        """Invoke the backward closure, redirecting parent accumulation."""
        # The closures call parent._accumulate; to keep them simple we let
        # them write directly into parent.grad for leaves, but interior
        # nodes need their gradient staged in `grads`.  We achieve this by
        # having _accumulate write to .grad always, then sweeping interior
        # parents' .grad into the dict.
        assert self._backward is not None
        interior = [p for p in self._parents if p._backward is not None]
        saved = {id(p): p.grad for p in interior}
        for p in interior:
            p.grad = None
            p.requires_grad = True  # ensure accumulation happens
        self._backward(grad)
        for p in interior:
            if p.grad is not None:
                existing = grads.get(id(p))
                grads[id(p)] = p.grad if existing is None else existing + p.grad
            p.grad = saved[id(p)]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other_t._accumulate(unbroadcast(grad, other_t.shape))

        return Tensor._make(
            data, [self, other_t], backward, "add",
            kernel=_fusable(_outable(lambda a, b, out=None: np.add(a, b, out=out))),
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other_t._accumulate(unbroadcast(-grad, other_t.shape))

        return Tensor._make(
            data, [self, other_t], backward, "sub",
            kernel=_fusable(_outable(lambda a, b, out=None: np.subtract(a, b, out=out))),
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad * other_t.data, self.shape))
            other_t._accumulate(unbroadcast(grad * self.data, other_t.shape))

        return Tensor._make(
            data, [self, other_t], backward, "mul",
            kernel=_fusable(_outable(lambda a, b, out=None: np.multiply(a, b, out=out))),
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(unbroadcast(grad / other_t.data, self.shape))
            other_t._accumulate(
                unbroadcast(-grad * self.data / (other_t.data**2), other_t.shape)
            )

        return Tensor._make(
            data, [self, other_t], backward, "div",
            kernel=_fusable(_outable(lambda a, b, out=None: np.true_divide(a, b, out=out))),
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(
            -self.data, [self], backward, "neg",
            kernel=_fusable(_outable(lambda a, out=None: np.negative(a, out=out))),
        )

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(
            data, [self], backward, f"pow{exponent}",
            kernel=_fusable(_outable(lambda a, out=None: np.power(a, exponent, out=out))),
        )

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other_t.data.ndim == 1:
                    self._accumulate(
                        unbroadcast(np.multiply.outer(grad, other_t.data), self.shape)
                        if self.data.ndim > 1
                        else grad * other_t.data
                    )
                else:
                    g = grad @ np.swapaxes(other_t.data, -1, -2)
                    self._accumulate(unbroadcast(g, self.shape))
            if other_t.requires_grad:
                if self.data.ndim == 1:
                    other_t._accumulate(
                        unbroadcast(np.multiply.outer(self.data, grad), other_t.shape)
                    )
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other_t._accumulate(unbroadcast(g, other_t.shape))

        return Tensor._make(
            data, [self, other_t], backward, "matmul",
            kernel=_fusable(_outable(lambda a, b, out=None: np.matmul(a, b, out=out))),
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(
            data, [self], backward, "sum",
            kernel=_fusable(_outable(
                lambda a, out=None: a.sum(axis=axis, keepdims=keepdims, out=out)
            )),
        )

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching normalization-layer usage."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) * (self - mu)
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            d = data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
                d = np.expand_dims(d, axis=axis)
            mask = self.data == d
            # Split gradient between ties, like numpy/pytorch max backward.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * g / counts)

        return Tensor._make(
            data, [self], backward, "max",
            kernel=lambda a: a.max(axis=axis, keepdims=keepdims),
        )

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(
            data, [self], backward, "reshape",
            kernel=_viewing(lambda a: a.reshape(shape)),
        )

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes_t = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes_t = tuple(axes[0])
        else:
            axes_t = tuple(axes)
        data = self.data.transpose(axes_t)
        inverse = tuple(np.argsort(axes_t))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(
            data, [self], backward, "transpose",
            kernel=_viewing(lambda a: a.transpose(axes_t)),
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(np.squeeze(grad, axis=axis))

        return Tensor._make(
            data, [self], backward, "expand_dims",
            kernel=_viewing(lambda a: np.expand_dims(a, axis)),
        )

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = np.squeeze(self.data, axis=axis)
        original = self.shape

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(
            data, [self], backward, "squeeze",
            kernel=_viewing(lambda a: np.squeeze(a, axis=axis)),
        )

    def __getitem__(self, index) -> "Tensor":
        tensor_index = isinstance(index, Tensor)
        if tensor_index:
            index = index.data
        # Array/list (fancy) indices may be data-dependent, which a baked
        # replay kernel cannot see; only static slice/int indices replay.
        parts = index if isinstance(index, tuple) else (index,)
        static_index = not tensor_index and not any(
            isinstance(part, (np.ndarray, list)) for part in parts
        )
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(
            data, [self], backward, "getitem",
            kernel=_viewing(lambda a: a[index]) if static_index else None,
        )

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return plain numpy bool arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy if already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


def zeros(*shape, requires_grad: bool = False) -> Tensor:
    """A zero-filled tensor of the given shape."""
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False) -> Tensor:
    """A one-filled tensor of the given shape."""
    return Tensor(np.ones(shape), requires_grad=requires_grad)


def stack_tensors(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack`` over a sequence of tensors."""
    tensors = list(tensors)
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(
        data, tensors, backward, "stack",
        kernel=lambda *arrs: np.stack(arrs, axis=axis),
    )


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate``."""
    tensors = list(tensors)
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            t._accumulate(grad[tuple(slicer)])

    return Tensor._make(
        data, tensors, backward, "concatenate",
        kernel=lambda *arrs: np.concatenate(arrs, axis=axis),
    )
