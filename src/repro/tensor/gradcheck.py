"""Finite-difference gradient checking for autograd operations.

Used throughout the test suite to verify every op and layer against central
differences.  Double-precision data keeps the achievable tolerance tight
(~1e-6 relative).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[[], Tensor], tensor: Tensor, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn())`` w.r.t. ``tensor``."""
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn().data.sum()
        flat[i] = original - eps
        minus = fn().data.sum()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[[], Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-5,
    rtol: float = 1e-4,
) -> None:
    """Assert analytic gradients of ``sum(fn())`` match finite differences.

    ``fn`` must be re-runnable (it is invoked many times while inputs are
    perturbed in place).  Raises ``AssertionError`` on mismatch.
    """
    for t in inputs:
        t.zero_grad()
        t.requires_grad = True
    out = fn()
    out.sum().backward()
    for idx, t in enumerate(inputs):
        analytic = t.grad if t.grad is not None else np.zeros_like(t.data)
        numeric = numeric_gradient(fn, t, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch for input {idx}: max abs err {worst:.3e}\n"
                f"analytic:\n{analytic}\nnumeric:\n{numeric}"
            )
