"""Global gradient-recording mode.

The autograd engine records an operation graph only while gradient mode is
enabled.  Inference-heavy code (Monte Carlo fault campaigns, Bayesian
sampling) runs inside :func:`no_grad` to avoid building graphs it will never
backpropagate through.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations should record autograd history."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable autograd recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables autograd recording.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2.0
    >>> y.requires_grad
    False
    """
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables autograd inside a ``no_grad`` block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous
