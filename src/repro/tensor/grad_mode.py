"""Gradient-recording mode (thread-local).

The autograd engine records an operation graph only while gradient mode is
enabled.  Inference-heavy code (Monte Carlo fault campaigns, Bayesian
sampling) runs inside :func:`no_grad` to avoid building graphs it will never
backpropagate through.

The flag is **thread-local**: parallel campaign workers toggle ``no_grad``
concurrently, and a process-wide flag would race — two overlapping
``no_grad`` blocks on different threads could restore the stale ``False``
and silently disable autograd for every later training run in the process.
Each thread starts with gradients enabled.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator


class _GradMode(threading.local):
    def __init__(self) -> None:
        self.enabled = True


_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations should record autograd history."""
    return _MODE.enabled


def set_grad_enabled(enabled: bool) -> None:
    """Enable or disable autograd recording on the current thread."""
    _MODE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables autograd recording.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 2.0
    >>> y.requires_grad
    False
    """
    previous = _MODE.enabled
    _MODE.enabled = False
    try:
        yield
    finally:
        _MODE.enabled = previous


@contextlib.contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables autograd inside a ``no_grad`` block."""
    previous = _MODE.enabled
    _MODE.enabled = True
    try:
        yield
    finally:
        _MODE.enabled = previous
