"""Trace-compiled forward plans: capture one forward, replay as flat kernels.

Monte Carlo fault campaigns evaluate the same frozen model many times per
second — every evaluation batch, Monte Carlo sample, and repeated sweep
re-executes an *identical* sequence of numpy kernel calls, yet the
interpreted engine pays full Python dispatch each time: ``nn.Module``
``__call__`` chains, :class:`~repro.tensor.tensor.Tensor` wrapper
construction, autograd-closure allocation, quantization-cache lookups.
This module removes that overhead with trace-once / replay-many execution:

* **Tracing** — :func:`call_planned` (installed at the root of every
  ``Module.__call__`` while :func:`plan_execution` routing is active) runs
  the first gradient-free forward through the normal interpreted path with
  an active :class:`_Trace`.  Every tensor operation records a *kernel
  step* — ``(replay kernel, input slots, output slot)`` — via
  ``Tensor._make(..., kernel=...)``; every stochastic site (dropout masks,
  affine-dropout coin flips, activation-fault hooks) records a *source
  step* whose thunk re-runs the live drawing code on each replay, so RNG
  draws and fault-hook outputs are per-replay **inputs** and the seed-
  stream contract of the campaign engine is untouched.
* **Optimization** — before first replay the traced step list runs once
  through the IR passes of :mod:`repro.tensor.plan_passes` (constant
  folding, dead-step elimination, kernel fusion; source steps are
  barriers), shrinking the steady-state step count while staying
  bit-identical.  ``plan_execution(optimize=False)`` (CLI
  ``--no-plan-opt``, env ``REPRO_PLAN_OPT=0``) replays the raw trace.
* **Replay** — subsequent forwards with the same :func:`plan_key` skip the
  module tree and the ``Tensor`` graph entirely and execute the flat step
  list over a preallocated slot table.  Kernels whose numpy primitive
  supports ``out=`` write into per-plan buffers reused across replays.
* **Keying / invalidation** — plans are cached per root module, keyed by
  input shape, the active instance-axis layout
  (:func:`~repro.tensor.chipbatch.instance_layout`), every parameter's
  ``(uid, version)`` counter (so optimizer steps and ``load_state_dict``
  force a re-trace) and the ``plan_signature()`` of every attached fault
  hook (a stateful serial hook signs with its unique ``fault_token``, so a
  newly attached hook forces a re-trace; seed-frozen batched hooks sign
  with their spec + seeds, so an *identical* re-attach replays).
* **Fallback** — anything the tracer cannot prove replayable poisons the
  trace and the key falls back to the interpreted path transparently:
  gradient-recording or train-mode forwards, multi-argument calls, ops
  without a replay kernel, ad-hoc hooks without a ``plan_signature``,
  data-dependent ``where``/tensor indices, frozen masks drawn before the
  trace began.  ``plan_execution(False)`` (CLI ``--no-plan``) disables
  routing outright.

Replayed results are bit-identical to the interpreted path: source steps
run the very code the interpreter would run, and kernel steps run the
same numpy calls in the same order on the same dtypes.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import weakref
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from . import plan_passes
from .chipbatch import instance_layout
from .grad_mode import is_grad_enabled

__all__ = [
    "CONSTANT",
    "PlanCache",
    "call_planned",
    "clear_plans",
    "ensure_known",
    "fusable",
    "outable",
    "plan_execution",
    "plan_key",
    "plan_routing_active",
    "plan_stats",
    "profiled",
    "stage",
    "traced_hook",
    "traced_source",
]

#: Sentinel kernel: the op's output is constant for the lifetime of the
#: plan key (deployment-frozen quantized weights — the key covers the
#: parameter versions and fault-hook signatures that determine the value),
#: so the tracer captures it by reference and records no step.
CONSTANT = object()

#: Sentinel cache entry: this key was traced and found un-replayable.
_POISON = object()

#: Plans kept per root module (LRU).  Keys rotate with fault tokens and
#: parameter versions, so the cache is bounded to keep replay buffers from
#: accumulating across long serial campaigns.
MAX_PLANS_PER_MODULE = 8

#: Process-wide default for the optimizer pipeline (see
#: :mod:`repro.tensor.plan_passes`).  CI's second batched-identity run
#: sets ``REPRO_PLAN_OPT=0`` to exercise every plan unoptimized.
_OPTIMIZE_DEFAULT = os.environ.get("REPRO_PLAN_OPT", "1") != "0"


class _PlanState(threading.local):
    def __init__(self) -> None:
        self.routing = False
        self.trace: Optional[_Trace] = None
        self.replaying = False
        self.profile: Optional[Dict[str, float]] = None
        self.optimize = _OPTIMIZE_DEFAULT


_STATE = _PlanState()


def outable(fn: Callable) -> Callable:
    """Mark a replay kernel as accepting an ``out=`` buffer.

    The plan assigns marked steps preallocated buffers from a liveness-
    pooled set (see :class:`Plan`) and passes them on every replay, so
    intermediate results reuse memory instead of allocating per pass.
    """
    fn.supports_out = True
    return fn


def viewing(fn: Callable) -> Callable:
    """Mark a replay kernel as possibly returning a *view* of its input.

    Structural kernels (reshape, transpose, basic indexing) alias their
    input's memory; the buffer pool must keep the underlying buffer alive
    until every aliasing slot is dead, so these steps propagate liveness
    to their input's alias group instead of ending it.
    """
    fn.may_alias = True
    return fn


def fusable(fn: Callable) -> Callable:
    """Mark an ``out=``-aware replay kernel as safe to fuse.

    Fusable kernels are pure ufunc-style array computations (elementwise
    chains, matmul/bias preactivations): the optimizer's fusion pass
    (:mod:`repro.tensor.plan_passes`) may sink a single-consumer fusable
    step into its fusable consumer, merging whole chains into one
    composite kernel call per replay.
    """
    fn.fusable = True
    return fn


# ----------------------------------------------------------------------
# Routing state
# ----------------------------------------------------------------------
@contextlib.contextmanager
def plan_execution(
    enabled: bool = True, optimize: Optional[bool] = None
) -> Iterator[bool]:
    """Route gradient-free root ``Module`` calls through plans.

    Entered by the campaign engine around cell evaluation; ``enabled=False``
    (the ``--no-plan`` switch) forces the interpreted path.  ``optimize``
    toggles the trace-time optimizer passes
    (:mod:`repro.tensor.plan_passes`) for plans traced inside the block:
    ``None`` (default) inherits the ambient setting — process default on,
    overridable with ``REPRO_PLAN_OPT=0`` — while ``False`` (the
    ``--no-plan-opt`` switch) replays the raw traced step list.  Nestable
    and exception-safe; thread-local like the rest of the evaluation
    state.
    """
    previous = _STATE.routing
    previous_optimize = _STATE.optimize
    _STATE.routing = bool(enabled)
    if optimize is not None:
        _STATE.optimize = bool(optimize)
    try:
        yield bool(enabled)
    finally:
        _STATE.routing = previous
        _STATE.optimize = previous_optimize


def plan_routing_active() -> bool:
    """True when a root module call should consult the plan cache."""
    return _STATE.routing and _STATE.trace is None and not _STATE.replaying


def active_trace() -> Optional["_Trace"]:
    """The trace recording this thread's forward, or ``None``."""
    return _STATE.trace


# ----------------------------------------------------------------------
# Profiling hooks (the CLI's --profile breakdown)
# ----------------------------------------------------------------------
@contextlib.contextmanager
def profiled() -> Iterator[Dict[str, float]]:
    """Collect per-stage wall time (attach / program / trace / replay / metric).

    Yields the accumulating ``{stage: seconds}`` dict; :func:`stage`
    blocks anywhere below (the executor's attach and evaluator calls, the
    tracer, the replayer) add to it.  Rendering lives in
    :func:`repro.eval.reporting.format_profile`.
    """
    previous = _STATE.profile
    stages: Dict[str, float] = {}
    _STATE.profile = stages
    try:
        yield stages
    finally:
        _STATE.profile = previous


@contextlib.contextmanager
def stage(label: str) -> Iterator[None]:
    """Accumulate this block's wall time under ``label`` when profiling.

    No-op (and allocation-free) unless a :func:`profiled` block is active
    on this thread.  Nested stages each record their full span; the
    reporting layer subtracts nested trace/replay time from the enclosing
    metric stage.
    """
    stages = _STATE.profile
    if stages is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        stages[label] = stages.get(label, 0.0) + time.perf_counter() - start


# ----------------------------------------------------------------------
# Trace recording
# ----------------------------------------------------------------------
class _Trace:
    """Recorder for one forward: slot table + flat step list.

    Slots are arrays indexed by position.  Slot 0 is the entry input
    (rebound per replay); arrays first seen as *inputs* of a step are
    captured as constants (weights, buffers, baked scalars — valid because
    :func:`plan_key` covers everything that can change them); arrays
    produced by a step are variables recomputed on every replay.
    """

    def __init__(self, entry: np.ndarray):
        self.slot_of: Dict[int, int] = {id(entry): 0}
        self.arrays = [entry]  # keepalive: id() stays unique while traced
        self.constant = [False]
        self.entry = 0
        # steps: ("k", kernel, in_ids, out_id) or
        #        ("s", thunk, in_ids, out_ids, multi)
        self.steps: list = []
        self.failed: Optional[str] = None

    def fail(self, reason: str) -> None:
        """Poison the trace; the key will fall back to interpretation."""
        if self.failed is None:
            self.failed = reason

    def knows(self, value) -> bool:
        """True when every array in ``value`` is already slot-registered."""
        parts = value if isinstance(value, tuple) else (value,)
        return all(
            id(part) in self.slot_of
            for part in parts
            if isinstance(part, np.ndarray)
        )

    def _slot(self, arr: np.ndarray, constant: bool) -> int:
        sid = self.slot_of.get(id(arr))
        if sid is None:
            sid = len(self.arrays)
            self.slot_of[id(arr)] = sid
            self.arrays.append(arr)
            self.constant.append(constant)
        return sid

    def record_op(
        self,
        kernel,
        inputs: Sequence[np.ndarray],
        out: np.ndarray,
        op: str,
    ) -> None:
        """Record one tensor operation (called from ``Tensor._make``)."""
        if self.failed is not None:
            return
        if kernel is None:
            self.fail(f"op {op!r} has no replay kernel")
            return
        if kernel is CONSTANT:
            self._slot(out, True)
            return
        in_ids = tuple(self._slot(arr, True) for arr in inputs)
        if id(out) in self.slot_of:
            self.fail(f"op {op!r} returned an aliased array")
            return
        out_id = self._slot(out, False)
        self.steps.append(("k", kernel, in_ids, out_id))

    def record_source(
        self,
        thunk: Callable,
        value,
        in_arrays: Sequence[np.ndarray] = (),
    ) -> None:
        """Record a stochastic/hook source whose thunk re-runs per replay."""
        if self.failed is not None:
            return
        in_ids = tuple(self._slot(arr, True) for arr in in_arrays)
        multi = isinstance(value, tuple)
        outs = value if multi else (value,)
        for arr in outs:
            if not isinstance(arr, np.ndarray):
                self.fail("source produced a non-array value")
                return
            if id(arr) in self.slot_of:
                self.fail("source returned an already-registered array")
                return
        out_ids = tuple(self._slot(arr, False) for arr in outs)
        self.steps.append(("s", thunk, in_ids, out_ids, multi))


def traced_source(fn: Callable[[], Any]):
    """Run a zero-argument sampling thunk, recording it when tracing.

    ``fn`` draws from the active scoped generator (dropout masks, affine
    coin flips, Gaussian noise); on replay the recorded thunk re-runs
    against whatever generator the engine has scoped, reproducing the
    interpreted draw order exactly.  Returns ``fn()``'s value (an array or
    a tuple of arrays) unchanged.
    """
    value = fn()
    trace = _STATE.trace
    if trace is not None:
        trace.record_source(fn, value)
    return value


def traced_hook(obj, attr: str, arr: np.ndarray) -> np.ndarray:
    """Invoke the live hook ``getattr(obj, attr)`` on ``arr``, traced.

    The recorded thunk re-fetches the hook from its *site* at replay time,
    so a re-attached hook of the same structural signature (same plan key)
    is the one that runs — its internal RNG state advances exactly as in
    the interpreted path.
    """
    out = getattr(obj, attr)(arr)
    trace = _STATE.trace
    if trace is not None:

        def thunk(values: np.ndarray) -> np.ndarray:
            return getattr(obj, attr)(values)

        trace.record_source(thunk, out, in_arrays=(arr,))
    return out


def ensure_known(value) -> None:
    """Poison the active trace unless ``value``'s arrays are slot-known.

    Guards cached state that predates the trace (e.g. a frozen dropout
    mask drawn by an earlier interpreted forward): baking it as a constant
    would freeze randomness the interpreted path re-samples, so the trace
    falls back instead.
    """
    trace = _STATE.trace
    if trace is not None and not trace.knows(value):
        trace.fail("cached stochastic state predates the trace")


# ----------------------------------------------------------------------
# Compiled plans
# ----------------------------------------------------------------------
class Plan:
    """A finalized trace: constant-bound slot table + compiled step list.

    Optimization
    ------------
    With ``optimize`` (the default; CLI ``--no-plan-opt`` disables) the
    traced step list first runs through the IR passes of
    :mod:`repro.tensor.plan_passes` — constant folding, dead-step
    elimination, kernel fusion — and ``opt_stats`` records the per-pass
    counters (steps folded/fused/eliminated, steps before/after) that the
    ``--profile`` breakdown aggregates.

    Buffer reuse
    ------------
    ``out=``-capable steps (:func:`outable` kernels) draw their output
    buffers from a pool assigned by a linear register-allocation scan over
    slot liveness: a buffer returns to the pool once its slot — and every
    slot that may *alias* it through view-producing steps
    (:func:`viewing` kernels) — has been read for the last time, and later
    steps of the same shape/dtype reuse it.  The replay working set
    therefore stays at the interpreted path's peak-live size (cache-hot)
    instead of one buffer per step, while still allocating nothing per
    replay.
    """

    __slots__ = (
        "_slots", "_steps", "_tail", "_entry", "_output", "n_buffers",
        "opt_stats", "_prefix_len", "_prefix_entry", "prefix_hits",
        "prefix_misses",
    )

    def __init__(self, trace: _Trace, output_id: int, optimize: bool = True):
        if optimize:
            steps, self.opt_stats = plan_passes.optimize_trace(
                trace, output_id
            )
        else:
            steps = trace.steps
            self.opt_stats = plan_passes.null_stats(len(steps))
        n = len(trace.arrays)
        self._slots: list = [None] * n
        for sid in range(n):
            if trace.constant[sid]:
                self._slots[sid] = trace.arrays[sid]
        self._entry = trace.entry
        self._output = output_id
        self._prefix_len = self.opt_stats["prefixed"]
        self._prefix_entry: Optional[np.ndarray] = None
        self.prefix_hits = 0
        self.prefix_misses = 0
        self._steps = self._compile(trace, steps, output_id)
        self._tail = self._steps[self._prefix_len:]

    def _compile(self, trace: _Trace, trace_steps: list, output_id: int) -> list:
        n = len(trace.arrays)
        n_steps = len(trace_steps)
        # Last step index reading each slot (the output lives forever).
        last_use = [-1] * n
        for idx, step in enumerate(trace_steps):
            for sid in step[2]:
                last_use[sid] = idx
        last_use[output_id] = n_steps
        # Alias groups: a viewing step's output shares its input's memory.
        parent = list(range(n))

        def find(sid: int) -> int:
            while parent[sid] != sid:
                parent[sid] = parent[parent[sid]]
                sid = parent[sid]
            return sid

        for step in trace_steps:
            if step[0] == "k" and getattr(step[1], "may_alias", False):
                if step[2]:
                    parent[find(step[3])] = find(step[2][0])
        group_last: Dict[int, int] = {}
        for sid in range(n):
            group = find(sid)
            group_last[group] = max(group_last.get(group, -1), last_use[sid])
        # Linear scan: acquire each outable step's buffer before releasing
        # anything at that step, so a buffer never aliases a live input.
        free: Dict[Tuple, list] = {}
        release_at: Dict[int, list] = {}
        steps = []
        self.n_buffers = 0
        for idx, step in enumerate(trace_steps):
            if step[0] == "k":
                _, kernel, in_ids, out_id = step
                buf = None
                if getattr(kernel, "supports_out", False):
                    arr = trace.arrays[out_id]
                    key = (arr.shape, arr.dtype)
                    stack = free.get(key)
                    if stack:
                        buf = stack.pop()
                    else:
                        buf = np.empty_like(arr)
                        self.n_buffers += 1
                    end = group_last[find(out_id)]
                    # A foldable-prefix output read by the tail must keep
                    # its values across replays (a prefix hit skips the
                    # steps that would refill it), so its buffer is pinned:
                    # only slots dying inside the prefix recycle there.
                    limit = n_steps if idx >= self._prefix_len else self._prefix_len
                    if end < limit:
                        release_at.setdefault(end, []).append((key, buf))
                steps.append(("k", kernel, in_ids, out_id, buf))
            else:
                _, thunk, in_ids, out_ids, multi = step
                steps.append(("s", thunk, in_ids, out_ids, multi))
            for key, buf in release_at.pop(idx, ()):
                free.setdefault(key, []).append(buf)
        return steps

    def replay(self, entry: np.ndarray) -> np.ndarray:
        """Execute the flat step list for a fresh input; returns a copy.

        The returned array is copied out of the plan's reusable buffers so
        callers may hold it across later replays.  The loop special-cases
        the dominant one- and two-input kernel arities to avoid per-step
        argument-tuple construction.

        When the optimizer marked a source-free prefix and this entry's
        *content* equals the last fully-replayed one (Monte Carlo
        campaigns re-forward the same evaluation batch for every chip and
        run), the prefix is skipped outright: its outputs persist in
        pinned slots/buffers from the previous replay, so only the tail —
        everything at or after the first RNG draw — executes.  The guard
        compares values, never object identity, so a changed (or NaN)
        entry always takes the full path; results are bit-identical
        either way.
        """
        slots = self._slots
        slots[self._entry] = entry
        steps = self._steps
        if self._prefix_len:
            cached = self._prefix_entry
            if (
                cached is not None
                and cached.shape == entry.shape
                and cached.dtype == entry.dtype
                and np.array_equal(cached, entry)
            ):
                self.prefix_hits += 1
                steps = self._tail
            else:
                self.prefix_misses += 1
                self._prefix_entry = entry.copy()
        for step in steps:
            if step[0] == "k":
                _, kernel, in_ids, out_id, buf = step
                arity = len(in_ids)
                if buf is None:
                    if arity == 1:
                        slots[out_id] = kernel(slots[in_ids[0]])
                    elif arity == 2:
                        slots[out_id] = kernel(slots[in_ids[0]], slots[in_ids[1]])
                    else:
                        slots[out_id] = kernel(*[slots[i] for i in in_ids])
                elif arity == 2:
                    slots[out_id] = kernel(
                        slots[in_ids[0]], slots[in_ids[1]], out=buf
                    )
                elif arity == 1:
                    slots[out_id] = kernel(slots[in_ids[0]], out=buf)
                else:
                    slots[out_id] = kernel(*[slots[i] for i in in_ids], out=buf)
            else:
                _, thunk, in_ids, out_ids, multi = step
                value = thunk(*[slots[i] for i in in_ids])
                if multi:
                    for out_id, arr in zip(out_ids, value):
                        slots[out_id] = arr
                else:
                    slots[out_ids[0]] = value
        return slots[self._output].copy()


class PlanCache:
    """Per-root-module plan store with trace/replay/fallback counters.

    ``opt_counters`` accumulates the optimizer's per-pass totals (steps
    deduped/folded/fused/eliminated/densified) over every plan traced for the
    module, so identity tests can assert the passes actually fired.
    """

    def __init__(self, max_plans: int = MAX_PLANS_PER_MODULE):
        self.plans: "OrderedDict[tuple, Any]" = OrderedDict()
        self.max_plans = max_plans
        self.traces = 0
        self.replays = 0
        self.fallbacks = 0
        self.opt_counters: Dict[str, int] = {
            "deduped": 0, "folded": 0, "fused": 0,
            "eliminated": 0, "densified": 0, "prefixed": 0,
        }

    def store(self, key: tuple, entry) -> None:
        self.plans[key] = entry
        while len(self.plans) > self.max_plans:
            self.plans.popitem(last=False)


_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def plan_stats(module) -> PlanCache:
    """The module's plan cache (counters + stored plans), created lazily."""
    cache = _CACHES.get(module)
    if cache is None:
        cache = PlanCache()
        _CACHES[module] = cache
    return cache


def clear_plans(module=None) -> None:
    """Drop cached plans for ``module`` (or every module when ``None``)."""
    if module is not None:
        _CACHES.pop(module, None)
    else:
        _CACHES.clear()


# ----------------------------------------------------------------------
# Keying
# ----------------------------------------------------------------------
def plan_key(module, x) -> Optional[tuple]:
    """Cache key for one root forward, or ``None`` when unplannable.

    Covers everything that may change the traced kernel sequence or the
    values captured as plan constants:

    * the input shape, dtype, and the active instance-axis layout;
    * each submodule's sampling state (``stochastic_inference``,
      ``mask_scope``) — they decide which source steps exist;
    * each attached fault hook's ``plan_signature()`` — stateful serial
      hooks sign with their unique ``fault_token`` (new hook ⇒ new key ⇒
      re-trace), seed-frozen batched hooks with spec + seeds (identical
      re-attach ⇒ replay);
    * every parameter's ``(uid, version)`` counter — optimizer steps and
      ``load_state_dict`` bump versions, invalidating captured weights and
      quantized codes.

    An attached hook without a ``plan_signature`` (ad-hoc callable) makes
    the forward unplannable — the interpreted path keeps its legacy
    applied-every-forward semantics.

    The ambient optimizer toggle is part of the key: flipping
    ``--no-plan-opt`` (or ``REPRO_PLAN_OPT``) re-traces rather than
    serving a plan compiled under the other setting.
    """
    parts: list = [
        x.data.shape, x.data.dtype.str, instance_layout(), _STATE.optimize
    ]
    for m in module.modules():
        for attr in ("weight_fault", "weight_fault_hh", "pre_fault"):
            hook = getattr(m, attr, None)
            if hook is None:
                continue
            signature = getattr(hook, "plan_signature", None)
            if signature is None:
                return None
            parts.append((attr, signature()))
        sampling = getattr(m, "stochastic_inference", None)
        if sampling is not None:
            parts.append((bool(sampling), getattr(m, "mask_scope", None)))
        for param in m._parameters.values():
            if param is not None:
                parts.append(param.version_key)
    return tuple(parts)


# ----------------------------------------------------------------------
# Root-call dispatch
# ----------------------------------------------------------------------
def call_planned(module, args: tuple, kwargs: dict):
    """Route one root ``Module`` call through the plan cache.

    Falls through to the interpreted ``module.forward`` whenever the call
    is not a single-tensor gradient-free eval-mode forward, the model is
    unkeyable, or the key was previously poisoned.  Otherwise replays the
    cached plan, or traces the interpreted forward to build one.
    """
    if (
        kwargs
        or len(args) != 1
        or is_grad_enabled()
        or getattr(module, "training", False)
    ):
        return module.forward(*args, **kwargs)
    x = args[0]
    if not isinstance(getattr(x, "data", None), np.ndarray):
        return module.forward(x)
    key = plan_key(module, x)
    if key is None:
        return module.forward(x)
    cache = plan_stats(module)
    entry = cache.plans.get(key)
    if entry is _POISON:
        cache.fallbacks += 1
        return module.forward(x)
    if entry is not None:
        cache.plans.move_to_end(key)
        cache.replays += 1
        _STATE.replaying = True
        try:
            with stage("replay"):
                out_data = entry.replay(x.data)
        finally:
            _STATE.replaying = False
        from .tensor import Tensor  # local import: plan is below tensor

        return Tensor(out_data)
    # Trace: run the interpreted forward once with the recorder active.
    trace = _Trace(x.data)
    _STATE.trace = trace
    try:
        with stage("trace"):
            out = module.forward(x)
    finally:
        _STATE.trace = None
    out_data = getattr(out, "data", None)
    output_id = (
        trace.slot_of.get(id(out_data))
        if isinstance(out_data, np.ndarray)
        else None
    )
    if trace.failed is not None or output_id is None:
        cache.store(key, _POISON)
        cache.fallbacks += 1
        return out
    plan = Plan(trace, output_id, optimize=_STATE.optimize)
    cache.store(key, plan)
    cache.traces += 1
    for name in ("deduped", "folded", "fused", "eliminated", "densified",
                 "prefixed"):
        cache.opt_counters[name] += plan.opt_stats[name]
    stages = _STATE.profile
    if stages is not None and _STATE.optimize:
        for name, count in plan.opt_stats.items():
            label = "opt." + name
            stages[label] = stages.get(label, 0.0) + count
    return out
