"""Plan-IR optimization passes: dedupe, fold, eliminate, densify, fuse.

A finalized trace (:class:`repro.tensor.plan._Trace`) is a flat compiler
IR: a slot table (constants + recomputed variables) and a step list of
kernel steps ``("k", kernel, in_ids, out_id)`` and source steps
``("s", thunk, in_ids, out_ids, multi)``.  :func:`optimize_trace` runs
five rewriting passes over that IR once, at trace time, before the plan
compiles its buffer pool — replay then executes the shorter list forever
after — plus a final analysis (:func:`prefix_length`) that marks the
source-free prefix replay may skip for content-identical entries.

Pass order (each pass feeds the next):

1. **Common-subexpression elimination** — two kernel steps compute the
   same value when they run the same function (same code object, equal
   closure/default values — floats compared by bit pattern) over the
   same input slots.  Slots are written exactly once (the tracer rejects
   aliased outputs), so the later step is dropped and its readers remap
   to the first occurrence.  The repeated per-timestep arithmetic the
   interpreter re-derives from the same frozen operands — quantization
   rescales, broadcast helpers, reduction denominators — collapses to
   one computation each.  Source steps are never deduplicated (each
   draw is fresh by definition) and their relative order never changes.
2. **Constant folding** — a kernel step whose inputs are all plan
   constants (deployment-frozen quantized/faulty weights, baked shape
   arrays) computes the same value on every replay.  The traced forward
   already computed that value, so the pass marks the output slot
   constant and drops the step — no re-execution, maximally
   bit-identical.  Typical wins: transposes/reshapes of frozen weights
   and arithmetic on frozen normalization statistics.
3. **Dead-step elimination** — backward liveness from the plan output:
   kernel steps whose outputs are never consumed by the output, a later
   kernel step, or a source step are dropped (metrics only read a subset
   of heads).  Source steps are **never** eliminated: removing one would
   shift the RNG draw order of every later source, breaking the
   seed-stream contract.
4. **View densification** — a viewing step (gate slice, window split)
   whose output is a *gap-strided* view consumed by compute kernels is
   rewritten to materialize into a pooled contiguous buffer.  Strided
   reads cost multi-pass kernels (the logistic reads its input three
   times) and elementwise ufuncs 2–4× on this layout; one contiguous
   copy up front is cheaper than every consumer paying the stride
   penalty.  Values are untouched — only the memory layout changes —
   and permuted-stride views (transposes) are left alone, since their
   copy would stay non-contiguous and win nothing.
5. **Kernel fusion** — a producer kernel step *sinks into* its consumer
   when both kernels are ``out=``-aware and marked fusable
   (:func:`repro.tensor.plan.fusable` — ufunc-style elementwise chains,
   matmul/bias preactivations), the producer's output has exactly one
   consuming step, and no source step lies between them.  Sunk chains
   become one :class:`FusedKernel` step at the consumer's position with
   sub-steps in original relative order, writing intermediates into
   per-plan temporaries and the final result into the same
   liveness-pooled ``out=`` buffer a lone step would use.  The LSTM gate
   arithmetic — sigmoid/tanh/mul/add runs per timestep — collapses from
   ~18 steps to a handful of fused composites.

Barrier rules: source steps are barriers.  They are never folded (their
value changes per replay), never eliminated (RNG draw order), and never
reordered across — fusion windows end at every source step, so a sunk
producer can never move past an RNG draw or live fault hook.

Every pass preserves bit-identity: folding serves the exact array the
traced forward produced, elimination only removes computations whose
results nobody reads, and fusion re-runs the same kernels in the same
relative order on the same dtypes (``out=`` targets differ, values do
not).  What poisons a pass is inherited from the tracer itself — an op
without a replay kernel or an unsigned hook poisons the whole trace
before any pass runs, so the passes only ever see replayable steps.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = ["FusedKernel", "optimize_trace", "null_stats", "prefix_length"]


def null_stats(n_steps: int) -> Dict[str, int]:
    """Zeroed per-pass counters for an unoptimized plan of ``n_steps``."""
    return {
        "deduped": 0,
        "folded": 0,
        "fused": 0,
        "eliminated": 0,
        "densified": 0,
        "prefixed": 0,
        "steps_before": n_steps,
        "steps_after": n_steps,
    }


# ----------------------------------------------------------------------
# Pass 1: common-subexpression elimination
# ----------------------------------------------------------------------
def _cse_key(kernel, in_ids: tuple):
    """Value-identity key for a kernel step, or ``None`` if unkeyable.

    Two steps share a key only when they run the same code object with
    equal closure-cell and default values over the same input slots —
    the same pure function of the same operands, so (slots being
    write-once) the same bits.  Floats key by ``hex()`` so ``-0.0`` and
    ``0.0`` — which steer ufunc sign behavior — never unify, and ``1``
    vs ``1.0`` — which steer dtype promotion — are kept apart by type.
    Anything but primitives (bound arrays, nested wrapped kernels) keys
    by object identity, the conservative direction: a missed duplicate
    just replays, a false merge never happens.
    """
    code = getattr(kernel, "__code__", None)
    if code is None:
        return None
    parts = []
    for value in (
        tuple(cell.cell_contents for cell in kernel.__closure__ or ())
        + (kernel.__defaults__ or ())
    ):
        kind = type(value)
        if kind is float:
            parts.append(("f", value.hex()))
        elif kind in (int, bool, str, bytes, type(None)):
            parts.append(("v", kind.__name__, value))
        else:
            parts.append(("o", id(value)))
    return (code, tuple(parts), in_ids)


def _dedupe_steps(steps: list, trace, output_id: int) -> Tuple[list, int]:
    """Drop kernel steps that recompute an earlier step's exact value.

    Later readers (kernel inputs, source thunk inputs) remap to the
    first occurrence's output slot.  Nothing is reordered: the survivor
    already ran before every reader of the duplicate, and source draw
    order is untouched.  The step producing the plan output is never
    dropped, so the caller's output slot stays valid.
    """
    seen: Dict[tuple, int] = {}
    remap: Dict[int, int] = {}
    out_steps = []
    deduped = 0
    for step in steps:
        if step[0] == "s":
            in_ids = tuple(remap.get(sid, sid) for sid in step[2])
            out_steps.append(("s", step[1], in_ids, step[3], step[4]))
            continue
        _, kernel, in_ids, out_id = step
        in_ids = tuple(remap.get(sid, sid) for sid in in_ids)
        key = _cse_key(kernel, in_ids)
        if key is not None:
            prior = seen.get(key)
            if prior is not None and out_id != output_id:
                remap[out_id] = prior
                deduped += 1
                continue
            seen.setdefault(key, out_id)
        out_steps.append(("k", kernel, in_ids, out_id))
    return out_steps, deduped


# ----------------------------------------------------------------------
# Pass 2: constant folding
# ----------------------------------------------------------------------
def _fold_constants(steps: list, trace) -> Tuple[list, int]:
    """Drop kernel steps whose inputs are all constant slots.

    The traced forward already produced ``trace.arrays[out_id]`` from the
    very same constant inputs, so the folded value needs no re-execution:
    the output slot is simply marked constant (the plan binds it by
    reference, like any other constant).  Source steps never fold — their
    outputs are fresh draws per replay by definition.
    """
    folded = 0
    kept = []
    for step in steps:
        if step[0] == "k" and all(trace.constant[sid] for sid in step[2]):
            trace.constant[step[3]] = True
            folded += 1
            continue
        kept.append(step)
    return kept, folded


# ----------------------------------------------------------------------
# Pass 3: dead-step elimination
# ----------------------------------------------------------------------
def _eliminate_dead(steps: list, output_id: int) -> Tuple[list, int]:
    """Drop kernel steps whose outputs are never consumed.

    Liveness flows backward from the plan output.  Source steps are
    unconditionally live (removing one would shift every later RNG draw)
    and root their inputs; a kernel step survives only if its output slot
    is read by the output or a surviving later step.
    """
    live = {output_id}
    kept_reversed = []
    eliminated = 0
    for step in reversed(steps):
        if step[0] == "k" and step[3] not in live:
            eliminated += 1
            continue
        live.update(step[2])
        kept_reversed.append(step)
    kept_reversed.reverse()
    return kept_reversed, eliminated


# ----------------------------------------------------------------------
# Pass 4: view densification
# ----------------------------------------------------------------------
#: Views smaller than this are not worth a materializing copy.
_DENSIFY_MIN_BYTES = 4096


def _densified(view_kernel):
    """Wrap a viewing kernel to materialize its result contiguously."""

    def kernel(*args, out=None):
        view = view_kernel(*args)
        if out is None:
            return view.copy()
        np.copyto(out, view)
        return out

    kernel.supports_out = True
    kernel.fusable = True
    return kernel


def _densify_views(steps: list, trace) -> Tuple[list, int]:
    """Materialize gap-strided view outputs that feed compute kernels.

    A viewing step's output aliases its input; when the traced view is
    non-contiguous (an LSTM gate slice of a wide preactivation, say),
    every consuming kernel pays a strided-read penalty on every replay —
    multi-pass kernels pay it several times.  Rewriting the step to copy
    the view into a liveness-pooled contiguous buffer makes one strided
    pass replace many.  Skipped when the view is already contiguous,
    too small to matter, consumed by nothing but other views, or a pure
    stride permutation (its dense copy would stay non-C-contiguous and
    pollute the shape-keyed buffer pool).  Values are bit-identical:
    consumers read the same numbers from better-laid-out memory.
    """
    consumed_by_compute = set()
    for step in steps:
        if step[0] == "s" or not getattr(step[1], "may_alias", False):
            consumed_by_compute.update(step[2])
    densified = 0
    out_steps = []
    for step in steps:
        if (
            step[0] == "k"
            and getattr(step[1], "may_alias", False)
            and step[3] in consumed_by_compute
        ):
            arr = trace.arrays[step[3]]
            if (
                not arr.flags["C_CONTIGUOUS"]
                and arr.nbytes >= _DENSIFY_MIN_BYTES
                and np.empty_like(arr).flags["C_CONTIGUOUS"]
            ):
                out_steps.append(("k", _densified(step[1]), step[2], step[3]))
                densified += 1
                continue
        out_steps.append(step)
    return out_steps, densified


# ----------------------------------------------------------------------
# Pass 5: kernel fusion
# ----------------------------------------------------------------------
def _specialize(sub: List[tuple]):
    """Compile a sub-step list into one flat function, built once per chain.

    The generated function unrolls the chain — one direct kernel call per
    line, kernels and temporaries bound as globals, external inputs read
    straight out of the ``args`` tuple — so replay pays no per-sub-step
    loop, tuple unpacking, or argument-list construction.  Intermediate
    references resolve to the temporary of the producing sub-step by
    array identity (chains bind each intermediate to exactly one tmp).
    """
    env: Dict[str, object] = {}
    name_of: Dict[int, str] = {}

    def _ref(entry) -> str:
        return f"a[{entry}]" if type(entry) is int else name_of[id(entry)]

    lines = ["def _fused(a, out):"]
    for idx, (kernel, arg_plan, tmp) in enumerate(sub[:-1]):
        env[f"k{idx}"] = kernel
        env[f"t{idx}"] = tmp
        lines.append(
            f"    k{idx}({', '.join(_ref(p) for p in arg_plan)}, out=t{idx})"
        )
        name_of[id(tmp)] = f"t{idx}"
    tail_kernel, tail_args, _ = sub[-1]
    env["k_tail"] = tail_kernel
    lines.append(
        f"    return k_tail({', '.join(_ref(p) for p in tail_args)}, out=out)"
    )
    exec("\n".join(lines), env)
    return env["_fused"]


class FusedKernel:
    """Composite replay kernel: several fusable sub-kernels, one step.

    Sub-steps run in their original trace order.  Each is
    ``(kernel, arg_plan, tmp)`` where ``arg_plan`` entries are either an
    integer index into the fused step's external inputs or a directly
    bound intermediate array produced by an earlier sub-step; ``tmp`` is
    that sub-step's preallocated output temporary (every member kernel
    is ``out=``-aware, so it writes and returns its target).  The final
    sub-step writes into the fused step's own liveness-pooled ``out=``
    buffer, exactly as it would have unfused.  At construction the whole
    chain is specialized into one flat function (:func:`_specialize`),
    so a replay step dispatches once however many kernels were sunk.

    Intermediates never escape a call, so the temporaries are drawn from
    a pool *shared by every fused step of the plan* (replay is
    sequential): the plan's fused working set stays at one chain's
    footprint instead of one buffer per sunk step, keeping replay
    buffers cache-hot.  Within a chain every sub-step holds a distinct
    buffer, so an ``out=`` target never aliases that sub-step's inputs.
    """

    supports_out = True

    __slots__ = ("_run", "n_fused")

    def __init__(self, sub: List[tuple]):
        self.n_fused = len(sub)
        self._run = _specialize(sub)

    def __call__(self, *args, out=None):
        return self._run(args, out)


def _fusion_candidate(step) -> bool:
    return (
        step[0] == "k"
        and getattr(step[1], "supports_out", False)
        and getattr(step[1], "fusable", False)
    )


def _compose(chain: List[int], steps: list, trace, tmp_pool: Dict) -> tuple:
    """Emit one fused kernel step for an index chain (ascending order).

    ``tmp_pool`` is the plan-wide ``{(shape, dtype): [buffers]}`` free
    list shared across fused steps.  Temporaries recycle *within* the
    chain too: a tmp returns to the pool right after the sub-step that
    last reads it, so a long chain cycles through its peak-live buffer
    count (typically two or three) instead of one buffer per sub-step.
    Each sub-step acquires its output *before* releasing its inputs —
    the same discipline as the plan's outer pool — so an ``out=`` target
    never aliases that sub-step's own inputs (matmul-safe).  Whatever is
    still held at the end of the chain is released before the next chain
    composes, so intermediates never outlive a call and same-shaped
    buffers are shared across every fused step of the plan.
    """
    chain_end = chain[-1]
    internal = {steps[i][3] for i in chain[:-1]}
    last_use: Dict[int, int] = {}
    for ci, i in enumerate(chain):
        for sid in steps[i][2]:
            if sid in internal:
                last_use[sid] = ci
    tmp_of: Dict[int, np.ndarray] = {}
    held: Dict[int, tuple] = {}
    ext_ids: List[int] = []
    ext_pos: Dict[int, int] = {}
    sub: List[tuple] = []
    for ci, i in enumerate(chain):
        _, kernel, in_ids, out_id = steps[i]
        arg_plan: list = []
        for sid in in_ids:
            bound = tmp_of.get(sid)
            if bound is not None:
                arg_plan.append(bound)
                continue
            pos = ext_pos.get(sid)
            if pos is None:
                pos = len(ext_ids)
                ext_pos[sid] = pos
                ext_ids.append(sid)
            arg_plan.append(pos)
        if i != chain_end:
            arr = trace.arrays[out_id]
            key = (arr.shape, arr.dtype)
            stack = tmp_pool.get(key)
            tmp = stack.pop() if stack else np.empty_like(arr)
            held[out_id] = (key, tmp)
            tmp_of[out_id] = tmp
            sub.append((kernel, tuple(arg_plan), tmp))
        else:
            sub.append((kernel, tuple(arg_plan), None))
        for sid in set(in_ids):
            if last_use.get(sid) == ci and sid in held:
                key, tmp = held.pop(sid)
                tmp_pool.setdefault(key, []).append(tmp)
    for key, tmp in held.values():
        tmp_pool.setdefault(key, []).append(tmp)
    return ("k", FusedKernel(sub), tuple(ext_ids), steps[chain_end][3])


def _fuse_kernels(steps: list, trace, output_id: int) -> Tuple[list, int]:
    """Sink single-consumer fusable producers into their consumers.

    Legality: both steps are fusable ``out=`` kernels, the producer's
    output slot is read by exactly one step and is not the plan output,
    and producer and consumer share a fusion window (no source step
    between them).  Sinking to the sole consumer never reorders a value
    past its use, and original index order is a topological order within
    each resulting chain.
    """
    window = [0] * len(steps)
    w = 0
    for i, step in enumerate(steps):
        if step[0] == "s":
            w += 1
        window[i] = w

    producer: Dict[int, int] = {}
    consumers: Dict[int, int] = {}
    for i, step in enumerate(steps):
        for sid in set(step[2]):
            consumers[sid] = consumers.get(sid, 0) + 1
        if step[0] == "k":
            producer[step[3]] = i
    consumers[output_id] = consumers.get(output_id, 0) + 1

    fused_into: Dict[int, int] = {}
    for j, step in enumerate(steps):
        if not _fusion_candidate(step):
            continue
        for sid in set(step[2]):
            i = producer.get(sid)
            if (
                i is None
                or not _fusion_candidate(steps[i])
                or consumers.get(sid, 0) != 1
                or sid == output_id
                or window[i] != window[j]
            ):
                continue
            fused_into[i] = j

    if not fused_into:
        return steps, 0

    def root_of(i: int) -> int:
        while i in fused_into:
            i = fused_into[i]
        return i

    members_of: Dict[int, List[int]] = {}
    for i in fused_into:
        members_of.setdefault(root_of(i), []).append(i)

    fused = 0
    out_steps = []
    tmp_pool: Dict[tuple, list] = {}
    for j, step in enumerate(steps):
        if j in fused_into:
            continue
        members = members_of.get(j)
        if members:
            chain = sorted(members) + [j]
            out_steps.append(_compose(chain, steps, trace, tmp_pool))
            fused += len(chain) - 1
        else:
            out_steps.append(step)
    return out_steps, fused


# ----------------------------------------------------------------------
# Pass 6: source-free prefix folding
# ----------------------------------------------------------------------
#: Prefixes shorter than this are not worth the per-replay entry compare.
PREFIX_MIN_STEPS = 2


def prefix_length(steps: list, entry_id: int, output_id: int) -> int:
    """Length of the leading step run that is a pure function of the entry.

    A plan's leading kernel steps — everything before the first source
    step — compute the same values on every replay whose entry has the
    same *content* (slots are write-once, constants are frozen, kernels
    are deterministic).  The plan exploits that at replay time: it keeps
    a private copy of the last fully-replayed entry, and when the next
    entry compares equal it skips the whole prefix and re-serves the
    persisted prefix outputs (see :meth:`repro.tensor.plan.Plan.replay`).
    Monte Carlo campaigns hit this constantly — the evaluation batch is
    the same array for every chip and run, so every layer ahead of the
    first RNG draw or live fault hook replays exactly once per plan.

    The guard is content equality, not object identity, so one hazard
    needs excluding statically: a *view of the entry* produced inside the
    prefix but read after it would keep referencing the previous entry
    array, whose owner may have mutated it between calls.  Any such
    producer is pushed out of the prefix (interval shrink to fixpoint);
    views of constants or of plan-owned buffers are unaffected — those
    arrays are stable across replays by construction.

    Source steps never fold into a prefix (their draws are fresh per
    replay), and prefixes shorter than :data:`PREFIX_MIN_STEPS` return 0
    — skipping one step cannot pay for the entry comparison.
    """
    length = 0
    for step in steps:
        if step[0] == "s":
            break
        length += 1
    if length == 0:
        return 0
    # Entry-aliased slots and the step index producing each.
    aliased = {entry_id}
    produced_at: Dict[int, int] = {}
    for idx, step in enumerate(steps):
        if (
            step[0] == "k"
            and getattr(step[1], "may_alias", False)
            and step[2]
            and step[2][0] in aliased
        ):
            aliased.add(step[3])
            produced_at[step[3]] = idx
    if produced_at:
        last_read = {sid: -1 for sid in produced_at}
        for idx, step in enumerate(steps):
            for sid in step[2]:
                if sid in last_read:
                    last_read[sid] = idx
        if output_id in last_read:
            last_read[output_id] = len(steps)
        intervals = [(produced_at[sid], last_read[sid]) for sid in produced_at]
        changed = True
        while changed:
            changed = False
            for produced, read in intervals:
                if produced < length <= read:
                    length = produced
                    changed = True
    return length if length >= PREFIX_MIN_STEPS else 0


# ----------------------------------------------------------------------
# Pipeline
# ----------------------------------------------------------------------
def optimize_trace(trace, output_id: int) -> Tuple[list, Dict[str, int]]:
    """Run dedupe → fold → eliminate → densify → fuse over a trace.

    Returns the optimized step list (same tuple format the compiler
    consumes) and the per-pass counter dict surfaced by ``--profile``.
    ``trace.constant`` is updated in place so the plan binds folded
    results as constants; ``trace.steps`` itself is left untouched.
    Densification runs after elimination (dead views need no copy) and
    before fusion, so a materialized view becomes an ordinary fusable
    ``out=`` step that can sink into its consumer's chain.

    The final "pass" is analysis only: :func:`prefix_length` measures the
    source-free prefix (``prefixed`` counter) that replay may skip for
    content-identical entries — it runs last so fusion has already
    collapsed the prefix's chains and densification has rewritten its
    entry views into materializing (non-aliasing) steps.
    """
    before = len(trace.steps)
    steps, deduped = _dedupe_steps(trace.steps, trace, output_id)
    steps, folded = _fold_constants(steps, trace)
    steps, eliminated = _eliminate_dead(steps, output_id)
    steps, densified = _densify_views(steps, trace)
    steps, fused = _fuse_kernels(steps, trace, output_id)
    return steps, {
        "deduped": deduped,
        "folded": folded,
        "fused": fused,
        "eliminated": eliminated,
        "densified": densified,
        "prefixed": prefix_length(steps, trace.entry, output_id),
        "steps_before": before,
        "steps_after": len(steps),
    }
