"""Differentiable elementwise and structural operations on :class:`Tensor`.

All functions accept and return :class:`~repro.tensor.tensor.Tensor` objects
and record autograd history when gradient mode is enabled.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .plan import fusable, outable
from .tensor import Tensor, as_tensor, unbroadcast


def exp(x: Tensor) -> Tensor:
    """Differentiable elementwise exponential."""
    x = as_tensor(x)
    data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data)

    return Tensor._make(
        data, [x], backward, "exp",
        kernel=fusable(outable(lambda a, out=None: np.exp(a, out=out))),
    )


def log(x: Tensor) -> Tensor:
    """Differentiable elementwise natural logarithm."""
    x = as_tensor(x)
    data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad / x.data)

    return Tensor._make(
        data, [x], backward, "log",
        kernel=fusable(outable(lambda a, out=None: np.log(a, out=out))),
    )


def sqrt(x: Tensor) -> Tensor:
    """Differentiable elementwise square root."""
    x = as_tensor(x)
    data = np.sqrt(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * 0.5 / data)

    return Tensor._make(
        data, [x], backward, "sqrt",
        kernel=fusable(outable(lambda a, out=None: np.sqrt(a, out=out))),
    )


def abs_(x: Tensor) -> Tensor:
    """Differentiable elementwise absolute value (subgradient 0 at 0)."""
    x = as_tensor(x)
    data = np.abs(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.sign(x.data))

    return Tensor._make(
        data, [x], backward, "abs",
        kernel=fusable(outable(lambda a, out=None: np.abs(a, out=out))),
    )


def tanh(x: Tensor) -> Tensor:
    """Differentiable elementwise hyperbolic tangent."""
    x = as_tensor(x)
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (1.0 - data**2))

    return Tensor._make(
        data, [x], backward, "tanh",
        kernel=fusable(outable(lambda a, out=None: np.tanh(a, out=out))),
    )


@fusable
@outable
def _sigmoid_kernel(values: np.ndarray, out=None) -> np.ndarray:
    """Numerically stable logistic, shared by the eager and replay paths.

    Branch-free formulation of the classic two-tail-stable logistic: with
    ``e = exp(-|x|)`` the positive tail is ``1 / (1 + e)`` and the
    negative tail ``e / (1 + e)`` — elementwise identical (bit for bit,
    including ±0, ±inf and the overflow range) to masked assignment, but
    without the boolean gather/scatter that dominated its runtime.

    ``e`` is computed in place through one scratch array (abs, negate,
    exp, then reused for the denominator) — the same ufunc sequence as
    the naive spelling, minus three full-size temporaries per call.
    """
    e = np.abs(values)
    np.negative(e, out=e)
    np.exp(e, out=e)
    num = np.where(values >= 0, 1.0, e)
    np.add(e, 1.0, out=e)
    return np.divide(num, e, out=out)


def sigmoid(x: Tensor) -> Tensor:
    """Differentiable logistic function, numerically stable in both tails."""
    x = as_tensor(x)
    data = _sigmoid_kernel(x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * data * (1.0 - data))

    return Tensor._make(data, [x], backward, "sigmoid", kernel=_sigmoid_kernel)


def relu(x: Tensor) -> Tensor:
    """Differentiable rectified linear unit ``max(x, 0)``."""
    x = as_tensor(x)
    mask = x.data > 0
    data = np.where(mask, x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(
        data, [x], backward, "relu",
        kernel=lambda a: np.where(a > 0, a, 0.0),
    )


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """Differentiable leaky ReLU with slope ``negative_slope`` for ``x < 0``."""
    x = as_tensor(x)
    mask = x.data > 0
    data = np.where(mask, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(mask, 1.0, negative_slope))

    return Tensor._make(
        data, [x], backward, "leaky_relu",
        kernel=lambda a: np.where(a > 0, a, negative_slope * a),
    )


def hardtanh(x: Tensor, min_val: float = -1.0, max_val: float = 1.0) -> Tensor:
    """Clamp with pass-through gradient inside the interval."""
    x = as_tensor(x)
    data = np.clip(x.data, min_val, max_val)
    mask = (x.data > min_val) & (x.data < max_val)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(
        data, [x], backward, "hardtanh",
        kernel=fusable(outable(lambda a, out=None: np.clip(a, min_val, max_val, out=out))),
    )


def clip(x: Tensor, min_val: Optional[float], max_val: Optional[float]) -> Tensor:
    """Differentiable clamp to ``[min_val, max_val]`` (zero gradient outside)."""
    x = as_tensor(x)
    lo = -np.inf if min_val is None else min_val
    hi = np.inf if max_val is None else max_val
    data = np.clip(x.data, lo, hi)
    mask = (x.data >= lo) & (x.data <= hi)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(
        data, [x], backward, "clip",
        kernel=fusable(outable(lambda a, out=None: np.clip(a, lo, hi, out=out))),
    )


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient follows the winner)."""
    a, b = as_tensor(a), as_tensor(b)
    data = np.maximum(a.data, b.data)
    a_wins = a.data >= b.data

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * a_wins, a.shape))
        b._accumulate(unbroadcast(grad * ~a_wins, b.shape))

    return Tensor._make(
        data, [a, b], backward, "maximum",
        kernel=fusable(outable(lambda av, bv, out=None: np.maximum(av, bv, out=out))),
    )


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a plain boolean array."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        a._accumulate(unbroadcast(grad * cond, a.shape))
        b._accumulate(unbroadcast(grad * ~cond, b.shape))

    # ``cond`` is a plain array whose provenance the tracer cannot see
    # (it may be data-dependent), so this op has no replay kernel and
    # poisons any active trace.
    return Tensor._make(data, [a, b], backward, "where")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Differentiable softmax along ``axis``, shift-stabilized."""
    x = as_tensor(x)

    def kernel(values: np.ndarray) -> np.ndarray:
        shifted = values - values.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        return e / e.sum(axis=axis, keepdims=True)

    data = kernel(x.data)

    def backward(grad: np.ndarray) -> None:
        dot = (grad * data).sum(axis=axis, keepdims=True)
        x._accumulate(data * (grad - dot))

    return Tensor._make(data, [x], backward, "softmax", kernel=kernel)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Differentiable log-softmax along ``axis``, shift-stabilized."""
    x = as_tensor(x)

    def kernel(values: np.ndarray) -> np.ndarray:
        shifted = values - values.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        return shifted - log_z

    data = kernel(x.data)
    soft = np.exp(data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(data, [x], backward, "log_softmax", kernel=kernel)


def pad(x: Tensor, pad_width: Sequence[Tuple[int, int]]) -> Tensor:
    """Zero-pad; ``pad_width`` follows ``np.pad`` convention per axis."""
    x = as_tensor(x)
    pad_width = tuple(tuple(p) for p in pad_width)
    data = np.pad(x.data, pad_width)

    def backward(grad: np.ndarray) -> None:
        slicer = tuple(
            slice(before, dim - after)
            for (before, after), dim in zip(pad_width, grad.shape)
        )
        x._accumulate(grad[slicer])

    return Tensor._make(
        data, [x], backward, "pad",
        kernel=lambda a: np.pad(a, pad_width),
    )


def dropout_mask_apply(x: Tensor, mask: np.ndarray, scale: float = 1.0) -> Tensor:
    """Multiply by a fixed (non-differentiable) mask, optionally rescaling.

    Under an active forward-plan trace the mask is an explicit kernel
    input, so a replay consumes whatever mask the recorded sampling thunk
    drew for that pass.
    """
    x = as_tensor(x)
    factor = mask * scale
    data = x.data * factor

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * factor)

    def kernel(values: np.ndarray, mask_values: np.ndarray) -> np.ndarray:
        return values * (mask_values * scale)

    return Tensor._make(
        data, [x], backward, "dropout",
        kernel=kernel, kernel_inputs=(x.data, mask),
    )


def add_noise(x: Tensor, noise: np.ndarray) -> Tensor:
    """Add a constant (non-differentiable) noise array.

    Forward plans take ``noise`` at this contract's word: a caller-frozen
    constant, captured per plan key.  Per-pass noise must be drawn through
    :func:`repro.tensor.plan.traced_source` (as every in-repo site does)
    so replays re-draw it.
    """
    x = as_tensor(x)
    data = x.data + noise

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad)

    return Tensor._make(
        data, [x], backward, "add_noise",
        kernel=fusable(outable(lambda a, n, out=None: np.add(a, n, out=out))),
        kernel_inputs=(x.data, noise),
    )


def mean_pool_global(x: Tensor, axes: Union[int, Tuple[int, ...]]) -> Tensor:
    """Global average over the given axes (keeps batch/channel dims)."""
    return x.mean(axis=axes, keepdims=False)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather used by embedding-style layers."""
    weight = as_tensor(weight)
    idx = np.asarray(indices, dtype=np.int64)
    data = weight.data[idx]

    def backward(grad: np.ndarray) -> None:
        full = np.zeros_like(weight.data)
        np.add.at(full, idx, grad)
        weight._accumulate(full)

    # Indices are typically data (token ids), which a baked replay kernel
    # cannot see — no kernel, so any active trace falls back.
    return Tensor._make(data, [weight], backward, "embedding")
