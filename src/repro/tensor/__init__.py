"""Numpy-backed autograd tensor engine.

The substrate every other subpackage builds on: a :class:`Tensor` class with
reverse-mode automatic differentiation, differentiable elementwise /
structural / convolutional operations, gradient checking, and seedable
randomness.
"""

from .chipbatch import (
    ChipBatchRng,
    active_chip_count,
    active_sample_count,
    active_scenario_count,
    chip_axes,
    chip_batch,
    instance_layout,
    mc_batching,
    mc_batching_active,
    mc_sample_axis,
    scenario_axis,
    spawn_sample_streams,
)
from .grad_mode import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from . import plan
from .plan import clear_plans, plan_execution, plan_stats
from .gradcheck import check_gradients, numeric_gradient
from .random import get_rng, manual_seed, scoped_rng, spawn_rng
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    ones,
    stack_tensors,
    unbroadcast,
    zeros,
)
from . import conv, ops
from .conv import (
    avg_pool1d,
    avg_pool2d,
    conv1d,
    conv2d,
    conv_transpose2d,
    max_pool1d,
    max_pool2d,
    upsample_nearest2d,
)
from .ops import (
    abs_,
    add_noise,
    clip,
    dropout_mask_apply,
    exp,
    hardtanh,
    leaky_relu,
    log,
    log_softmax,
    maximum,
    pad,
    relu,
    sigmoid,
    softmax,
    sqrt,
    tanh,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack_tensors",
    "zeros",
    "ones",
    "unbroadcast",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "manual_seed",
    "get_rng",
    "scoped_rng",
    "spawn_rng",
    "ChipBatchRng",
    "active_chip_count",
    "active_sample_count",
    "active_scenario_count",
    "chip_axes",
    "chip_batch",
    "instance_layout",
    "mc_batching",
    "mc_batching_active",
    "mc_sample_axis",
    "scenario_axis",
    "spawn_sample_streams",
    "check_gradients",
    "numeric_gradient",
    "plan",
    "plan_execution",
    "plan_stats",
    "clear_plans",
    "conv",
    "ops",
    "conv1d",
    "conv2d",
    "conv_transpose2d",
    "max_pool1d",
    "max_pool2d",
    "avg_pool1d",
    "avg_pool2d",
    "upsample_nearest2d",
    "exp",
    "log",
    "sqrt",
    "abs_",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "hardtanh",
    "clip",
    "maximum",
    "where",
    "softmax",
    "log_softmax",
    "pad",
    "dropout_mask_apply",
    "add_noise",
]
