"""Seedable random-number management for the whole library.

Every stochastic component (parameter initialization, dropout masks, fault
injection, dataset synthesis, device models) draws from generators created
here, so experiments are reproducible end to end from a single seed.
"""

from __future__ import annotations

import numpy as np

_GLOBAL_SEED = 0
_GENERATOR = np.random.default_rng(_GLOBAL_SEED)


def manual_seed(seed: int) -> None:
    """Reset the library-wide generator to a deterministic state."""
    global _GLOBAL_SEED, _GENERATOR
    _GLOBAL_SEED = int(seed)
    _GENERATOR = np.random.default_rng(_GLOBAL_SEED)


def get_rng() -> np.random.Generator:
    """Return the library-wide generator (advanced by every draw)."""
    return _GENERATOR


def spawn_rng(tag: int | str = 0) -> np.random.Generator:
    """Return an independent generator derived from the global seed.

    Useful when a component (e.g. one Monte Carlo chip instance) needs its
    own stream that does not perturb the global sequence.
    """
    if isinstance(tag, str):
        tag = abs(hash(tag)) % (2**32)
    seq = np.random.SeedSequence(entropy=_GLOBAL_SEED, spawn_key=(int(tag),))
    return np.random.default_rng(seq)
