"""Seedable random-number management for the whole library.

Every stochastic component (parameter initialization, dropout masks, fault
injection, dataset synthesis, device models) draws from generators created
here, so experiments are reproducible end to end from a single seed.

Two layers of control exist:

* :func:`manual_seed` resets the process-wide base generator — the classic
  "seed everything" entry point used by scripts and tests.
* :func:`scoped_rng` installs a *thread-local* generator override for the
  duration of a ``with`` block.  Every ``get_rng()`` draw inside the block
  (dropout masks, affine-dropout noise, activation faults ...) comes from
  the scoped generator, and the previous state is restored on exit.  This
  is what makes Monte Carlo campaign cells hermetic: each (scenario, run)
  cell evaluates under its own derived generator, so results are identical
  whether cells run serially, on a thread pool, or on a process pool — in
  any order.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator

import numpy as np

_GLOBAL_SEED = 0
_GENERATOR = np.random.default_rng(_GLOBAL_SEED)

# Thread-local override installed by scoped_rng(); each worker thread of a
# parallel campaign scopes its own generator without racing the others.
_THREAD_STATE = threading.local()


def manual_seed(seed: int) -> None:
    """Reset the library-wide generator to a deterministic state."""
    global _GLOBAL_SEED, _GENERATOR
    _GLOBAL_SEED = int(seed)
    _GENERATOR = np.random.default_rng(_GLOBAL_SEED)


def get_rng() -> np.random.Generator:
    """Return the active generator (thread-local override, else global)."""
    override = getattr(_THREAD_STATE, "override", None)
    if override is not None:
        return override
    return _GENERATOR


@contextlib.contextmanager
def scoped_rng(generator: np.random.Generator) -> Iterator[np.random.Generator]:
    """Route all ``get_rng()`` draws on this thread through ``generator``.

    Nestable and exception-safe; the previous override (or the global
    generator) is restored when the block exits.
    """
    previous = getattr(_THREAD_STATE, "override", None)
    _THREAD_STATE.override = generator
    try:
        yield generator
    finally:
        _THREAD_STATE.override = previous


def spawn_rng(tag: int | str = 0) -> np.random.Generator:
    """Return an independent generator derived from the global seed.

    Useful when a component (e.g. one Monte Carlo chip instance) needs its
    own stream that does not perturb the global sequence.
    """
    if isinstance(tag, str):
        tag = abs(hash(tag)) % (2**32)
    seq = np.random.SeedSequence(entropy=_GLOBAL_SEED, spawn_key=(int(tag),))
    return np.random.default_rng(seq)
