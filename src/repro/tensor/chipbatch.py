"""Instance-batch context: evaluate stacked model instances in one pass.

Monte Carlo fault campaigns simulate ``R`` independent chip instances per
fault scenario, and Bayesian methods additionally average ``S`` stochastic
forward passes (MC dropout / affine dropout) per prediction.  The serial
engine evaluates all of that one pass at a time; the ``batched`` executor
backend instead stacks instances along a leading *instance axis* and runs a
single vectorized forward, so every numpy kernel amortizes its dispatch
overhead over the whole stack.

The instance axis is composable out of (up to) three sub-axes, in
**scenario-major, then chip, then sample** order: the campaign engine may
open a :func:`scenario_axis` of ``K`` stacked fault-severity scenarios
around a :func:`chip_batch` of ``C`` chips, and Monte Carlo inference
(:func:`repro.core.bayesian.mc_forward`) may multiply both by an MC-sample
sub-axis of ``S`` via :func:`mc_sample_axis`, so one forward carries
``K x C x S`` instances (instance ``i`` is scenario ``i // (C * S)``, chip
``(i // S) % C``, sample ``i % S``).  Layers never need to know the
decomposition — they see one leading axis of size
:func:`active_chip_count`; only components that hold *per-chip* frozen
state (the chip-batched fault hooks) consult :func:`active_sample_count`
to repeat their patterns across the sample sub-axis, and only the
scenario-batched fault hooks — which hold one frozen pattern per
(scenario, chip) — are built per :func:`active_scenario_count` instance
group.

This module provides the thread-local state that makes a batched pass
*bit-identical per instance* to the serial reference:

* :func:`scenario_axis` / :func:`chip_batch` / :func:`mc_sample_axis` —
  context managers announcing the instance-axis layout.  Layers with shape-dependent logic
  (normalization feature axes, spatial-dropout mask shapes, the inverted
  norm's affine reshape) consult :func:`active_chip_count` to shift their
  channel axis from 1 to 2.  The invariant maintained by the batched
  evaluators is that **every activation inside the context has a leading
  instance axis** (inputs are broadcast up front), so a single flag
  suffices — no per-tensor rank guessing.
* :class:`ChipBatchRng` — a stack of per-instance generators that
  satisfies leading-instance-axis draws by drawing each instance's slice
  from its own generator.  A serial cell draws its dropout masks /
  affine-dropout coin flips / activation noise from the cell's own
  ``SeedSequence``-derived stream; the batched pass installs a
  ``ChipBatchRng`` over exactly those per-cell streams via
  :func:`~repro.tensor.random.scoped_rng`, so instance ``i``'s slice of
  every mask is the very array the serial engine would have drawn.
* :func:`spawn_sample_streams` — the one canonical derivation of
  per-MC-sample streams from a cell stream (``Generator.spawn``, i.e.
  ``SeedSequence`` children).  Both the looped and the batched MC paths
  call it exactly once per :func:`~repro.core.bayesian.mc_forward`
  invocation, which is what makes them bit-identical to each other.
* :func:`mc_batching` / :func:`mc_batching_active` — the thread-local
  switch (CLI ``--mc-batched``) with which the ``batched`` executor asks
  ``mc_forward`` to stack the sample axis instead of looping it.
* :func:`mc_sample_scope` / :func:`current_mc_sample` — the looped path's
  per-pass sample coordinates, consulted by components that keep their own
  streams (activation-noise fault hooks) to select the matching
  ``SeedSequence`` child.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

_STATE = threading.local()


def active_chip_count() -> Optional[int]:
    """Total instances in the active batch on this thread, or ``None``.

    This is the size of the leading instance axis every activation carries:
    ``scenarios * chips * mc_samples`` when all three sub-axes are active.
    """
    scenarios = getattr(_STATE, "n_scenarios", None)
    chips = getattr(_STATE, "n_chips", None)
    samples = getattr(_STATE, "n_samples", None)
    if scenarios is None and chips is None and samples is None:
        return None
    return (scenarios or 1) * (chips or 1) * (samples or 1)


def active_sample_count() -> Optional[int]:
    """Size of the MC-sample sub-axis, or ``None`` outside one.

    Components holding *per-chip* frozen state (chip-batched weight-fault
    hooks) repeat their patterns this many times along the instance axis.
    """
    return getattr(_STATE, "n_samples", None)


def active_scenario_count() -> Optional[int]:
    """Size of the scenario sub-axis, or ``None`` outside one.

    The scenario axis composes *above* chips and samples (scenario-major):
    the campaign engine's scenario-batched path stacks all severity levels
    of a sweep that share a task and fault kind, so one forward carries
    ``scenarios * chips * samples`` instances.  Fault hooks built by
    :meth:`~repro.faults.campaign.FaultInjector.attach_scenario_batched`
    hold one frozen pattern per (scenario, chip) and therefore never need
    this at apply time — it exists for introspection and layout checks
    (see :func:`instance_layout`).
    """
    return getattr(_STATE, "n_scenarios", None)


def instance_layout() -> Tuple[Optional[int], Optional[int], Optional[int]]:
    """The active ``(scenarios, chips, samples)`` sub-axis sizes.

    Each entry is ``None`` while its context manager is not entered; the
    total leading-axis size is the product of the non-``None`` entries
    (what :func:`active_chip_count` returns).
    """
    return (
        getattr(_STATE, "n_scenarios", None),
        getattr(_STATE, "n_chips", None),
        getattr(_STATE, "n_samples", None),
    )


def chip_axes(extra: int = 0) -> int:
    """Index offset added by the instance axis (0 outside a batch, 1 inside).

    ``extra`` is added for convenience: ``chip_axes(1)`` is the channel
    axis of an NCHW activation in either mode.
    """
    return extra + (1 if active_chip_count() is not None else 0)


@contextlib.contextmanager
def chip_batch(n_chips: int) -> Iterator[int]:
    """Mark this thread as evaluating ``n_chips`` stacked chip instances.

    Nestable and exception-safe.  While active, instance-aware layers treat
    axis 0 of every activation as the instance axis.
    """
    n_chips = int(n_chips)
    if n_chips < 1:
        raise ValueError(f"chip batch needs >= 1 chip, got {n_chips}")
    previous = getattr(_STATE, "n_chips", None)
    _STATE.n_chips = n_chips
    try:
        yield n_chips
    finally:
        _STATE.n_chips = previous


@contextlib.contextmanager
def scenario_axis(n_scenarios: int) -> Iterator[int]:
    """Multiply the active instance axis by a scenario sub-axis (outermost).

    Entered by the campaign engine's scenario-batched path around its
    single stacked forward: with a :func:`chip_batch` of ``C`` active, the
    instance axis becomes ``n_scenarios x C`` in scenario-major order (and
    Monte Carlo inference may further multiply by a sample sub-axis below
    both).  Nestable and exception-safe.
    """
    n_scenarios = int(n_scenarios)
    if n_scenarios < 1:
        raise ValueError(
            f"scenario axis needs >= 1 scenario, got {n_scenarios}"
        )
    previous = getattr(_STATE, "n_scenarios", None)
    _STATE.n_scenarios = n_scenarios
    try:
        yield n_scenarios
    finally:
        _STATE.n_scenarios = previous


@contextlib.contextmanager
def mc_sample_axis(n_samples: int) -> Iterator[int]:
    """Multiply the active instance axis by an MC-sample sub-axis.

    Entered by the batched Monte Carlo path around its single stacked
    forward: with a :func:`chip_batch` of ``C`` active, the instance axis
    becomes ``C x n_samples`` in chip-major order; with no chip batch it is
    simply ``n_samples``.  Nestable and exception-safe.
    """
    n_samples = int(n_samples)
    if n_samples < 1:
        raise ValueError(f"MC sample axis needs >= 1 sample, got {n_samples}")
    previous = getattr(_STATE, "n_samples", None)
    _STATE.n_samples = n_samples
    try:
        yield n_samples
    finally:
        _STATE.n_samples = previous


# ----------------------------------------------------------------------
# MC batching switch + looped-pass sample scope
# ----------------------------------------------------------------------
def mc_batching_active() -> bool:
    """True when MC inference should stack the sample axis (``--mc-batched``)."""
    return bool(getattr(_STATE, "mc_batched", False))


@contextlib.contextmanager
def mc_batching(enabled: bool = True) -> Iterator[bool]:
    """Switch sample-axis stacking on/off for this thread's MC inference."""
    previous = getattr(_STATE, "mc_batched", False)
    _STATE.mc_batched = bool(enabled)
    try:
        yield bool(enabled)
    finally:
        _STATE.mc_batched = previous


def current_mc_sample() -> Optional[Tuple[int, int]]:
    """``(sample_index, num_samples)`` of the looped MC pass, or ``None``.

    Set by ``mc_forward``'s looped path around pass ``s`` so components
    with private streams (activation-noise hooks) can select the matching
    per-sample ``SeedSequence`` child — the same child the batched path
    assigns to instance sub-index ``s``.
    """
    return getattr(_STATE, "mc_sample", None)


@contextlib.contextmanager
def mc_sample_scope(index: int, total: int) -> Iterator[None]:
    """Mark this thread as inside looped MC pass ``index`` of ``total``."""
    previous = getattr(_STATE, "mc_sample", None)
    _STATE.mc_sample = (int(index), int(total))
    try:
        yield
    finally:
        _STATE.mc_sample = previous


class ChipBatchRng:
    """Per-instance generator stack behind a ``np.random.Generator``-like API.

    Every draw must request a shape whose leading dimension equals the
    instance count; the result is the per-instance draws stacked along
    axis 0.  Instance ``i``'s slice is therefore bit-identical to what the
    serial engine draws from ``generators[i]`` for the same call sequence.

    Components that sample *per parameter vector* rather than per
    activation (e.g. the affine-dropout sampler's scalar coin flips) can
    reach the underlying streams through :attr:`generators`.
    """

    def __init__(self, generators: Sequence[np.random.Generator]):
        self.generators = list(generators)
        if not self.generators:
            raise ValueError("ChipBatchRng needs at least one generator")

    @property
    def n_chips(self) -> int:
        return len(self.generators)

    def spawn(self, n_children: int) -> List[List[np.random.Generator]]:
        """Spawn ``n_children`` ``SeedSequence`` children per instance.

        Returns one child list per instance stream, in instance order —
        the raw material for per-sample stream derivation (see
        :func:`spawn_sample_streams`).
        """
        return [list(g.spawn(n_children)) for g in self.generators]

    def _stacked(self, draw, size) -> np.ndarray:
        if size is None:
            raise RuntimeError(
                "scalar draws are ambiguous under a chip batch; draw from "
                "ChipBatchRng.generators[i] explicitly instead"
            )
        shape = (size,) if isinstance(size, int) else tuple(size)
        if not shape or shape[0] != self.n_chips:
            raise RuntimeError(
                f"chip-batched draws must lead with the instance axis "
                f"({self.n_chips}); got shape {shape}"
            )
        inner = shape[1:]
        return np.stack([draw(g, inner) for g in self.generators], axis=0)

    # The Generator subset the evaluation path uses (dropout masks,
    # Gaussian dropout noise, DropConnect weight masks).
    def random(self, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.random(s), size)

    def standard_normal(self, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.standard_normal(s), size)

    def normal(self, loc=0.0, scale=1.0, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.normal(loc, scale, s), size)

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.uniform(low, high, s), size)

    def integers(self, low, high=None, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.integers(low, high, size=s), size)


def spawn_sample_streams(
    rng: Union[np.random.Generator, ChipBatchRng], num_samples: int
) -> Tuple[List, List[np.random.Generator]]:
    """Derive per-MC-sample streams from the active evaluation generator.

    Returns ``(per_sample, per_instance)``:

    * ``per_sample[s]`` — the generator (or :class:`ChipBatchRng`) the
      looped path scopes for pass ``s``;
    * ``per_instance`` — the same streams flattened chip-major
      (``chip * num_samples + sample``), ready to back a single
      :class:`ChipBatchRng` for the stacked pass.

    Both views are built from one ``Generator.spawn`` call per underlying
    stream, so the looped and batched paths consume identical
    ``SeedSequence`` children in identical order — the root of their
    bit-for-bit equivalence.  Each ``mc_forward`` invocation calls this
    exactly once, advancing the parent's spawn counter deterministically.
    """
    if isinstance(rng, ChipBatchRng):
        kids = rng.spawn(num_samples)  # [chip][sample]
        per_sample = [
            ChipBatchRng([chip_kids[s] for chip_kids in kids])
            for s in range(num_samples)
        ]
        per_instance = [child for chip_kids in kids for child in chip_kids]
        return per_sample, per_instance
    kids = list(rng.spawn(num_samples))
    return kids, list(kids)
