"""Chip-batch context: evaluate C simulated chips in one tensor pass.

Monte Carlo fault campaigns simulate ``R`` independent chip instances per
fault scenario.  The serial engine evaluates them one at a time; the
``batched`` executor backend instead stacks all chips of a scenario along a
leading *chip axis* and runs a single vectorized forward, so every numpy
kernel amortizes its dispatch overhead over ``C`` chips.

This module provides the two pieces of thread-local state that make the
batched pass *bit-identical per chip* to the serial reference:

* :func:`chip_batch` — a context manager announcing that activations carry
  a leading chip axis of size ``C``.  Layers with shape-dependent logic
  (normalization feature axes, spatial-dropout mask shapes, the inverted
  norm's affine reshape) consult :func:`active_chip_count` to shift their
  channel axis from 1 to 2.  The invariant maintained by the batched
  evaluators is that **every activation inside the context has a leading
  chip axis** (inputs are broadcast up front), so a single flag suffices —
  no per-tensor rank guessing.
* :class:`ChipBatchRng` — a stack of per-chip generators that satisfies
  leading-chip-axis draws by drawing each chip's slice from its own
  generator.  A serial cell draws its dropout masks / affine-dropout
  coin flips / activation noise from the cell's own
  ``SeedSequence``-derived stream; the batched pass installs a
  ``ChipBatchRng`` over exactly those per-cell streams via
  :func:`~repro.tensor.random.scoped_rng`, so chip ``i``'s slice of every
  mask is the very array the serial engine would have drawn.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Iterator, Optional, Sequence

import numpy as np

_STATE = threading.local()


def active_chip_count() -> Optional[int]:
    """Number of chips in the active batch on this thread, or ``None``."""
    return getattr(_STATE, "n_chips", None)


def chip_axes(extra: int = 0) -> int:
    """Index offset added by the chip axis (0 outside a batch, 1 inside).

    ``extra`` is added for convenience: ``chip_axes(1)`` is the channel
    axis of an NCHW activation in either mode.
    """
    return extra + (1 if active_chip_count() is not None else 0)


@contextlib.contextmanager
def chip_batch(n_chips: int) -> Iterator[int]:
    """Mark this thread as evaluating ``n_chips`` stacked chip instances.

    Nestable and exception-safe.  While active, chip-aware layers treat
    axis 0 of every activation as the chip axis.
    """
    n_chips = int(n_chips)
    if n_chips < 1:
        raise ValueError(f"chip batch needs >= 1 chip, got {n_chips}")
    previous = getattr(_STATE, "n_chips", None)
    _STATE.n_chips = n_chips
    try:
        yield n_chips
    finally:
        _STATE.n_chips = previous


class ChipBatchRng:
    """Per-chip generator stack behind a ``np.random.Generator``-like API.

    Every draw must request a shape whose leading dimension equals the
    chip count; the result is the per-chip draws stacked along axis 0.
    Chip ``i``'s slice is therefore bit-identical to what the serial
    engine draws from ``generators[i]`` for the same call sequence.

    Components that sample *per parameter vector* rather than per
    activation (e.g. the affine-dropout sampler's scalar coin flips) can
    reach the underlying streams through :attr:`generators`.
    """

    def __init__(self, generators: Sequence[np.random.Generator]):
        self.generators = list(generators)
        if not self.generators:
            raise ValueError("ChipBatchRng needs at least one generator")

    @property
    def n_chips(self) -> int:
        return len(self.generators)

    def _stacked(self, draw, size) -> np.ndarray:
        if size is None:
            raise RuntimeError(
                "scalar draws are ambiguous under a chip batch; draw from "
                "ChipBatchRng.generators[i] explicitly instead"
            )
        shape = (size,) if isinstance(size, int) else tuple(size)
        if not shape or shape[0] != self.n_chips:
            raise RuntimeError(
                f"chip-batched draws must lead with the chip axis "
                f"({self.n_chips}); got shape {shape}"
            )
        inner = shape[1:]
        return np.stack([draw(g, inner) for g in self.generators], axis=0)

    # The Generator subset the evaluation path uses (dropout masks,
    # Gaussian dropout noise, DropConnect weight masks).
    def random(self, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.random(s), size)

    def standard_normal(self, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.standard_normal(s), size)

    def normal(self, loc=0.0, scale=1.0, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.normal(loc, scale, s), size)

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.uniform(low, high, s), size)

    def integers(self, low, high=None, size=None) -> np.ndarray:
        return self._stacked(lambda g, s: g.integers(low, high, size=s), size)
