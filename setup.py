"""Setup shim so ``pip install -e .`` works without the ``wheel`` package.

The offline environment lacks ``wheel``, which PEP 517 editable installs
require; the legacy ``setup.py develop`` path (``pip install -e .
--no-use-pep517 --no-build-isolation``) does not.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
