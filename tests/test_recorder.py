"""Unit tests for the benchmark trajectory recorder.

``benchmarks/recorder.py`` is not an installed package (the benchmarks
directory is excluded from tier-1), so the module is loaded straight
from its file path.  The tests pin the atomicity contract: an
interrupted append (simulated by a ``json.dump`` that writes half a
document and dies) must leave the existing ``BENCH_*.json`` byte-for-
byte intact and clean up its temporary file.
"""

import importlib.util
import json
import os

import pytest

_RECORDER_PATH = os.path.join(
    os.path.dirname(__file__), "..", "benchmarks", "recorder.py"
)


@pytest.fixture()
def recorder():
    spec = importlib.util.spec_from_file_location("bench_recorder", _RECORDER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestRecordBench:
    def test_appends_rows_with_schema_version(self, recorder, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        recorder.record_bench("co2", "baseline", 100.0, 1.0, bench_file=target)
        rows = recorder.record_bench("co2", "fast", 150.0, 1.5, bench_file=target)
        assert len(rows) == 2
        with open(target) as fh:
            on_disk = json.load(fh)
        assert on_disk == rows
        assert all(r["schema_version"] == recorder.SCHEMA_VERSION for r in on_disk)

    def test_extra_fields_merge_without_overriding(self, recorder, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        (row,) = recorder.record_bench(
            "co2", "plan-opt", 200.0, 1.2, bench_file=target,
            extra={"steps_before": 40, "steps_after": 20, "ratio": 99.0},
        )
        assert row["steps_before"] == 40 and row["steps_after"] == 20
        assert row["ratio"] == 1.2  # standard keys win over extra

    def test_corrupt_file_starts_fresh(self, recorder, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        with open(target, "w") as fh:
            fh.write('[{"task": "co2", "backe')  # truncated document
        rows = recorder.record_bench("co2", "fast", 10.0, 1.0, bench_file=target)
        assert len(rows) == 1

    def test_interrupted_write_leaves_file_intact(self, recorder, tmp_path):
        target = str(tmp_path / "BENCH_test.json")
        recorder.record_bench("co2", "baseline", 100.0, 1.0, bench_file=target)
        with open(target) as fh:
            before = fh.read()

        real_dump = recorder.json.dump

        def dying_dump(obj, fh, **kwargs):
            fh.write('[{"task": "co2", "backe')  # half a document...
            fh.flush()
            raise KeyboardInterrupt  # ...then the run dies mid-write

        recorder.json.dump = dying_dump
        try:
            with pytest.raises(KeyboardInterrupt):
                recorder.record_bench("co2", "fast", 150.0, 1.5, bench_file=target)
        finally:
            recorder.json.dump = real_dump

        with open(target) as fh:
            assert fh.read() == before  # old complete list still served
        json.loads(before)  # and it is valid JSON
        assert not os.path.exists(target + ".tmp")  # temp cleaned up

    def test_bench_path_points_at_repo_root(self, recorder):
        path = recorder.bench_path("pr6")
        assert os.path.basename(path) == "BENCH_pr6.json"
