"""Tests for the documentation checker itself (``scripts.check_docs``).

The checker gates CI's docs job, so its failure modes need pinning: a
broken relative link, a mentioned-but-missing repo path, a CLI
invocation that no longer parses, and a public export without a
docstring must each produce exactly one targeted failure — and clean
inputs none.
"""

import pathlib
import types

import pytest

from scripts import check_docs


def _doc(tmp_path: pathlib.Path, text: str) -> pathlib.Path:
    doc = tmp_path / "page.md"
    doc.write_text(text, encoding="utf-8")
    return doc


class TestLinkCheck:
    def test_broken_relative_link_fails(self, tmp_path):
        doc = _doc(tmp_path, "See [the guide](missing/guide.md) for more.")
        errors = check_docs._check_links(doc, doc.read_text())
        assert len(errors) == 1
        assert "broken link" in errors[0] and "missing/guide.md" in errors[0]

    def test_existing_link_passes(self, tmp_path):
        (tmp_path / "guide.md").write_text("x")
        doc = _doc(tmp_path, "See [the guide](guide.md).")
        assert check_docs._check_links(doc, doc.read_text()) == []

    def test_external_and_anchor_links_skipped(self, tmp_path):
        doc = _doc(
            tmp_path,
            "[web](https://example.com/x) [mail](mailto:a@b.c) [top](#top)",
        )
        assert check_docs._check_links(doc, doc.read_text()) == []

    def test_anchor_suffix_stripped(self, tmp_path):
        (tmp_path / "guide.md").write_text("x")
        doc = _doc(tmp_path, "[section](guide.md#section)")
        assert check_docs._check_links(doc, doc.read_text()) == []


class TestPathCheck:
    def test_missing_repo_path_fails(self, tmp_path):
        doc = _doc(tmp_path, "Run `tests/no_such_test_module.py` first.")
        errors = check_docs._check_paths(doc, doc.read_text())
        assert len(errors) == 1
        assert "missing path" in errors[0]
        assert "tests/no_such_test_module.py" in errors[0]

    def test_existing_repo_path_passes(self, tmp_path):
        doc = _doc(tmp_path, "Run `scripts/check_docs.py` first.")
        assert check_docs._check_paths(doc, doc.read_text()) == []

    def test_glob_and_placeholder_paths_skipped(self, tmp_path):
        doc = _doc(tmp_path, "All of `tests/*.py` and `docs/<name>.md`.")
        assert check_docs._check_paths(doc, doc.read_text()) == []


class TestExternalPathCheck:
    def test_dangling_absolute_path_fails(self, tmp_path):
        doc = _doc(
            tmp_path,
            "Material lives under `/root/no_such_dir_xyz/files` now.",
        )
        errors = check_docs._check_external_paths(doc, doc.read_text())
        assert len(errors) == 1
        assert "dangling filesystem path" in errors[0]
        assert "/root/no_such_dir_xyz/files" in errors[0]

    def test_existing_absolute_path_passes(self, tmp_path):
        target = tmp_path / "exists.md"
        target.write_text("x")
        doc = _doc(tmp_path, f"See `{target}` for details.")
        assert check_docs._check_external_paths(doc, doc.read_text()) == []

    def test_trailing_punctuation_stripped(self, tmp_path):
        target = tmp_path / "exists.md"
        target.write_text("x")
        doc = _doc(tmp_path, f"The notes are in {target}.")
        assert check_docs._check_external_paths(doc, doc.read_text()) == []

    def test_glob_and_placeholder_paths_skipped(self, tmp_path):
        doc = _doc(
            tmp_path,
            "Caches live in /tmp/repro-*/cache and /root/<user>/dir.",
        )
        assert check_docs._check_external_paths(doc, doc.read_text()) == []

    def test_each_path_reported_once(self, tmp_path):
        doc = _doc(
            tmp_path,
            "See /root/gone_dir_abc/a.py and again /root/gone_dir_abc/a.py.",
        )
        errors = check_docs._check_external_paths(doc, doc.read_text())
        assert len(errors) == 1


class TestCliCheck:
    def test_unparseable_invocation_fails(self, tmp_path):
        doc = _doc(tmp_path, "Run `python -m repro.eval frobnicate --bogus`.")
        errors = check_docs._check_cli_commands(doc, doc.read_text())
        assert len(errors) == 1
        assert "does not parse" in errors[0]

    def test_unknown_flag_fails(self, tmp_path):
        doc = _doc(
            tmp_path, "Run `python -m repro.eval table1 --no-such-flag`."
        )
        errors = check_docs._check_cli_commands(doc, doc.read_text())
        assert len(errors) == 1

    def test_valid_invocation_passes(self, tmp_path):
        doc = _doc(
            tmp_path,
            "Run `python -m repro.eval campaign --task co2 --fault uniform "
            "--executor batched --scenario-batched --scenario-limit 2`.",
        )
        assert check_docs._check_cli_commands(doc, doc.read_text()) == []

    def test_schematic_ellipsis_skipped(self, tmp_path):
        doc = _doc(tmp_path, "Run `python -m repro.eval campaign ...`.")
        assert check_docs._check_cli_commands(doc, doc.read_text()) == []

    def test_backslash_continuation_joined(self, tmp_path):
        doc = _doc(
            tmp_path,
            "```bash\npython -m repro.eval campaign --task audio \\\n"
            "    --fault bitflip --no-such-flag\n```\n",
        )
        errors = check_docs._check_cli_commands(doc, doc.read_text())
        assert len(errors) == 1
        assert "--no-such-flag" in errors[0]


class TestDocstringAudit:
    def _module(self, name="fake.mod", **symbols):
        module = types.ModuleType(name)
        module.__all__ = list(symbols)
        for attr, value in symbols.items():
            setattr(module, attr, value)
        return module

    def test_missing_function_docstring_fails(self):
        def undocumented():
            pass

        module = self._module(undocumented=undocumented)
        errors = check_docs._module_docstring_errors(module)
        assert len(errors) == 1
        assert "undocumented" in errors[0] and "no docstring" in errors[0]

    def test_missing_class_docstring_fails(self):
        class Undocumented:
            pass

        errors = check_docs._module_docstring_errors(
            self._module(Undocumented=Undocumented)
        )
        assert len(errors) == 1 and "public class" in errors[0]

    def test_documented_symbols_pass(self):
        def documented():
            """Does a thing."""

        class Documented:
            """Is a thing."""

        errors = check_docs._module_docstring_errors(
            self._module(documented=documented, Documented=Documented)
        )
        assert errors == []

    def test_data_constants_exempt(self):
        errors = check_docs._module_docstring_errors(
            self._module(EXECUTORS=("a", "b"), PRESETS={"tiny": 1})
        )
        assert errors == []

    def test_inherited_object_doc_does_not_count(self):
        # inspect.getdoc would otherwise fall back to a base docstring;
        # a class documented only by ``object`` must still fail... but
        # note inspect.getdoc(object subclass) returns None for undecorated
        # classes on 3.11, which is exactly what the checker relies on.
        class Plain:
            pass

        assert check_docs._module_docstring_errors(self._module(P=Plain))

    def test_phantom_export_fails(self):
        module = types.ModuleType("fake.mod")
        module.__all__ = ["ghost"]
        errors = check_docs._module_docstring_errors(module)
        assert len(errors) == 1 and "missing" in errors[0]

    def test_module_without_all_fails(self):
        module = types.ModuleType("fake.mod")
        errors = check_docs._module_docstring_errors(module)
        assert len(errors) == 1 and "__all__" in errors[0]

    def test_audited_namespaces_are_clean(self):
        # The real repo namespaces must stay documented.
        assert check_docs._check_docstrings() == []


class TestEndToEnd:
    def test_main_passes_on_repo_docs(self, capsys):
        assert check_docs.main() == 0
        out = capsys.readouterr().out
        assert "OK" in out

    def test_repo_docs_individually_clean(self):
        for doc in check_docs._doc_files():
            text = doc.read_text(encoding="utf-8")
            assert check_docs._check_links(doc, text) == []
            assert check_docs._check_paths(doc, text) == []
            assert check_docs._check_external_paths(doc, text) == []
            assert check_docs._check_cli_commands(doc, text) == []

    def test_roadmap_is_audited(self):
        names = [doc.name for doc in check_docs._doc_files()]
        assert "ROADMAP.md" in names
