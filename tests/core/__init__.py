"""Test package."""
