"""Property-based tests tying InvertedNorm to the paper's noise model.

The central hypothesis of Section III: the stochastic affine transformation
injects exactly the additive + multiplicative perturbation family that NVM
non-idealities produce, and the trailing normalization makes the layer's
output distribution invariant to global input corruption.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InvertedNorm
from repro.tensor import Tensor, manual_seed


@given(st.floats(0.2, 5.0))
@settings(max_examples=40, deadline=None)
def test_output_invariant_to_global_input_scaling(scale):
    """Global multiplicative corruption of the weighted sum is absorbed.

    If every pre-norm activation is scaled by a common factor (the
    paper's abstract model of multiplicative conductance variation acting
    uniformly), the inverted-norm output is unchanged — because
    normalization runs last.  This is the mechanism behind the
    graceful-degradation curves.
    """
    manual_seed(0)
    layer = InvertedNorm(6, p=0.0)
    layer.bias.data[:] = 0.0  # bias-free layer: pure multiplicative path
    layer.eval()
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 6, 4, 4))
    clean = layer(Tensor(x)).data
    corrupted = layer(Tensor(scale * x)).data
    # Exact up to the normalization epsilon (eps=1e-5 inside the sqrt).
    np.testing.assert_allclose(corrupted, clean, atol=5e-4)


@given(st.floats(0.2, 5.0), st.floats(-3.0, 3.0))
@settings(max_examples=40, deadline=None)
def test_full_affine_invariance_with_uniform_gamma(scale, shift):
    """With uniform affine vectors the layer absorbs global affine
    corruption entirely: ``gamma * (s x + c) + beta`` then differs from
    ``gamma * x + beta`` by one global affine map, which the trailing
    normalization removes.  (With per-channel parameters the corruption
    becomes channel-dependent and cancellation is only approximate —
    which is why the empirical robustness curves degrade gracefully
    rather than not at all.)"""
    manual_seed(0)
    layer = InvertedNorm(6, p=0.0)
    layer.weight.data[:] = 1.7  # uniform gamma
    layer.bias.data[:] = -0.4   # uniform beta
    layer.eval()
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 6, 4, 4))
    clean = layer(Tensor(x)).data
    corrupted = layer(Tensor(scale * x + shift)).data
    # Exact up to the normalization epsilon (eps=1e-5 inside the sqrt).
    np.testing.assert_allclose(corrupted, clean, atol=5e-4)


@given(st.floats(0.05, 0.6))
@settings(max_examples=25, deadline=None)
def test_conventional_order_not_invariant(scale):
    """The conventional order (normalize, then affine) re-introduces the
    learned scale/shift, so per-channel corruption survives to the output —
    the contrast that motivates the inversion."""
    from repro.core import ConventionalNormAdapter

    manual_seed(3)
    adapter = ConventionalNormAdapter(6, p=0.0, sigma_gamma=0.5, sigma_beta=0.5)
    adapter.eval()
    rng = np.random.default_rng(1)
    x = rng.normal(size=(3, 6, 4, 4))
    out = adapter(x if isinstance(x, Tensor) else Tensor(x)).data
    # Per-channel corruption: scale one channel only.
    corrupted = x.copy()
    corrupted[:, 2] *= 1.0 + scale
    out_corrupted = adapter(Tensor(corrupted)).data
    assert not np.allclose(out, out_corrupted, atol=1e-6)


@given(st.integers(8, 64), st.floats(0.0, 0.8))
@settings(max_examples=25, deadline=None)
def test_effective_gamma_always_positive_mean(channels, p):
    """E[gamma_eff] = (1-p) gamma + p stays near 1 for gamma ~ N(1, s):
    dropping to ONE (not zero) preserves the multiplicative identity."""
    manual_seed(5)
    layer = InvertedNorm(channels, p=p)
    layer.eval()
    gamma_eff, beta_eff = layer._effective_affine()
    assert abs(gamma_eff.data.mean() - 1.0) < 0.5
    assert abs(beta_eff.data.mean()) < 0.5


@given(st.integers(1, 6))
@settings(max_examples=10, deadline=None)
def test_mc_average_converges_to_expected_affine(batch):
    """Averaging many sampled affine transforms approaches the closed-form
    expectation used by the deterministic eval path."""
    manual_seed(9)
    layer = InvertedNorm(8, p=0.4, granularity="element",
                         sigma_gamma=0.4, sigma_beta=0.4)
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(batch, 8, 3, 3)))
    layer.eval()
    expected = layer(x).data
    layer.stochastic_inference = True
    samples = np.stack([layer(x).data for _ in range(400)])
    layer.stochastic_inference = False
    # MC mean of normalized outputs approaches the deterministic path
    # loosely (normalization is nonlinear, so equality is not exact).
    assert np.abs(samples.mean(axis=0) - expected).mean() < 0.15
