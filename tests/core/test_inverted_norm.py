"""Tests for the paper's contribution: InvertedNorm + affine dropout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AffineDropoutSampler, ConventionalNormAdapter, InvertedNorm
from repro.nn.normalization import LayerNorm
from repro.tensor import Tensor, check_gradients, manual_seed


def t(rng, *shape, grad=False):
    return Tensor(rng.normal(size=shape), requires_grad=grad)


class TestConstruction:
    def test_normal_initialization_statistics(self):
        manual_seed(0)
        layer = InvertedNorm(5000, p=0.3, sigma_gamma=0.3, sigma_beta=0.2)
        assert abs(layer.weight.data.mean() - 1.0) < 0.02
        assert abs(layer.weight.data.std() - 0.3) < 0.02
        assert abs(layer.bias.data.mean()) < 0.02
        assert abs(layer.bias.data.std() - 0.2) < 0.02

    def test_uniform_initialization_ranges(self):
        manual_seed(0)
        layer = InvertedNorm(5000, init="uniform", k_gamma=1.0, k_beta=0.5)
        assert layer.weight.data.min() >= 0.0 and layer.weight.data.max() <= 1.0
        assert layer.bias.data.min() >= -0.5 and layer.bias.data.max() <= 0.5

    def test_initializations_differ_per_channel(self):
        # Section III-C: identical init would make all channels update
        # identically — random init must break the symmetry.
        layer = InvertedNorm(64)
        assert len(np.unique(layer.weight.data)) == 64

    def test_invalid_mode_raises(self):
        with pytest.raises(ValueError):
            InvertedNorm(4, mode="batch")

    def test_invalid_init_raises(self):
        with pytest.raises(ValueError):
            InvertedNorm(4, init="constant")

    def test_group_divisibility_checked(self):
        with pytest.raises(ValueError):
            InvertedNorm(6, mode="group", num_groups=4)

    def test_channel_mismatch_raises(self, rng):
        layer = InvertedNorm(4)
        with pytest.raises(ValueError):
            layer(t(rng, 2, 5, 3, 3))


class TestInvertedOrder:
    def test_output_is_normalized_regardless_of_affine(self, rng):
        """The defining property: affine runs FIRST, so the output is
        always zero-mean unit-variance per instance — unlike conventional
        norm where the affine transformation de-standardizes the output."""
        layer = InvertedNorm(6, p=0.3)
        out = layer(t(rng, 4, 6, 5, 5)).data
        flat = out.reshape(4, -1)
        np.testing.assert_allclose(flat.mean(axis=1), 0.0, atol=1e-9)
        np.testing.assert_allclose(flat.var(axis=1), 1.0, atol=1e-3)

    def test_conventional_output_not_standardized(self, rng):
        conventional = LayerNorm(6)
        conventional.weight.data[:] = np.linspace(0.5, 3.0, 6)
        conventional.bias.data[:] = 1.0
        out = conventional(t(rng, 4, 6, 5, 5)).data
        assert abs(out.reshape(4, -1).mean(axis=1)).max() > 0.1

    def test_affine_before_norm_changes_result(self, rng):
        """Affine-then-normalize differs from normalize-then-affine."""
        manual_seed(3)
        inverted = InvertedNorm(6, p=0.0, sigma_gamma=0.5, sigma_beta=0.5)
        inverted.eval()
        adapter = ConventionalNormAdapter(6, p=0.0, sigma_gamma=0.5, sigma_beta=0.5)
        adapter._inner.weight.data[:] = inverted.weight.data
        adapter._inner.bias.data[:] = inverted.bias.data
        adapter.eval()
        x = t(rng, 2, 6, 4, 4)
        assert not np.allclose(inverted(x).data, adapter(x).data)

    def test_group_mode_statistics(self, rng):
        layer = InvertedNorm(8, mode="group", num_groups=4)
        out = layer(t(rng, 3, 8, 4, 4)).data
        grouped = out.reshape(3, 4, 2, 4, 4)
        np.testing.assert_allclose(grouped.mean(axis=(2, 3, 4)), 0.0, atol=1e-9)

    def test_works_on_2d_and_3d_inputs(self, rng):
        layer = InvertedNorm(6)
        assert layer(t(rng, 4, 6)).shape == (4, 6)
        assert layer(t(rng, 4, 6, 9)).shape == (4, 6, 9)


class TestAffineDropout:
    def test_vector_granularity_all_or_nothing(self):
        sampler = AffineDropoutSampler(p=0.5, granularity="vector")
        rng = np.random.default_rng(0)
        for _ in range(50):
            m_g, m_b = sampler.sample(16, rng)
            assert len(np.unique(m_g)) == 1
            assert len(np.unique(m_b)) == 1

    def test_element_granularity_mixes(self):
        sampler = AffineDropoutSampler(p=0.5, granularity="element")
        rng = np.random.default_rng(0)
        m_g, _ = sampler.sample(1000, rng)
        assert 0 < m_g.sum() < 1000

    def test_keep_probability(self):
        sampler = AffineDropoutSampler(p=0.3, granularity="element")
        rng = np.random.default_rng(0)
        keeps = [sampler.sample(1000, rng)[0].mean() for _ in range(20)]
        assert abs(np.mean(keeps) - 0.7) < 0.02

    def test_weight_and_bias_masks_independent(self):
        sampler = AffineDropoutSampler(p=0.5, granularity="vector")
        rng = np.random.default_rng(1)
        draws = [sampler.sample(4, rng) for _ in range(200)]
        g = np.array([d[0][0] for d in draws])
        b = np.array([d[1][0] for d in draws])
        # Not perfectly correlated (independent draws).
        assert 0.3 < (g == b).mean() < 0.7

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            AffineDropoutSampler(p=1.0)

    def test_invalid_granularity_raises(self):
        with pytest.raises(ValueError):
            AffineDropoutSampler(p=0.3, granularity="channel")

    def test_dropped_weight_becomes_one_dropped_bias_zero(self, rng):
        """Fig. 3: weights drop to ONE (identity scaling), biases to ZERO."""
        manual_seed(0)
        layer = InvertedNorm(4, p=0.99, sigma_gamma=0.5, sigma_beta=0.5)
        x = t(rng, 2, 4, 3, 3)
        ref = InvertedNorm(4, p=0.0)
        ref.weight.data[:] = 1.0
        ref.bias.data[:] = 0.0
        # With p≈1 every sampled forward uses gamma=1, beta=0.
        np.testing.assert_allclose(layer(x).data, ref(x).data, atol=1e-9)

    def test_sampling_changes_output_between_passes(self, rng):
        layer = InvertedNorm(8, p=0.5, sigma_gamma=0.5, sigma_beta=0.5,
                             granularity="element")
        x = t(rng, 2, 8, 3, 3)
        outs = [layer(x).data.copy() for _ in range(8)]
        assert any(not np.array_equal(outs[0], o) for o in outs[1:])

    def test_deterministic_eval_uses_expected_affine(self, rng):
        layer = InvertedNorm(4, p=0.3)
        layer.eval()
        x = t(rng, 2, 4, 3, 3)
        np.testing.assert_array_equal(layer(x).data, layer(x).data)

    def test_stochastic_inference_flag(self, rng):
        layer = InvertedNorm(8, p=0.5, granularity="element",
                             sigma_gamma=0.5, sigma_beta=0.5)
        layer.eval()
        layer.stochastic_inference = True
        x = t(rng, 2, 8, 3, 3)
        outs = [layer(x).data.copy() for _ in range(8)]
        assert any(not np.array_equal(outs[0], o) for o in outs[1:])

    def test_frozen_mask_scope(self, rng):
        layer = InvertedNorm(8, p=0.5, granularity="element")
        layer.mask_scope = "frozen"
        x = t(rng, 2, 8, 3, 3)
        a = layer(x).data.copy()
        b = layer(x).data.copy()
        np.testing.assert_array_equal(a, b)
        layer.resample()
        found_different = False
        for _ in range(10):
            layer.resample()
            if not np.array_equal(layer(x).data, a):
                found_different = True
                break
        assert found_different


class TestGradients:
    def test_gradcheck_eval_mode(self, rng):
        layer = InvertedNorm(4, p=0.3)
        layer.eval()
        x = t(rng, 3, 4, 4, 4, grad=True)
        check_gradients(lambda: layer(x), [x, layer.weight, layer.bias])

    def test_gradcheck_group_mode(self, rng):
        layer = InvertedNorm(8, p=0.3, mode="group", num_groups=2)
        layer.eval()
        x = t(rng, 2, 8, 3, 3, grad=True)
        check_gradients(lambda: layer(x), [x, layer.weight, layer.bias])

    def test_gradients_flow_through_sampled_affine(self, rng):
        manual_seed(1)
        layer = InvertedNorm(4, p=0.3, granularity="element")
        layer.mask_scope = "frozen"  # deterministic for gradcheck
        x = t(rng, 2, 4, 3, 3, grad=True)
        check_gradients(lambda: layer(x), [x, layer.weight, layer.bias])

    def test_dropped_parameters_receive_no_gradient(self, rng):
        manual_seed(0)
        layer = InvertedNorm(4, p=0.99)
        x = t(rng, 2, 4, 3, 3)
        layer(x).sum().backward()
        # All weights dropped to 1 / biases to 0 → no gradient signal.
        np.testing.assert_allclose(layer.weight.grad, 0.0, atol=1e-12)
        np.testing.assert_allclose(layer.bias.grad, 0.0, atol=1e-12)


class TestConventionalOrderAdapter:
    def test_shares_parameters_with_inner(self):
        adapter = ConventionalNormAdapter(4, p=0.3)
        assert adapter.weight is adapter._inner.weight
        assert adapter.bias is adapter._inner.bias

    def test_output_not_standardized_when_affine_active(self, rng):
        manual_seed(5)
        adapter = ConventionalNormAdapter(6, p=0.0, sigma_gamma=0.8, sigma_beta=0.8)
        adapter.eval()
        out = adapter(t(rng, 4, 6, 5, 5)).data
        assert abs(out.reshape(4, -1).mean(axis=1)).max() > 0.05


@given(st.integers(2, 32), st.floats(0.0, 0.9))
@settings(max_examples=25, deadline=None)
def test_property_output_always_standardized(channels, p):
    """Normalization-last guarantees standardized outputs for ANY p."""
    manual_seed(7)
    layer = InvertedNorm(channels, p=p)
    rng = np.random.default_rng(0)
    x = Tensor(rng.normal(size=(3, channels, 4)))
    out = layer(x).data.reshape(3, -1)
    np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-8)
    np.testing.assert_allclose(out.var(axis=1), 1.0, atol=1e-2)
