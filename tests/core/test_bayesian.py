"""Tests for Monte Carlo Bayesian inference wrappers."""

import numpy as np
import pytest

from repro import nn
from repro.core import (
    BayesianClassifier,
    BayesianRegressor,
    InvertedNorm,
    enable_stochastic_inference,
    mc_forward,
    stochastic_inference,
)
from repro.tensor import Tensor, manual_seed


def make_stochastic_classifier(in_dim=6, classes=4):
    return nn.Sequential(
        nn.Linear(in_dim, 32),
        InvertedNorm(32, p=0.4, granularity="element"),
        nn.ReLU(),
        nn.Dropout(0.3),
        nn.Linear(32, classes),
    )


class TestStochasticInferenceSwitch:
    def test_enable_sets_all_stochastic_modules(self):
        model = make_stochastic_classifier()
        enable_stochastic_inference(model, True)
        flags = [
            m.stochastic_inference
            for m in model.modules()
            if isinstance(m, nn.StochasticModule)
        ]
        assert flags and all(flags)

    def test_context_manager_restores(self):
        model = make_stochastic_classifier()
        with stochastic_inference(model):
            inner_flags = [
                m.stochastic_inference
                for m in model.modules()
                if isinstance(m, nn.StochasticModule)
            ]
        outer_flags = [
            m.stochastic_inference
            for m in model.modules()
            if isinstance(m, nn.StochasticModule)
        ]
        assert all(inner_flags) and not any(outer_flags)


class TestMCForward:
    def test_shape(self, rng):
        model = make_stochastic_classifier()
        out = mc_forward(model, Tensor(rng.normal(size=(5, 6))), 7)
        assert out.shape == (7, 5, 4)

    def test_samples_differ(self, rng):
        model = make_stochastic_classifier()
        out = mc_forward(model, Tensor(rng.normal(size=(5, 6))), 4)
        assert not np.allclose(out[0], out[1])

    def test_no_graph_is_built(self, rng):
        model = make_stochastic_classifier()
        mc_forward(model, Tensor(rng.normal(size=(3, 6))), 2)
        assert all(p.grad is None for p in model.parameters())

    def test_custom_forward(self, rng):
        model = make_stochastic_classifier()
        out = mc_forward(
            model, Tensor(rng.normal(size=(3, 6))), 2, forward=lambda x: model(x) * 2.0
        )
        assert out.shape == (2, 3, 4)


class TestBayesianClassifier:
    def test_probabilities_valid(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=5)
        proba = clf.predict_proba(Tensor(rng.normal(size=(8, 6))))
        assert proba.shape == (8, 4)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert (proba >= 0).all()

    def test_predict_labels_in_range(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=3)
        labels = clf.predict(Tensor(rng.normal(size=(8, 6))))
        assert set(labels) <= set(range(4))

    def test_nll_nonnegative(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=3)
        x = Tensor(rng.normal(size=(8, 6)))
        assert clf.nll(x, np.zeros(8, dtype=int)) >= 0.0

    def test_per_input_nll_is_neg_log_confidence(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=5)
        x = Tensor(rng.normal(size=(8, 6)))
        manual_seed(42)
        nll = clf.per_input_nll(x)
        manual_seed(42)
        conf = clf.predict_proba(x).max(axis=-1)
        np.testing.assert_allclose(nll, -np.log(conf + 1e-12))
        assert nll.shape == (8,) and (nll >= 0).all()

    def test_entropy_and_mutual_information(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=6)
        x = Tensor(rng.normal(size=(5, 6)))
        entropy = clf.predictive_entropy(x)
        mi = clf.mutual_information(x)
        assert entropy.shape == (5,) and mi.shape == (5,)
        assert (entropy >= -1e-9).all()
        assert (mi >= -1e-6).all()  # MI is nonnegative up to MC noise
        assert (mi <= entropy + 1e-6).all()

    def test_accuracy_bounds(self, rng):
        clf = BayesianClassifier(make_stochastic_classifier(), num_samples=3)
        acc = clf.accuracy(Tensor(rng.normal(size=(10, 6))), np.zeros(10, dtype=int))
        assert 0.0 <= acc <= 1.0

    def test_invalid_num_samples(self):
        with pytest.raises(ValueError):
            BayesianClassifier(make_stochastic_classifier(), num_samples=0)

    def test_more_samples_reduce_prediction_variance(self, rng):
        manual_seed(0)
        model = make_stochastic_classifier()
        x = Tensor(rng.normal(size=(16, 6)))

        def spread(num_samples):
            probs = [
                BayesianClassifier(model, num_samples).predict_proba(x)
                for _ in range(6)
            ]
            return np.std(np.stack(probs), axis=0).mean()

        assert spread(20) < spread(1)


class TestBayesianRegressor:
    def _model(self):
        return nn.Sequential(
            nn.Linear(3, 16),
            InvertedNorm(16, p=0.4, granularity="element"),
            nn.Tanh(),
            nn.Linear(16, 1),
        )

    def test_predict_shape(self, rng):
        reg = BayesianRegressor(self._model(), num_samples=4)
        out = reg.predict(Tensor(rng.normal(size=(6, 3))))
        assert out.shape == (6, 1)

    def test_predict_with_std(self, rng):
        reg = BayesianRegressor(self._model(), num_samples=8)
        mean, std = reg.predict_with_std(Tensor(rng.normal(size=(6, 3))))
        assert mean.shape == std.shape == (6, 1)
        assert (std >= 0).all()
        assert std.max() > 0  # stochastic layers produce spread

    def test_rmse(self, rng):
        reg = BayesianRegressor(self._model(), num_samples=4)
        x = Tensor(rng.normal(size=(6, 3)))
        value = reg.rmse(x, np.zeros((6, 1)))
        assert value >= 0.0

    def test_custom_forward(self, rng):
        model = self._model()
        reg = BayesianRegressor(
            model, num_samples=3, forward=lambda x: model(x).reshape(-1)
        )
        assert reg.predict(Tensor(rng.normal(size=(6, 3)))).shape == (6,)
