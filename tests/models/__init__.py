"""Test package."""
