"""Tests for the four model topologies across all method configurations."""

import numpy as np
import pytest

from repro.core import InvertedNorm
from repro.models import (
    M5,
    LSTMForecaster,
    MethodConfig,
    ResNet18,
    UNet,
    all_methods,
    conventional,
    proposed,
    spatial_spindrop,
    spindrop,
)
from repro.nn import BatchNorm2d, Dropout, SpatialDropout2d
from repro.quant import QuantConv2d, QuantLSTMCell, SignActivation
from repro.tensor import Tensor, manual_seed


@pytest.fixture(params=["conventional", "spindrop", "spatial-spindrop", "proposed"])
def method(request):
    return MethodConfig(name=request.param)


class TestMethodConfig:
    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            MethodConfig(name="magic")

    def test_proposed_builds_inverted_norm(self):
        norm = proposed().make_norm(8)
        assert isinstance(norm, InvertedNorm)

    def test_conventional_builds_batchnorm(self):
        norm = conventional().make_norm(8, dims="2d")
        assert isinstance(norm, BatchNorm2d)

    def test_spindrop_dropout_type(self):
        assert isinstance(spindrop().make_dropout(), Dropout)
        assert isinstance(spatial_spindrop().make_dropout(), SpatialDropout2d)

    def test_proposed_has_no_block_dropout(self):
        from repro.nn import Identity

        assert isinstance(proposed().make_dropout(), Identity)

    def test_bayesian_flags(self):
        assert not conventional().is_bayesian
        assert spindrop().is_bayesian
        assert proposed().is_bayesian

    def test_with_updates_frozen_config(self):
        m = proposed().with_(p=0.5)
        assert m.p == 0.5 and m.name == "proposed"

    def test_all_methods_order(self):
        names = [m.name for m in all_methods()]
        assert names == ["conventional", "spindrop", "spatial-spindrop", "proposed"]


class TestResNet18:
    def test_forward_shape(self, method, rng):
        manual_seed(0)
        model = ResNet18(method, base_width=8)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        assert out.shape == (2, 10)

    def test_backward_reaches_all_parameters(self, rng):
        manual_seed(0)
        model = ResNet18(proposed(), base_width=8)
        out = model(Tensor(rng.normal(size=(2, 3, 16, 16))))
        from repro.train import cross_entropy

        cross_entropy(out, np.array([1, 2])).backward()
        with_grad = sum(p.grad is not None for p in model.parameters())
        assert with_grad == len(model.parameters())

    def test_block_convs_are_binary(self):
        model = ResNet18(proposed(), base_width=8)
        quant_convs = [m for m in model.modules() if isinstance(m, QuantConv2d)]
        assert quant_convs
        assert all(c.weight_bits == 1 for c in quant_convs)

    def test_has_sign_activations(self):
        model = ResNet18(proposed(), base_width=8)
        signs = [m for m in model.modules() if isinstance(m, SignActivation)]
        assert len(signs) == 16  # 8 blocks x 2

    def test_stage_count(self):
        model = ResNet18(proposed(), base_width=8)
        assert len(model.stages) == 8  # 4 stages x 2 blocks

    def test_proposed_norm_count(self):
        model = ResNet18(proposed(), base_width=8)
        norms = [m for m in model.modules() if isinstance(m, InvertedNorm)]
        assert len(norms) == 17  # stem + 2 per block

    def test_width_scaling(self):
        narrow = ResNet18(proposed(), base_width=8).num_parameters()
        wide = ResNet18(proposed(), base_width=16).num_parameters()
        assert wide > 3 * narrow


class TestM5:
    def test_forward_shape(self, method, rng):
        manual_seed(0)
        model = M5(method, base_width=8)
        out = model(Tensor(rng.normal(size=(2, 1, 256))))
        assert out.shape == (2, 10)

    def test_eight_bit_weights(self):
        model = M5(proposed(), base_width=8)
        from repro.quant import QuantConv1d, QuantLinear

        convs = [m for m in model.modules() if isinstance(m, QuantConv1d)]
        assert len(convs) == 4  # the five-layer M5: 4 convs + classifier
        assert all(c.weight_bits == 8 for c in convs)
        heads = [m for m in model.modules() if isinstance(m, QuantLinear)]
        assert len(heads) == 1 and heads[0].weight_bits == 8

    def test_backward(self, rng):
        manual_seed(0)
        model = M5(proposed(), base_width=8)
        out = model(Tensor(rng.normal(size=(2, 1, 128))))
        from repro.train import cross_entropy

        cross_entropy(out, np.array([0, 1])).backward()
        assert all(p.grad is not None for p in model.parameters())


class TestLSTMForecaster:
    def test_forward_shape(self, method, rng):
        manual_seed(0)
        model = LSTMForecaster(method, hidden_size=8)
        out = model(Tensor(rng.normal(size=(5, 12, 1))))
        assert out.shape == (5,)

    def test_two_quantized_layers(self):
        model = LSTMForecaster(proposed(), hidden_size=8)
        cells = [m for m in model.modules() if isinstance(m, QuantLSTMCell)]
        assert len(cells) == 2
        assert all(c.weight_bits == 8 for c in cells)

    def test_residual_head_tracks_last_value(self, rng):
        """Prediction stays near the last observation for smooth series."""
        manual_seed(0)
        model = LSTMForecaster(proposed(), hidden_size=8)
        model.eval()
        x = np.linspace(0, 1, 12).reshape(1, 12, 1) * np.ones((4, 1, 1))
        out = model(Tensor(x)).data
        assert np.abs(out - 1.0).max() < 3.0  # anchored at last value

    def test_forecast_autoregressive_shape(self, rng):
        manual_seed(0)
        model = LSTMForecaster(proposed(), hidden_size=8)
        model.eval()
        preds = model.forecast(Tensor(rng.normal(size=(3, 12, 1))), steps=5)
        assert preds.shape == (3, 5)

    def test_masks_frozen_within_sequence(self):
        model = LSTMForecaster(proposed(), hidden_size=8)
        stochastic = [
            m for m in model.modules() if isinstance(m, InvertedNorm)
        ]
        assert all(m.mask_scope == "frozen" for m in stochastic)


class TestUNet:
    def test_forward_shape(self, method, rng):
        manual_seed(0)
        model = UNet(method, base_width=8, depth=2)
        out = model(Tensor(rng.normal(size=(2, 1, 16, 16))))
        assert out.shape == (2, 16, 16)

    def test_base_width_must_be_multiple_of_8(self):
        with pytest.raises(ValueError):
            UNet(proposed(), base_width=6)

    def test_binary_weights_4bit_pact(self):
        from repro.quant import PACT

        model = UNet(proposed(), base_width=8, depth=2)
        convs = [m for m in model.modules() if isinstance(m, QuantConv2d)]
        assert all(c.weight_bits == 1 for c in convs)
        pacts = [m for m in model.modules() if isinstance(m, PACT)]
        assert pacts and all(p.bits == 4 for p in pacts)

    def test_proposed_uses_group_mode(self):
        model = UNet(proposed(), base_width=8, depth=2)
        norms = [m for m in model.modules() if isinstance(m, InvertedNorm)]
        assert norms and all(n.mode == "group" and n.num_groups == 8 for n in norms)

    def test_backward(self, rng):
        manual_seed(0)
        model = UNet(proposed(), base_width=8, depth=1)
        out = model(Tensor(rng.normal(size=(1, 1, 8, 8))))
        from repro.train import segmentation_loss

        segmentation_loss(out, (rng.random((1, 8, 8)) > 0.5).astype(float)).backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_depth_changes_bottleneck_resolution(self, rng):
        manual_seed(0)
        shallow = UNet(proposed(), base_width=8, depth=1)
        out = shallow(Tensor(rng.normal(size=(1, 1, 16, 16))))
        assert out.shape == (1, 16, 16)
