"""Test package."""
