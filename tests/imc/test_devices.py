"""Tests for the STT-MRAM device models (Fig. 4 physics)."""

import numpy as np
import pytest

from repro.imc import (
    MTJParams,
    bit_error_rate,
    read_margin,
    sample_resistances,
    switching_curve,
    switching_probability,
    tmr_at_temperature,
)


class TestSwitchingProbability:
    def test_monotone_in_voltage(self):
        volts = np.linspace(0.1, 0.6, 30)
        probs = switching_probability(volts, 10.0)
        assert (np.diff(probs) >= -1e-12).all()

    def test_monotone_in_pulse_width(self):
        pulses = np.logspace(0, 3, 30)
        probs = switching_probability(0.42, pulses)
        assert (np.diff(probs) >= -1e-12).all()

    def test_bounded_probability(self):
        volts = np.linspace(0.0, 1.0, 50)
        probs = switching_probability(volts, 100.0)
        assert (probs >= 0.0).all() and (probs <= 1.0).all()

    def test_critical_voltage_switches_fast(self):
        p = MTJParams()
        assert switching_probability(p.vc0, 5 * p.tau0_ns, p) > 0.99

    def test_low_voltage_rarely_switches(self):
        assert switching_probability(0.1, 10.0) < 1e-12

    def test_no_overflow_at_zero_voltage(self):
        prob = switching_probability(0.0, 1.0)
        assert np.isfinite(prob) and prob >= 0.0

    def test_switching_curve_family(self):
        pulses = np.logspace(0, 2, 10)
        curves = switching_curve([0.3, 0.4, 0.5], pulses)
        assert set(curves) == {0.3, 0.4, 0.5}
        # Higher voltage → uniformly higher switching probability.
        assert (curves[0.5] >= curves[0.4]).all()
        assert (curves[0.4] >= curves[0.3]).all()

    def test_stochastic_regime_usable_as_rng(self):
        """The SpinDrop implementations exploit the ~50% point as a RNG."""
        pulses = np.logspace(-1, 4, 2000)
        probs = switching_probability(0.40, pulses)
        idx = np.argmin(np.abs(probs - 0.5))
        assert 0.4 < probs[idx] < 0.6


class TestThermalResistance:
    def test_tmr_decreases_with_temperature(self):
        assert tmr_at_temperature(400) < tmr_at_temperature(300)

    def test_tmr_never_negative(self):
        assert tmr_at_temperature(5000) == 0.0

    def test_resistance_distributions_ordered(self, rng):
        r_p, r_ap = sample_resistances(300, 5000, rng)
        assert r_ap.mean() > r_p.mean()

    def test_distribution_means_track_model(self, rng):
        p = MTJParams()
        r_p, r_ap = sample_resistances(300, 20000, rng, p)
        np.testing.assert_allclose(r_p.mean(), p.r_p, rtol=0.01)
        np.testing.assert_allclose(r_ap.mean(), p.r_ap, rtol=0.01)

    def test_temperature_shrinks_separation(self, rng):
        cold = read_margin(300)
        hot = read_margin(450)
        assert hot < cold

    def test_bit_error_rate_grows_with_temperature(self):
        # Use a wide sigma so the overlap is visible at moderate T.
        params = MTJParams(sigma_r=0.25)
        cold = bit_error_rate(300, params)
        hot = bit_error_rate(500, params)
        assert hot >= cold
        assert 0.0 <= cold <= 1.0

    def test_bit_error_rate_nonzero_with_heavy_variation(self):
        params = MTJParams(sigma_r=0.5)
        assert bit_error_rate(400, params) > 0.0

    def test_deterministic_under_seed(self):
        assert bit_error_rate(400, seed=3) == bit_error_rate(400, seed=3)
