"""Tests for the analog crossbar simulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.imc import CrossbarArray, CrossbarConfig, CrossbarLinear, deploy_linear_layers
from repro.quant import QuantLinear, binarize_weight, fake_quantize_weight
from repro.quant.functional import QuantizedWeight
from repro.tensor import Tensor, manual_seed


def make_qw(rng, bits=8, shape=(12, 24)):
    if bits == 1:
        codes = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
        return QuantizedWeight(codes=codes, scale=np.asarray(0.05), bits=1)
    qmax = 2 ** (bits - 1) - 1
    codes = rng.integers(-qmax, qmax + 1, size=shape).astype(np.float64)
    return QuantizedWeight(codes=codes, scale=np.asarray(0.01), bits=bits)


class TestIdealCrossbar:
    @pytest.mark.parametrize("bits", [1, 4, 8])
    def test_matches_digital_reference(self, rng, bits):
        qw = make_qw(rng, bits)
        arr = CrossbarArray(qw, CrossbarConfig.ideal(), rng)
        x = rng.normal(size=(6, 24))
        np.testing.assert_allclose(
            arr.matvec(x), arr.ideal_result(x), rtol=1e-9, atol=1e-12
        )

    def test_tiling_preserves_result(self, rng):
        qw = make_qw(rng, 8, shape=(8, 100))
        whole = CrossbarArray(qw, CrossbarConfig.ideal(tile_rows=128), rng)
        tiled = CrossbarArray(qw, CrossbarConfig.ideal(tile_rows=16), rng)
        assert tiled.n_tiles == 7
        x = rng.normal(size=(3, 100))
        np.testing.assert_allclose(whole.matvec(x), tiled.matvec(x), rtol=1e-9)

    def test_rejects_non_2d(self, rng):
        qw = QuantizedWeight(
            codes=np.ones((2, 2, 2)), scale=np.asarray(1.0), bits=1
        )
        with pytest.raises(ValueError):
            CrossbarArray(qw, CrossbarConfig.ideal(), rng)

    def test_rejects_wrong_input_width(self, rng):
        arr = CrossbarArray(make_qw(rng), CrossbarConfig.ideal(), rng)
        with pytest.raises(ValueError):
            arr.matvec(rng.normal(size=(2, 7)))


class TestConverters:
    def test_adc_dac_error_small_at_8_bits(self, rng):
        qw = make_qw(rng, 8)
        arr = CrossbarArray(qw, CrossbarConfig(dac_bits=8, adc_bits=10), rng)
        x = rng.normal(size=(6, 24))
        ref = arr.ideal_result(x)
        rel = np.abs(arr.matvec(x) - ref).max() / np.abs(ref).max()
        assert rel < 0.1

    def test_coarse_adc_increases_error(self, rng):
        qw = make_qw(rng, 8)
        x = rng.normal(size=(6, 24))
        fine = CrossbarArray(qw, CrossbarConfig(dac_bits=None, adc_bits=12), rng)
        coarse = CrossbarArray(qw, CrossbarConfig(dac_bits=None, adc_bits=4), rng)
        ref = fine.ideal_result(x)
        err_fine = np.abs(fine.matvec(x) - ref).mean()
        err_coarse = np.abs(coarse.matvec(x) - ref).mean()
        assert err_coarse > err_fine


class TestNonIdealities:
    def test_conductance_variation_matches_algorithmic_model(self, rng):
        """Crossbar-level conductance variation behaves like the paper's
        multiplicative weight noise — the consistency argument that lets
        fault campaigns run at the algorithmic level."""
        qw = make_qw(rng, 8, shape=(16, 64))
        x = rng.normal(size=(32, 64))
        sigma = 0.05
        arr = CrossbarArray(
            qw, CrossbarConfig.ideal(sigma_conductance=sigma), np.random.default_rng(0)
        )
        ref = arr.ideal_result(x)
        errors = []
        for seed in range(12):
            a = CrossbarArray(
                qw,
                CrossbarConfig.ideal(sigma_conductance=sigma),
                np.random.default_rng(seed),
            )
            errors.append((a.matvec(x) - ref).std())
        observed = float(np.mean(errors))
        # Expected perturbation scale: conductance noise is applied to both
        # differential columns; magnitude comparable to sigma * |w| summed
        # in quadrature over the dot-product length.
        assert observed > 0.0
        per_weight = sigma * np.abs(qw.dequantize()).mean()
        lower = per_weight * np.sqrt(64) * np.abs(x).mean() * 0.3
        upper = per_weight * np.sqrt(64) * np.abs(x).mean() * 10.0
        assert lower < observed < upper

    def test_stuck_cells_change_result(self, rng):
        qw = make_qw(rng, 8)
        x = rng.normal(size=(4, 24))
        ideal = CrossbarArray(qw, CrossbarConfig.ideal(), np.random.default_rng(0))
        stuck = CrossbarArray(
            qw, CrossbarConfig.ideal(stuck_rate=0.3), np.random.default_rng(0)
        )
        assert not np.allclose(ideal.matvec(x), stuck.matvec(x))

    def test_energy_estimate_positive_and_scales(self, rng):
        qw = make_qw(rng, 8)
        arr = CrossbarArray(qw, CrossbarConfig.ideal(), rng)
        small = arr.energy_estimate(rng.normal(size=(1, 24)))
        large = arr.energy_estimate(rng.normal(size=(10, 24)))
        assert 0 < small < large


class TestCrossbarLinear:
    def test_ideal_deployment_matches_layer(self, rng):
        manual_seed(0)
        layer = QuantLinear(20, 6, weight_bits=8)
        x = Tensor(rng.normal(size=(4, 20)))
        ref = layer(x).data
        deployed = CrossbarLinear(layer, CrossbarConfig.ideal())
        np.testing.assert_allclose(deployed(x).data, ref, rtol=1e-9, atol=1e-12)

    def test_binary_layer_deployment(self, rng):
        manual_seed(0)
        layer = QuantLinear(20, 6, weight_bits=1)
        x = Tensor(rng.normal(size=(4, 20)))
        ref = layer(x).data
        deployed = CrossbarLinear(layer, CrossbarConfig.ideal())
        np.testing.assert_allclose(deployed(x).data, ref, rtol=1e-9, atol=1e-12)

    def test_deploy_swaps_all_linears(self, rng):
        model = nn.Sequential(
            QuantLinear(8, 8, weight_bits=8),
            nn.ReLU(),
            QuantLinear(8, 4, weight_bits=8),
        )
        count = deploy_linear_layers(model, CrossbarConfig.ideal())
        assert count == 2
        assert isinstance(model[0], CrossbarLinear)
        assert isinstance(model[2], CrossbarLinear)
        out = model(Tensor(rng.normal(size=(2, 8))))
        assert out.shape == (2, 4)


@given(st.integers(2, 8), st.integers(4, 40))
@settings(max_examples=15, deadline=None)
def test_property_ideal_crossbar_linearity(bits, rows):
    """Crossbar MVM is linear: f(a x1 + b x2) == a f(x1) + b f(x2)."""
    rng = np.random.default_rng(0)
    qmax = 2 ** (bits - 1) - 1
    codes = rng.integers(-qmax, qmax + 1, size=(6, rows)).astype(np.float64)
    qw = QuantizedWeight(codes=codes, scale=np.asarray(0.02), bits=bits)
    arr = CrossbarArray(qw, CrossbarConfig.ideal(), rng)
    x1, x2 = rng.normal(size=(2, 1, rows))
    combined = arr.matvec(2.0 * x1 - 3.0 * x2)
    separate = 2.0 * arr.matvec(x1) - 3.0 * arr.matvec(x2)
    np.testing.assert_allclose(combined, separate, rtol=1e-8, atol=1e-10)


class TestChipBatchedCrossbar:
    def _stacked_qw(self, rng, n_chips=3, bits=8, shape=(6, 40)):
        qmax = 2 ** (bits - 1) - 1
        codes = rng.integers(-qmax, qmax + 1, size=(n_chips,) + shape)
        return QuantizedWeight(
            codes=codes.astype(np.float64), scale=np.asarray(0.01), bits=bits
        )

    def test_matches_per_chip_arrays(self, rng):
        """One chip-batched array == programming each chip separately."""
        qw = self._stacked_qw(rng)
        cfg = CrossbarConfig(
            dac_bits=6, adc_bits=8, tile_rows=16,
            sigma_conductance=0.03, stuck_rate=0.05,
        )
        seeds = [5, 6, 7]
        batched = CrossbarArray(
            qw, cfg,
            rng=[np.random.default_rng(s) for s in seeds],
            chip_batched=True,
        )
        x = rng.normal(size=(4, 40))
        out = batched.matvec(x)
        assert out.shape == (3, 4, 6)
        for i, seed in enumerate(seeds):
            chip_qw = QuantizedWeight(
                codes=qw.codes[i], scale=qw.scale, bits=qw.bits
            )
            chip = CrossbarArray(chip_qw, cfg, rng=np.random.default_rng(seed))
            np.testing.assert_array_equal(out[i], chip.matvec(x))

    def test_single_chip_stack(self, rng):
        qw = self._stacked_qw(rng, n_chips=1)
        arr = CrossbarArray(qw, CrossbarConfig.ideal(), rng, chip_batched=True)
        x = rng.normal(size=(2, 40))
        np.testing.assert_allclose(
            arr.matvec(x), arr.ideal_result(x), rtol=1e-9, atol=1e-12
        )

    def test_chip_batched_rejects_2d(self, rng):
        with pytest.raises(ValueError):
            CrossbarArray(
                make_qw(rng), CrossbarConfig.ideal(), rng, chip_batched=True
            )


class TestVectorizedTiling:
    def test_odd_tile_split_matches_reference_loop(self, rng):
        """Vectorized tiling reproduces the per-tile loop, including the
        narrower ADC full-scale of the short remainder tile."""
        qw = make_qw(rng, 8, shape=(5, 100))
        cfg = CrossbarConfig(dac_bits=None, adc_bits=6, tile_rows=16)
        arr = CrossbarArray(qw, cfg, rng)
        assert arr.n_tiles == 7  # 6 full tiles + a 4-row remainder
        x = rng.normal(size=(3, 100))
        # Reference: the straightforward per-tile loop.
        from repro.imc.crossbar import _uniform_quantize

        v = x * cfg.v_read
        delta_g = arr.g_pos - arr.g_neg
        x_max = np.abs(x).max()
        expected = np.zeros((3, 5))
        for start in range(0, 100, cfg.tile_rows):
            stop = min(start + cfg.tile_rows, 100)
            tile = v[:, start:stop] @ delta_g[start:stop]
            full_scale = cfg.v_read * x_max * (cfg.g_on - cfg.g_off) * (stop - start)
            expected += _uniform_quantize(tile, cfg.adc_bits, full_scale)
        lsb = (cfg.g_on - cfg.g_off) / qw.qmax
        expected = expected / (cfg.v_read * lsb) * float(np.asarray(qw.scale))
        np.testing.assert_array_equal(arr.matvec(x), expected)

    def test_tile_rows_larger_than_rows(self, rng):
        qw = make_qw(rng, 8, shape=(4, 10))
        arr = CrossbarArray(qw, CrossbarConfig.ideal(tile_rows=64), rng)
        assert arr.n_tiles == 1
        x = rng.normal(size=(2, 10))
        np.testing.assert_allclose(
            arr.matvec(x), arr.ideal_result(x), rtol=1e-9, atol=1e-12
        )
