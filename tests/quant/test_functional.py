"""Tests for quantization primitives and their STE gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant import (
    QuantizedWeight,
    binarize_activation,
    binarize_weight,
    fake_quantize_activation,
    fake_quantize_weight,
    pact_quantize,
    sign_with_zero_to_one,
)
from repro.tensor import Tensor


class TestSign:
    def test_zero_maps_to_one(self):
        out = sign_with_zero_to_one(np.array([-2.0, 0.0, 3.0]))
        np.testing.assert_array_equal(out, [-1.0, 1.0, 1.0])


class TestBinarizeWeight:
    def test_codes_are_pm_one(self, rng):
        w = Tensor(rng.normal(size=(4, 3, 3, 3)), requires_grad=True)
        _, record = binarize_weight(w)
        assert set(np.unique(record.codes)) <= {-1.0, 1.0}
        assert record.bits == 1

    def test_scale_is_per_filter_mean_abs(self, rng):
        w = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
        out, record = binarize_weight(w)
        expected = np.abs(w.data).mean(axis=1, keepdims=True)
        np.testing.assert_allclose(record.scale, expected)
        np.testing.assert_allclose(out.data, record.codes * expected)

    def test_ste_gradient_clipped(self):
        w = Tensor(np.array([[0.5, -2.0, 0.9, 1.5]]), requires_grad=True)
        out, record = binarize_weight(w)
        out.sum().backward()
        alpha = float(record.scale.item())
        np.testing.assert_allclose(w.grad, [[alpha, 0.0, alpha, 0.0]])

    def test_fault_hook_applied(self, rng):
        w = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        out, record = binarize_weight(w, fault=lambda qw: -qw.codes)
        np.testing.assert_allclose(out.data, -record.codes * record.scale)

    def test_preserves_sign_pattern(self, rng):
        w = Tensor(rng.normal(size=(3, 5)))
        out, _ = binarize_weight(w)
        np.testing.assert_array_equal(np.sign(out.data), sign_with_zero_to_one(w.data))


class TestBinarizeActivation:
    def test_output_binary(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = binarize_activation(x)
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_ste_hardtanh_gradient(self):
        x = Tensor(np.array([0.5, -2.0, -0.3, 1.5]), requires_grad=True)
        binarize_activation(x).sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0, 0.0])

    def test_pre_fault_changes_forward_not_backward_mask(self):
        x = Tensor(np.array([0.4, -0.4]), requires_grad=True)
        out = binarize_activation(x, pre_fault=lambda v: -v)
        np.testing.assert_array_equal(out.data, [-1.0, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])


class TestFakeQuantizeWeight:
    def test_code_range(self, rng):
        w = Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        _, record = fake_quantize_weight(w, 8)
        assert record.codes.max() <= 127 and record.codes.min() >= -127
        assert record.qmax == 127

    def test_max_weight_maps_to_max_code(self, rng):
        w = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        _, record = fake_quantize_weight(w, 8)
        flat_idx = np.abs(w.data).argmax()
        assert abs(record.codes.ravel()[flat_idx]) == 127

    def test_quantization_error_bounded_by_half_lsb(self, rng):
        w = Tensor(rng.normal(size=(16, 16)), requires_grad=True)
        out, record = fake_quantize_weight(w, 8)
        lsb = float(record.scale)
        assert np.abs(out.data - w.data).max() <= lsb / 2 + 1e-12

    def test_ste_identity_gradient(self, rng):
        w = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        out, _ = fake_quantize_weight(w, 8)
        out.sum().backward()
        np.testing.assert_allclose(w.grad, np.ones((3, 3)))

    def test_rejects_one_bit(self, rng):
        with pytest.raises(ValueError):
            fake_quantize_weight(Tensor(np.ones((2, 2))), 1)

    def test_all_zero_weight_safe(self):
        w = Tensor(np.zeros((3, 3)), requires_grad=True)
        out, _ = fake_quantize_weight(w, 8)
        np.testing.assert_array_equal(out.data, 0.0)

    @given(st.integers(2, 8))
    @settings(max_examples=7, deadline=None)
    def test_dequantize_matches_forward(self, bits):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(5, 5)))
        out, record = fake_quantize_weight(w, bits)
        np.testing.assert_allclose(out.data, record.dequantize())


class TestFakeQuantizeActivation:
    def test_levels(self):
        x = Tensor(np.linspace(-1, 2, 100), requires_grad=True)
        out = fake_quantize_activation(x, 2, max_val=1.0)
        assert len(np.unique(out.data)) <= 4
        assert out.data.min() >= 0.0 and out.data.max() <= 1.0

    def test_gradient_masked_outside_range(self):
        x = Tensor(np.array([-0.5, 0.5, 1.5]), requires_grad=True)
        fake_quantize_activation(x, 4, max_val=1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestPACT:
    def test_output_range_and_levels(self, rng):
        x = Tensor(rng.normal(scale=3.0, size=500), requires_grad=True)
        alpha = Tensor(np.array([2.0]), requires_grad=True)
        out = pact_quantize(x, alpha, 4)
        assert out.data.min() >= 0.0 and out.data.max() <= 2.0
        assert len(np.unique(out.data)) <= 16

    def test_alpha_gradient_counts_clipped(self):
        x = Tensor(np.array([0.5, 3.0, 5.0]), requires_grad=True)
        alpha = Tensor(np.array([2.0]), requires_grad=True)
        pact_quantize(x, alpha, 4).sum().backward()
        np.testing.assert_allclose(alpha.grad, [2.0])  # two inputs >= alpha
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 0.0])

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            pact_quantize(Tensor(np.ones(3)), Tensor(np.array([-1.0])), 4)


class TestQuantizedWeightRecord:
    def test_qmax_binary(self):
        qw = QuantizedWeight(codes=np.ones((2, 2)), scale=np.ones(1), bits=1)
        assert qw.qmax == 1

    def test_qmax_multibit(self):
        qw = QuantizedWeight(codes=np.ones((2, 2)), scale=np.ones(1), bits=4)
        assert qw.qmax == 7
