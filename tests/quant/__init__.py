"""Test package."""
