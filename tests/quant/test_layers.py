"""Tests for quantized layer wrappers and their fault hooks."""

import numpy as np
import pytest

from repro.quant import (
    PACT,
    QuantConv1d,
    QuantConv2d,
    QuantLinear,
    QuantLSTMCell,
    QuantReLU,
    SignActivation,
)
from repro.tensor import Tensor, no_grad


class TestQuantConv2d:
    def test_binary_forward_uses_binarized_weights(self, rng):
        layer = QuantConv2d(2, 3, 3, padding=1, weight_bits=1)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        layer(x)
        record = layer.last_quantized
        assert record.bits == 1
        assert set(np.unique(record.codes)) <= {-1.0, 1.0}

    def test_training_updates_latent_weights(self, rng):
        layer = QuantConv2d(2, 3, 3, weight_bits=1)
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        before = layer.weight.data.copy()
        out = layer(x)
        out.sum().backward()
        assert layer.weight.grad is not None
        assert np.any(layer.weight.grad != 0)
        assert np.array_equal(layer.weight.data, before)  # grads don't mutate

    def test_weight_fault_applied_every_forward(self, rng):
        layer = QuantConv2d(1, 1, 3, weight_bits=1)
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        clean = layer(x).data.copy()
        layer.weight_fault = lambda qw: -qw.codes
        flipped = layer(x).data
        np.testing.assert_allclose(flipped, -clean, atol=1e-12)
        layer.weight_fault = None
        np.testing.assert_allclose(layer(x).data, clean, atol=1e-12)

    def test_eight_bit_mode(self, rng):
        layer = QuantConv2d(2, 3, 3, weight_bits=8)
        layer(Tensor(rng.normal(size=(1, 2, 5, 5))))
        assert layer.last_quantized.bits == 8


class TestQuantConv1d:
    def test_forward_shape(self, rng):
        layer = QuantConv1d(1, 4, 9, stride=4, padding=4, weight_bits=8)
        out = layer(Tensor(rng.normal(size=(2, 1, 64))))
        assert out.shape == (2, 4, 16)
        assert layer.last_quantized.bits == 8


class TestQuantLinear:
    def test_close_to_float_linear(self, rng):
        layer = QuantLinear(16, 8, weight_bits=8)
        x = Tensor(rng.normal(size=(4, 16)))
        with no_grad():
            q_out = layer(x).data
        float_out = x.data @ layer.weight.data.T + layer.bias.data
        rel = np.abs(q_out - float_out).max() / np.abs(float_out).max()
        assert rel < 0.05  # 8-bit quantization error is small

    def test_fault_hook(self, rng):
        layer = QuantLinear(4, 2, weight_bits=8)
        x = Tensor(rng.normal(size=(1, 4)))
        clean = layer(x).data.copy()
        layer.weight_fault = lambda qw: np.zeros_like(qw.codes)
        zeroed = layer(x).data
        np.testing.assert_allclose(zeroed, layer.bias.data[None, :])
        assert not np.allclose(zeroed, clean)


class TestQuantLSTMCell:
    def test_step_shapes(self, rng):
        cell = QuantLSTMCell(3, 5, weight_bits=8)
        x = Tensor(rng.normal(size=(2, 3)))
        h = Tensor(np.zeros((2, 5)))
        c = Tensor(np.zeros((2, 5)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (2, 5) and c2.shape == (2, 5)
        assert cell.last_quantized is not None
        assert cell.last_quantized_hh is not None

    def test_independent_fault_hooks(self, rng):
        cell = QuantLSTMCell(3, 5, weight_bits=8)
        x = Tensor(rng.normal(size=(2, 3)))
        state = (Tensor(rng.normal(size=(2, 5))), Tensor(np.zeros((2, 5))))
        clean = cell(x, state)[0].data.copy()
        cell.weight_fault = lambda qw: np.zeros_like(qw.codes)
        only_ih = cell(x, state)[0].data.copy()
        cell.weight_fault = None
        cell.weight_fault_hh = lambda qw: np.zeros_like(qw.codes)
        only_hh = cell(x, state)[0].data.copy()
        assert not np.allclose(clean, only_ih)
        assert not np.allclose(clean, only_hh)
        assert not np.allclose(only_ih, only_hh)


class TestSignActivation:
    def test_binary_output(self, rng):
        act = SignActivation()
        out = act(Tensor(rng.normal(size=(3, 4))))
        assert set(np.unique(out.data)) <= {-1.0, 1.0}

    def test_pre_fault_noise_injection(self, rng):
        act = SignActivation()
        x = Tensor(np.full((100,), 0.1))
        clean = act(x).data.copy()
        np.testing.assert_array_equal(clean, 1.0)
        noise_rng = np.random.default_rng(0)
        act.pre_fault = lambda v: v + noise_rng.normal(0, 1.0, v.shape)
        noisy = act(x).data
        assert (noisy == -1.0).any()  # strong noise flips some signs


class TestQuantReLU:
    def test_levels_and_range(self, rng):
        act = QuantReLU(bits=3, max_val=2.0)
        out = act(Tensor(rng.normal(scale=3.0, size=1000)))
        assert out.data.min() >= 0.0 and out.data.max() <= 2.0
        assert len(np.unique(out.data)) <= 8


class TestPACTLayer:
    def test_alpha_is_trainable(self, rng):
        act = PACT(bits=4, alpha_init=3.0)
        x = Tensor(rng.normal(scale=5.0, size=(2, 8)), requires_grad=True)
        act(x).sum().backward()
        assert act.alpha.grad is not None
        assert act.num_parameters() == 1
