"""Tests for the deployment-frozen quantization cache.

Physically a chip is programmed once; the quantized layers model that by
caching codes + scale per weight slot, keyed by the parameter's
``(uid, version)`` counter, during gradient-free forwards.  The contract:

* cached forwards are bit-identical to recomputation,
* a training step (optimizer bump / ``load_state_dict``) after deployment
  invalidates transparently — verified via ``last_quantized``,
* gradient-recording forwards never cache (STE training unchanged),
* ad-hoc callable hooks without a ``fault_token`` keep the legacy
  applied-every-forward semantics.
"""

import numpy as np
import pytest

from repro import nn
from repro.faults import FaultSpec
from repro.models import LSTMForecaster, proposed
from repro.quant import (
    QuantConv2d,
    QuantLinear,
    QuantLSTMCell,
    freeze_deployment,
    invalidate_quantization,
    quantized_layers,
    warm_quantization,
)
from repro.quant.layers import deploy_cache_disabled
from repro.tensor import Tensor, manual_seed, no_grad
from repro.train import SGD


def _loss_step(layer, x):
    """One tiny SGD step through the layer (bumps the weight version)."""
    out = layer(x)
    loss = (out * out).sum()
    layer.zero_grad()
    loss.backward()
    SGD(layer.parameters(), lr=0.05).step()


class TestCachedForwardIdentity:
    @pytest.mark.parametrize("bits", [1, 8])
    def test_cached_equals_recomputed(self, bits):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=bits)
        x = Tensor(np.random.default_rng(1).normal(size=(5, 6)))
        with no_grad():
            first = layer(x).data  # miss: programs the cache
            cached = layer(x).data  # hit
            with deploy_cache_disabled():
                recomputed = layer(x).data
        np.testing.assert_array_equal(first, cached)
        np.testing.assert_array_equal(cached, recomputed)

    def test_cache_hit_reuses_record_object(self):
        manual_seed(0)
        layer = QuantConv2d(2, 3, 3, weight_bits=1)
        x = Tensor(np.random.default_rng(2).normal(size=(2, 2, 5, 5)))
        with no_grad():
            layer(x)
            record = layer.last_quantized
            layer(x)
            assert layer.last_quantized is record  # served from cache

    def test_faulty_codes_cached_per_hook(self):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=8)
        spec = FaultSpec(kind="bitflip", level=0.3)
        layer.weight_fault = spec.build_weight_model(np.random.default_rng(3))
        x = Tensor(np.random.default_rng(4).normal(size=(5, 6)))
        with no_grad():
            faulty = layer(x).data
            again = layer(x).data
            with deploy_cache_disabled():
                recomputed = layer(x).data
        np.testing.assert_array_equal(faulty, again)
        np.testing.assert_array_equal(faulty, recomputed)

    def test_new_hook_invalidates_faulty_codes(self):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=8)
        spec = FaultSpec(kind="bitflip", level=0.5)
        x = Tensor(np.random.default_rng(5).normal(size=(5, 6)))
        with no_grad():
            layer.weight_fault = spec.build_weight_model(np.random.default_rng(1))
            a = layer(x).data
            layer.weight_fault = spec.build_weight_model(np.random.default_rng(2))
            b = layer(x).data
            layer.weight_fault = None
            clean = layer(x).data
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, clean)


class TestTrainingInvalidation:
    @pytest.mark.parametrize("bits", [1, 8])
    def test_training_step_after_deploy_recomputes_codes(self, bits):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=bits)
        x = Tensor(np.random.default_rng(6).normal(size=(5, 6)))
        freeze_deployment(layer)
        with no_grad():
            layer(x)
        deployed = layer.last_quantized
        deployed_scale = np.copy(deployed.scale)
        layer.train()
        _loss_step(layer, x)
        layer.eval()
        with no_grad():
            layer(x)
        assert layer.last_quantized is not deployed
        # The reprogrammed snapshot reflects the updated weights: the scale
        # (max|w| / qmax, or per-filter mean|w| for binary) tracks any
        # weight change even when no integer code happens to flip.
        assert not np.array_equal(layer.last_quantized.scale, deployed_scale)

    def test_grad_enabled_forward_never_serves_cache(self):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=8)
        x = Tensor(np.random.default_rng(7).normal(size=(5, 6)))
        with no_grad():
            layer(x)
        cached = layer.last_quantized
        out = layer(x)  # gradient-recording: fresh record, backward intact
        assert layer.last_quantized is not cached
        assert out.requires_grad

    def test_load_state_dict_invalidates(self):
        manual_seed(0)
        layer = QuantLinear(6, 4, weight_bits=8)
        x = Tensor(np.random.default_rng(8).normal(size=(5, 6)))
        with no_grad():
            layer(x)
        before = layer.last_quantized
        state = layer.state_dict()
        state["weight"] = state["weight"] + 0.1
        layer.load_state_dict(state)
        with no_grad():
            layer(x)
        assert layer.last_quantized is not before
        assert not np.array_equal(layer.last_quantized.codes, before.codes)

    def test_lstm_cell_slots_invalidate_independently(self):
        manual_seed(0)
        cell = QuantLSTMCell(3, 5, weight_bits=8)
        x = Tensor(np.random.default_rng(9).normal(size=(2, 3)))
        state = (Tensor(np.zeros((2, 5))), Tensor(np.zeros((2, 5))))
        with no_grad():
            cell(x, state)
        rec_ih, rec_hh = cell.last_quantized, cell.last_quantized_hh
        cell.weight_ih.data[...] += 0.05
        cell.weight_ih.mark_updated()
        with no_grad():
            cell(x, state)
        assert cell.last_quantized is not rec_ih
        assert cell.last_quantized_hh is rec_hh  # untouched slot stays warm


class TestAdHocHooks:
    def test_callable_hook_applied_every_forward(self):
        manual_seed(0)
        layer = QuantLinear(4, 2, weight_bits=8)
        calls = []

        def hook(qw):
            calls.append(1)
            return qw.codes

        layer.weight_fault = hook
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        with no_grad():
            layer(x)
            layer(x)
            layer(x)
        assert len(calls) == 3  # no fault_token → never value-cached


class TestDeployHelpers:
    def test_warm_quantization_counts_slots(self):
        manual_seed(0)
        model = LSTMForecaster(proposed(), hidden_size=8, num_layers=2)
        # 2 LSTM cells x 2 slots + 1 head = 5 weight slots
        assert warm_quantization(model) == 5

    def test_freeze_then_forward_serves_cache(self):
        manual_seed(0)
        model = nn.Sequential(QuantLinear(4, 4, weight_bits=8), nn.ReLU())
        freeze_deployment(model)
        layer = next(quantized_layers(model))
        warmed = layer._record_cache["weight"][1]
        with no_grad():
            model(Tensor(np.zeros((2, 4))))
        assert layer.last_quantized is warmed

    def test_invalidate_clears_all_layers(self):
        manual_seed(0)
        model = nn.Sequential(
            QuantLinear(4, 4, weight_bits=8), QuantLinear(4, 2, weight_bits=8)
        )
        warm_quantization(model)
        assert invalidate_quantization(model) == 2
        for layer in quantized_layers(model):
            assert not layer._record_cache and not layer._deploy_cache
