"""Tests for task metrics, focused on the vectorized per-chip mIoU.

``binary_miou_stack`` replaces the per-chip Python loop in
``segmentation_miou`` with array ops over the chip/instance axis; its
contract is bit-identity with looping ``binary_miou`` over the slices.
"""

import numpy as np
import pytest

from repro.train.metrics import binary_miou, binary_miou_stack


class TestBinaryMiouStack:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_slice_loop(self, seed):
        rng = np.random.default_rng(seed)
        preds = rng.random((7, 12, 12)) > 0.5
        true = rng.random((12, 12)) > 0.4
        stacked = binary_miou_stack(preds, true)
        looped = np.array([binary_miou(p, true) for p in preds])
        assert stacked.shape == (7,)
        np.testing.assert_array_equal(stacked, looped)

    def test_empty_class_defines_iou_one(self):
        # All-background prediction and truth: foreground union is empty.
        preds = np.zeros((3, 4, 4), dtype=bool)
        true = np.zeros((4, 4), dtype=bool)
        stacked = binary_miou_stack(preds, true)
        looped = np.array([binary_miou(p, true) for p in preds])
        np.testing.assert_array_equal(stacked, looped)
        np.testing.assert_array_equal(stacked, np.ones(3))

    def test_mixed_perfect_and_inverted(self):
        true = np.array([[1, 0], [0, 1]], dtype=bool)
        preds = np.stack([true, ~true])
        stacked = binary_miou_stack(preds, true)
        np.testing.assert_array_equal(stacked, [1.0, 0.0])

    def test_float_masks_thresholdlike_cast(self):
        # Non-bool inputs are cast exactly like the scalar metric casts.
        rng = np.random.default_rng(5)
        preds = rng.integers(0, 2, size=(4, 6, 6)).astype(float)
        true = rng.integers(0, 2, size=(6, 6)).astype(float)
        stacked = binary_miou_stack(preds, true)
        looped = np.array([binary_miou(p, true) for p in preds])
        np.testing.assert_array_equal(stacked, looped)


class TestBinaryMiouStackPerSliceTruth:
    """Per-slice ground truths (the image-batched segmentation evaluator)."""

    def test_matches_looped_binary_miou_per_pair(self):
        rng = np.random.default_rng(9)
        preds = rng.random((6, 10, 10)) > 0.5
        trues = rng.random((6, 10, 10)) > 0.4
        stacked = binary_miou_stack(preds, trues)
        looped = np.array(
            [binary_miou(p, t) for p, t in zip(preds, trues)]
        )
        np.testing.assert_array_equal(stacked, looped)

    def test_shared_truth_still_broadcasts(self):
        rng = np.random.default_rng(10)
        preds = rng.random((5, 8, 8)) > 0.5
        true = rng.random((8, 8)) > 0.5
        np.testing.assert_array_equal(
            binary_miou_stack(preds, true),
            np.array([binary_miou(p, true) for p in preds]),
        )

    def test_per_slice_empty_classes(self):
        preds = np.zeros((2, 3, 3), dtype=bool)
        trues = np.stack([np.zeros((3, 3), bool), np.ones((3, 3), bool)])
        stacked = binary_miou_stack(preds, trues)
        looped = np.array(
            [binary_miou(p, t) for p, t in zip(preds, trues)]
        )
        np.testing.assert_array_equal(stacked, looped)
