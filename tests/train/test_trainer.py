"""Tests for the Trainer loop."""

import numpy as np

from repro import nn
from repro.data import ArrayDataset
from repro.tensor import Tensor, manual_seed
from repro.train import Adam, CosineSchedule, Trainer, cross_entropy, mse_loss
from repro.train.trainer import evaluate_batched


def linear_separable_dataset(n=120, rng=None):
    rng = rng or np.random.default_rng(0)
    x = rng.normal(size=(n, 2))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return ArrayDataset(x, y)


class TestTrainer:
    def test_loss_decreases(self):
        manual_seed(0)
        ds = linear_separable_dataset()
        model = nn.Sequential(nn.Linear(2, 16), nn.ReLU(), nn.Linear(16, 2))
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01), cross_entropy)
        history = trainer.fit(ds, epochs=10, batch_size=16)
        assert history.loss[-1] < history.loss[0] * 0.5

    def test_reaches_high_accuracy(self):
        manual_seed(0)
        ds = linear_separable_dataset()
        model = nn.Sequential(nn.Linear(2, 16), nn.ReLU(), nn.Linear(16, 2))
        trainer = Trainer(model, Adam(model.parameters(), lr=0.02), cross_entropy)
        trainer.fit(ds, epochs=20, batch_size=16)
        logits = evaluate_batched(model, ds)
        acc = (logits.argmax(axis=1) == ds.targets).mean()
        assert acc > 0.95

    def test_metric_callback_recorded(self):
        manual_seed(0)
        ds = linear_separable_dataset(40)
        model = nn.Sequential(nn.Linear(2, 2))
        trainer = Trainer(
            model,
            Adam(model.parameters(), lr=0.01),
            cross_entropy,
            metric_fn=lambda m, d: 0.5,
        )
        history = trainer.fit(ds, epochs=3, batch_size=8, eval_set=ds)
        assert history.metric == [0.5, 0.5, 0.5]

    def test_schedule_applied(self):
        manual_seed(0)
        ds = linear_separable_dataset(40)
        model = nn.Sequential(nn.Linear(2, 2))
        opt = Adam(model.parameters(), lr=0.1)
        trainer = Trainer(
            model, opt, cross_entropy, schedule=CosineSchedule(opt, 10)
        )
        history = trainer.fit(ds, epochs=5, batch_size=8)
        assert history.lr[0] > history.lr[-1]

    def test_grad_clip_bounds_update(self):
        manual_seed(0)
        ds = ArrayDataset(np.full((8, 2), 100.0), np.full(8, 1000.0))
        model = nn.Sequential(nn.Linear(2, 1), nn.Lambda(lambda t: t.reshape(-1)))
        opt = Adam(model.parameters(), lr=0.01)
        trainer = Trainer(model, opt, mse_loss, grad_clip=1.0)
        trainer.train_epoch(
            __import__("repro.data", fromlist=["DataLoader"]).DataLoader(
                ds, batch_size=8
            )
        )
        total = sum(float((p.grad**2).sum()) for p in model.parameters())
        assert np.sqrt(total) <= 1.0 + 1e-6

    def test_history_final_loss(self):
        from repro.train import History

        assert np.isnan(History().final_loss)
        h = History(loss=[2.0, 1.0])
        assert h.final_loss == 1.0


class TestEvaluateBatched:
    def test_batches_concatenate(self):
        manual_seed(0)
        ds = linear_separable_dataset(50)
        model = nn.Sequential(nn.Linear(2, 3))
        out = evaluate_batched(model, ds, batch_size=16)
        assert out.shape == (50, 3)

    def test_runs_in_eval_mode_without_grad(self):
        manual_seed(0)
        ds = linear_separable_dataset(10)
        model = nn.Sequential(nn.Linear(2, 3), nn.Dropout(0.5))
        a = evaluate_batched(model, ds)
        b = evaluate_batched(model, ds)
        np.testing.assert_array_equal(a, b)  # dropout off in eval
        assert all(p.grad is None for p in model.parameters())
