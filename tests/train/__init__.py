"""Test package."""
