"""Tests for losses, optimizers, schedules and metrics."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, check_gradients
from repro.train import (
    SGD,
    Adam,
    CosineSchedule,
    StepSchedule,
    accuracy,
    bce_with_logits,
    binary_miou,
    cross_entropy,
    dice_loss,
    expected_calibration_error,
    improvement_percent,
    l1_loss,
    l2_regularization,
    mse_loss,
    nll_from_probs,
    nll_loss,
    rmse,
    segmentation_loss,
)


class TestLosses:
    def test_cross_entropy_uniform(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = cross_entropy(logits, np.zeros(4, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(10))

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.eye(3) * 100.0)
        loss = cross_entropy(logits, np.arange(3))
        assert loss.item() < 1e-6

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        labels = rng.integers(0, 5, 4)
        check_gradients(lambda: cross_entropy(logits, labels), [logits])

    def test_nll_loss_matches_cross_entropy(self, rng):
        from repro.tensor import ops

        logits = Tensor(rng.normal(size=(4, 5)))
        labels = rng.integers(0, 5, 4)
        np.testing.assert_allclose(
            nll_loss(ops.log_softmax(logits), labels).item(),
            cross_entropy(logits, labels).item(),
        )

    def test_mse_and_l1(self):
        pred = Tensor(np.array([1.0, 3.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == 5.0
        assert l1_loss(pred, np.array([0.0, 0.0])).item() == 2.0

    def test_bce_with_logits_stable_extremes(self):
        logits = Tensor(np.array([1000.0, -1000.0]))
        loss = bce_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item()) and loss.item() < 1e-6

    def test_bce_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(6,)), requires_grad=True)
        target = (rng.random(6) > 0.5).astype(float)
        check_gradients(lambda: bce_with_logits(logits, target), [logits])

    def test_dice_loss_bounds(self, rng):
        perfect = Tensor(np.full((1, 4, 4), 100.0))
        assert dice_loss(perfect, np.ones((1, 4, 4))).item() < 0.01
        wrong = Tensor(np.full((1, 4, 4), -100.0))
        assert dice_loss(wrong, np.ones((1, 4, 4))).item() > 0.9

    def test_segmentation_loss_combines(self, rng):
        logits = Tensor(rng.normal(size=(2, 4, 4)), requires_grad=True)
        target = (rng.random((2, 4, 4)) > 0.5).astype(float)
        check_gradients(lambda: segmentation_loss(logits, target), [logits])

    def test_l2_regularization(self):
        params = [Tensor(np.array([3.0]), requires_grad=True)]
        assert l2_regularization(params, 0.5).item() == 4.5
        assert l2_regularization([], 0.5).item() == 0.0


class TestOptimizers:
    def _quadratic_setup(self):
        target = np.array([1.0, -2.0, 3.0])
        p = nn.Parameter(np.zeros(3))

        def loss():
            diff = p - Tensor(target)
            return (diff * diff).sum()

        return p, loss

    def test_sgd_converges(self):
        p, loss = self._quadratic_setup()
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-4)

    def test_sgd_momentum_converges(self):
        p, loss = self._quadratic_setup()
        opt = SGD([p], lr=0.05, momentum=0.9)
        for _ in range(250):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_adam_converges(self):
        p, loss = self._quadratic_setup()
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        np.testing.assert_allclose(p.data, [1.0, -2.0, 3.0], atol=1e-3)

    def test_weight_decay_shrinks_weights(self):
        p = nn.Parameter(np.array([10.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0

    def test_skips_parameters_without_grad(self):
        p = nn.Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.1)
        opt.step()  # no crash
        np.testing.assert_allclose(p.data, [1.0])

    def test_empty_parameters_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr_raises(self):
        with pytest.raises(ValueError):
            Adam([nn.Parameter(np.zeros(1))], lr=0.0)


class TestSchedules:
    def test_cosine_decays_to_floor(self):
        p = nn.Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=10, floor=0.1)
        sched.step(0)
        assert opt.lr == pytest.approx(1.0)
        sched.step(10)
        assert opt.lr == pytest.approx(0.1)

    def test_cosine_monotone(self):
        p = nn.Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = CosineSchedule(opt, total_epochs=20)
        lrs = [sched.step(e) for e in range(21)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))

    def test_step_schedule(self):
        p = nn.Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = StepSchedule(opt, step_size=5, gamma=0.1)
        assert sched.step(4) == pytest.approx(1.0)
        assert sched.step(5) == pytest.approx(0.1)
        assert sched.step(10) == pytest.approx(0.01)


class TestMetrics:
    def test_accuracy_from_labels_and_logits(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(2 / 3)
        logits = np.array([[0.9, 0.1], [0.2, 0.8]])
        assert accuracy(logits, np.array([0, 1])) == 1.0

    def test_rmse(self):
        assert rmse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(2.5)
        )

    def test_binary_miou_perfect(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2] = True
        assert binary_miou(mask, mask) == 1.0

    def test_binary_miou_inverted(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[:2] = True
        assert binary_miou(mask, ~mask) == 0.0

    def test_binary_miou_empty_class_counts_as_one(self):
        empty = np.zeros((4, 4), dtype=bool)
        assert binary_miou(empty, empty) == 1.0

    def test_nll_from_probs(self):
        probs = np.array([[0.9, 0.1], [0.5, 0.5]])
        expected = -(np.log(0.9) + np.log(0.5)) / 2
        assert nll_from_probs(probs, np.array([0, 0])) == pytest.approx(expected)

    def test_ece_perfectly_calibrated(self):
        probs = np.array([[0.8, 0.2]] * 10)
        labels = np.array([0] * 8 + [1] * 2)
        assert expected_calibration_error(probs, labels) == pytest.approx(0.0, abs=1e-9)

    def test_ece_overconfident(self):
        probs = np.array([[0.99, 0.01]] * 10)
        labels = np.array([0] * 5 + [1] * 5)
        assert expected_calibration_error(probs, labels) > 0.4

    def test_improvement_percent_directions(self):
        assert improvement_percent(0.5, 0.75, higher_is_better=True) == pytest.approx(50.0)
        assert improvement_percent(0.2, 0.1, higher_is_better=False) == pytest.approx(50.0)
        assert improvement_percent(0.0, 1.0) == 0.0
