"""Tests for scenario-batched severity sweeps (the scenario sub-axis).

The ``batched`` executor's scenario mode stacks all severity levels of a
sweep that share a fault kind along a scenario-major sub-axis above chips
and MC samples, so one forward carries ``scenarios x chips x mc_samples``
instances.  Its contract is the chip/MC-batched contract extended one
axis up: per-(scenario, chip) metrics must be **bit-identical** to the
serial looped reference (the same per-cell ``SeedSequence`` streams,
consumed in the serial draw order), and — because the draw order is
unchanged — the campaign-result cache must keep serving entries written
under the ``mc2`` RNG contract.  These tests pin that contract across all
four task topologies, the Bayesian methods, and every fault kind, plus
the scenario-axis primitives, heterogeneous-severity fault stacking, the
``scenario_limit``/``chip_limit`` memory caps, and the grouping logic.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.bayesian import mc_forward
from repro.eval import build_task, make_evaluator, run_robustness_sweep, trained_model
from repro.eval.cache import RNG_CONTRACT
from repro.faults import (
    FaultInjector,
    FaultSpec,
    MonteCarloCampaign,
    ScenarioBatchedWeightFault,
    WorkCell,
    additive_sweep,
    bitflip_sweep,
    evaluate_cell,
    evaluate_cells_batched,
    evaluate_cells_scenario_batched,
    multiplicative_sweep,
    uniform_sweep,
)
from repro.faults.executor import _kind_groups
from repro.models import proposed, spatial_spindrop, spindrop
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.quant.functional import fake_quantize_weight_record
from repro.tensor import Tensor, manual_seed
from repro.tensor.chipbatch import (
    active_chip_count,
    active_sample_count,
    active_scenario_count,
    chip_batch,
    instance_layout,
    mc_sample_axis,
    scenario_axis,
)


def build_pair(seed=0, mc_samples=3):
    """Small mixed binary/multi-bit model with a chip-aware MC evaluator."""
    manual_seed(seed)
    model = nn.Sequential(
        QuantConv2d(1, 3, 3, padding=1, weight_bits=1),
        SignActivation(),
        nn.GlobalAvgPool2d(),
        nn.Dropout(0.25),
        QuantLinear(3, 2, weight_bits=8),
    )
    data_rng = np.random.default_rng(7)
    x = data_rng.normal(size=(10, 1, 6, 6))
    y = data_rng.integers(0, 2, 10)

    def evaluator(m):
        n_chips = active_chip_count()
        inp = x if n_chips is None else np.broadcast_to(x[None], (n_chips,) + x.shape)
        logits = mc_forward(m, Tensor(inp.copy()), num_samples=mc_samples)
        pred = logits.mean(axis=0).argmax(axis=-1)
        return (pred == y).mean(axis=-1)

    return model, evaluator


SWEEPS_BY_KIND = {
    "bitflip": [FaultSpec(kind="bitflip", level=l) for l in (0.05, 0.1, 0.2)],
    "additive": [FaultSpec(kind="additive", level=l) for l in (0.1, 0.3)],
    "multiplicative": [
        FaultSpec(kind="multiplicative", level=l) for l in (0.2, 0.4)
    ],
    "uniform": [FaultSpec(kind="uniform", level=l) for l in (0.1, 0.2, 0.4)],
    "stuck": [
        FaultSpec(kind="stuck", level=0.1, stuck_to="zero"),
        FaultSpec(kind="stuck", level=0.2, stuck_to="high"),
    ],
    "drift": [FaultSpec(kind="drift", level=l) for l in (24.0, 100.0)],
}


class TestScenarioAxisPrimitives:
    def test_scenario_axis_composes_above_chips_and_samples(self):
        assert active_chip_count() is None and active_scenario_count() is None
        with scenario_axis(4):
            assert active_scenario_count() == 4
            assert active_chip_count() == 4
            with chip_batch(3):
                assert active_chip_count() == 12
                with mc_sample_axis(2):
                    assert active_chip_count() == 24
                    assert active_sample_count() == 2
                    assert instance_layout() == (4, 3, 2)
                assert active_chip_count() == 12
            assert active_chip_count() == 4
        assert active_chip_count() is None
        assert instance_layout() == (None, None, None)

    def test_scenario_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            with scenario_axis(0):
                pass

    def test_scenario_axis_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with scenario_axis(2):
                raise RuntimeError("boom")
        assert active_scenario_count() is None


class TestScenarioBatchedWeightFault:
    def _record(self, shape=(4, 5), bits=8, seed=0):
        weights = np.random.default_rng(seed).normal(size=shape)
        return fake_quantize_weight_record(weights, bits)

    def test_slices_match_per_scenario_generation(self):
        """Each scenario's slice equals its own serial prototype's output."""
        qw = self._record()
        specs = [
            FaultSpec(kind="additive", level=0.1),
            FaultSpec(kind="additive", level=0.4),
        ]
        seed_groups = [[11, 22, 33], [44, 55, 66]]
        hook = ScenarioBatchedWeightFault(specs, seed_groups)
        stacked = hook(qw)
        assert stacked.shape == (6,) + qw.codes.shape
        for k, (spec, seeds) in enumerate(zip(specs, seed_groups)):
            for c, seed in enumerate(seeds):
                model = spec.build_weight_model(np.random.default_rng(seed))
                np.testing.assert_array_equal(stacked[3 * k + c], model(qw))

    def test_heterogeneous_severities_vary_along_axis(self):
        qw = self._record()
        specs = [
            FaultSpec(kind="uniform", level=0.05),
            FaultSpec(kind="uniform", level=0.5),
        ]
        hook = ScenarioBatchedWeightFault(specs, [[1], [1]])
        stacked = hook(qw)
        # Same seed, different severity: same pattern, different magnitude.
        low = np.abs(stacked[0] - qw.codes)
        high = np.abs(stacked[1] - qw.codes)
        assert high.max() > low.max() * 2

    def test_repeats_along_sample_axis(self):
        qw = self._record()
        specs = [FaultSpec(kind="additive", level=0.2)]
        hook = ScenarioBatchedWeightFault(specs, [[7, 8]])
        flat = hook(qw)
        with mc_sample_axis(3):
            expanded = hook(qw)
        assert expanded.shape == (6,) + qw.codes.shape
        np.testing.assert_array_equal(expanded, np.repeat(flat, 3, axis=0))

    def test_bitflip_multibit_stacks(self):
        qw = self._record(bits=4)
        specs = [
            FaultSpec(kind="bitflip", level=0.1),
            FaultSpec(kind="bitflip", level=0.3),
        ]
        hook = ScenarioBatchedWeightFault(specs, [[1, 2], [3, 4]])
        stacked = hook(qw)
        assert stacked.shape == (4,) + qw.codes.shape
        for k, spec in enumerate(specs):
            for c, seed in enumerate([[1, 2], [3, 4]][k]):
                model = spec.build_weight_model(np.random.default_rng(seed))
                np.testing.assert_array_equal(stacked[2 * k + c], model(qw))

    def test_rejects_mixed_kinds(self):
        specs = [
            FaultSpec(kind="additive", level=0.1),
            FaultSpec(kind="uniform", level=0.1),
        ]
        with pytest.raises(ValueError, match="one fault kind"):
            ScenarioBatchedWeightFault(specs, [[1], [2]])

    def test_rejects_degenerate_spec(self):
        with pytest.raises(ValueError, match="no weight-fault model"):
            ScenarioBatchedWeightFault([FaultSpec(kind="none", level=0.0)], [[1]])

    def test_rejects_mismatched_groups(self):
        with pytest.raises(ValueError, match="seed group"):
            ScenarioBatchedWeightFault(
                [FaultSpec(kind="additive", level=0.1)], [[1], [2]]
            )


class TestAttachScenarioBatched:
    def test_rejects_mixed_kinds(self):
        model, _ = build_pair()
        injector = FaultInjector(model)
        specs = [
            FaultSpec(kind="bitflip", level=0.1),
            FaultSpec(kind="additive", level=0.1),
        ]
        with pytest.raises(ValueError, match="one fault kind"):
            injector.attach_scenario_batched(
                specs, [[np.random.default_rng(0)], [np.random.default_rng(1)]]
            )

    def test_rejects_degenerate_scenarios(self):
        model, _ = build_pair()
        injector = FaultInjector(model)
        specs = [FaultSpec(kind="none", level=0.0)]
        with pytest.raises(ValueError, match="non-degenerate"):
            injector.attach_scenario_batched(specs, [[np.random.default_rng(0)]])

    def test_rejects_mismatched_groups(self):
        model, _ = build_pair()
        injector = FaultInjector(model)
        with pytest.raises(ValueError, match="rng group"):
            injector.attach_scenario_batched(
                [FaultSpec(kind="bitflip", level=0.1)],
                [[np.random.default_rng(0)], [np.random.default_rng(1)]],
            )


class TestEvaluateCellsScenarioBatched:
    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_bit_identical_to_serial(self, kind):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND[kind]
        cell_groups = [
            [WorkCell(idx, run, spec) for run in range(4)]
            for idx, spec in enumerate(specs)
        ]
        serial = np.array(
            [
                evaluate_cell(model, evaluator, cell, base_seed=5)
                for group in cell_groups
                for cell in group
            ]
        )
        stacked = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5
        )
        looped = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, mc_batched=False
        )
        np.testing.assert_array_equal(serial, stacked)
        np.testing.assert_array_equal(serial, looped)

    def test_matches_per_scenario_batched_passes(self):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND["additive"]
        cell_groups = [
            [WorkCell(idx, run, spec) for run in range(3)]
            for idx, spec in enumerate(specs)
        ]
        per_scenario = np.concatenate(
            [
                evaluate_cells_batched(model, evaluator, group, base_seed=2)
                for group in cell_groups
            ]
        )
        stacked = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=2
        )
        np.testing.assert_array_equal(per_scenario, stacked)

    def test_empty_groups(self):
        model, evaluator = build_pair()
        assert evaluate_cells_scenario_batched(model, evaluator, [], 0).size == 0

    def test_rejects_ragged_groups(self):
        model, evaluator = build_pair()
        spec = FaultSpec(kind="bitflip", level=0.1)
        groups = [
            [WorkCell(0, run, spec) for run in range(3)],
            [WorkCell(1, run, spec) for run in range(2)],
        ]
        with pytest.raises(ValueError, match="same chip count"):
            evaluate_cells_scenario_batched(model, evaluator, groups, 0)

    def test_rejects_mixed_scenarios_within_group(self):
        model, evaluator = build_pair()
        spec = FaultSpec(kind="bitflip", level=0.1)
        groups = [[WorkCell(0, 0, spec), WorkCell(1, 1, spec)]]
        with pytest.raises(ValueError, match="single-scenario"):
            evaluate_cells_scenario_batched(model, evaluator, groups, 0)


class TestKindGrouping:
    def test_same_kind_scenarios_merge(self):
        specs = bitflip_sweep([0.0, 0.05, 0.1, 0.2])
        cells = [
            WorkCell(idx, run, spec)
            for idx, spec in enumerate(specs)
            for run in range(1 if spec.kind == "none" else 3)
        ]
        groups = _kind_groups(cells)
        # fault-free singleton + one merged group of three severity levels
        assert [len(g) for g in groups] == [1, 3]

    def test_kind_change_splits(self):
        specs = [
            FaultSpec(kind="bitflip", level=0.1),
            FaultSpec(kind="bitflip", level=0.2),
            FaultSpec(kind="additive", level=0.1),
            FaultSpec(kind="additive", level=0.2),
        ]
        cells = [
            WorkCell(idx, run, spec)
            for idx, spec in enumerate(specs)
            for run in range(2)
        ]
        groups = _kind_groups(cells)
        assert [len(g) for g in groups] == [2, 2]

    def test_unequal_chip_counts_do_not_merge(self):
        spec_a = FaultSpec(kind="bitflip", level=0.1)
        spec_b = FaultSpec(kind="bitflip", level=0.2)
        cells = [WorkCell(0, run, spec_a) for run in range(3)]
        cells += [WorkCell(1, run, spec_b) for run in range(2)]
        groups = _kind_groups(cells)
        assert [len(g) for g in groups] == [1, 1]

    def test_single_cell_scenarios_stay_serial(self):
        spec = FaultSpec(kind="bitflip", level=0.1)
        cells = [WorkCell(0, 0, spec), WorkCell(1, 0, spec)]
        groups = _kind_groups(cells)
        assert [len(g) for g in groups] == [1, 1]


class TestCampaignPlumbing:
    @pytest.mark.parametrize("scenario_limit", [1, 2, 3])
    @pytest.mark.parametrize("chip_limit", [None, 2])
    def test_limits_are_invisible(self, scenario_limit, chip_limit):
        model, evaluator = build_pair()
        specs = bitflip_sweep([0.0, 0.05, 0.1, 0.2])
        serial = MonteCarloCampaign(
            model, evaluator, n_runs=4, base_seed=3, executor="serial"
        ).sweep(specs)
        limited = MonteCarloCampaign(
            model,
            evaluator,
            n_runs=4,
            base_seed=3,
            executor="batched",
            scenario_limit=scenario_limit,
            chip_limit=chip_limit,
        ).sweep(specs)
        for s, b in zip(serial, limited):
            np.testing.assert_array_equal(s.values, b.values)

    def test_scenario_batched_off_matches_on(self):
        model, evaluator = build_pair()
        specs = uniform_sweep([0.0, 0.1, 0.2])
        on = MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=1, executor="batched"
        ).sweep(specs)
        off = MonteCarloCampaign(
            model,
            evaluator,
            n_runs=3,
            base_seed=1,
            executor="batched",
            scenario_batched=False,
        ).sweep(specs)
        for a, b in zip(on, off):
            np.testing.assert_array_equal(a.values, b.values)

    def test_scenario_batched_requires_batched_executor(self):
        model, evaluator = build_pair()
        campaign = MonteCarloCampaign(
            model, evaluator, n_runs=2, executor="serial", scenario_batched=True
        )
        with pytest.raises(ValueError, match="batched"):
            campaign.run(FaultSpec(kind="bitflip", level=0.1))

    def test_rejects_nonpositive_scenario_limit(self):
        model, evaluator = build_pair()
        campaign = MonteCarloCampaign(
            model, evaluator, n_runs=2, executor="batched", scenario_limit=0
        )
        with pytest.raises(ValueError, match="scenario_limit"):
            campaign.run(FaultSpec(kind="bitflip", level=0.1))

    def test_progress_counts_every_cell(self):
        model, evaluator = build_pair()
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        seen = []
        MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=0, executor="batched"
        ).sweep(specs, on_cell_done=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (7, 7)  # 1 fault-free + 2 x 3 chips
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)


class TestTaskTopologyIdentity:
    """Scenario-batched == serial looped on all four tiny-task topologies."""

    def _compare(self, task_name, method, specs, samples=3, n_runs=3):
        task = build_task(task_name, preset="tiny")
        model = trained_model(task, method, "tiny", seed=0)
        evaluator = make_evaluator(
            task.name, task.test_set, method, mc_samples=samples
        )
        results = {}
        for label, kwargs in (
            ("serial", dict(executor="serial")),
            ("scenario", dict(executor="batched", scenario_batched=True)),
            ("per-level", dict(executor="batched", scenario_batched=False)),
        ):
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=n_runs, base_seed=0, **kwargs
            )
            results[label] = campaign.sweep(specs)
        for s, m, l in zip(
            results["serial"], results["scenario"], results["per-level"]
        ):
            np.testing.assert_array_equal(s.values, m.values)
            np.testing.assert_array_equal(s.values, l.values)

    # image / ResNet-18: binary weights, variation routes to activations
    def test_image_binary_bitflip_proposed(self):
        self._compare("image", proposed(), bitflip_sweep([0.0, 0.05, 0.1]), n_runs=2)

    def test_image_activation_variation_spindrop(self):
        self._compare("image", spindrop(), additive_sweep([0.0, 0.2, 0.4]), n_runs=2)

    # audio / M5: 8-bit conv1d
    def test_audio_multibit_bitflip_proposed(self):
        self._compare("audio", proposed(), bitflip_sweep([0.0, 0.05, 0.1]))

    def test_audio_additive_spatial_spindrop(self):
        self._compare(
            "audio", spatial_spindrop(), additive_sweep([0.0, 0.1, 0.2])
        )

    def test_audio_stuck_at_proposed(self):
        self._compare(
            "audio",
            proposed(),
            [
                FaultSpec(kind="none", level=0.0),
                FaultSpec(kind="stuck", level=0.1, stuck_to="zero"),
                FaultSpec(kind="stuck", level=0.2, stuck_to="high"),
            ],
        )

    # co2 / LSTM: 8-bit recurrent cells, frozen (variational) masks
    def test_lstm_uniform_proposed(self):
        self._compare("co2", proposed(), uniform_sweep([0.0, 0.1, 0.2, 0.4]))

    def test_lstm_multiplicative_spindrop(self):
        self._compare("co2", spindrop(), multiplicative_sweep([0.0, 0.2, 0.4]))

    def test_lstm_drift_proposed(self):
        self._compare(
            "co2",
            proposed(),
            [
                FaultSpec(kind="none", level=0.0),
                FaultSpec(kind="drift", level=24.0),
                FaultSpec(kind="drift", level=100.0),
            ],
        )

    # vessels / U-Net: binary weights + PACT activations, group norm
    def test_unet_bitflip_proposed(self):
        self._compare("vessels", proposed(), bitflip_sweep([0.0, 0.05, 0.1]), n_runs=2)

    def test_unet_additive_proposed(self):
        self._compare("vessels", proposed(), additive_sweep([0.0, 0.2, 0.3]), n_runs=2)


class TestCacheContract:
    def test_rng_contract_not_bumped(self):
        """Scenario batching must not invalidate mc2-era campaign caches."""
        assert RNG_CONTRACT == "mc2"

    def test_scenario_batched_served_from_serial_cache(self, tmp_path, monkeypatch):
        """A serial-written cache satisfies a scenario-batched sweep."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        specs = bitflip_sweep([0.0, 0.05, 0.1])
        kwargs = dict(preset="tiny", n_runs=3)
        serial = run_robustness_sweep(
            task, [proposed()], specs, executor="serial", **kwargs
        )
        campaign_files = sorted((tmp_path / "store").rglob("*.npz"))
        assert campaign_files  # serial run populated the store
        scenario = run_robustness_sweep(
            task, [proposed()], specs, executor="batched",
            scenario_batched=True, **kwargs
        )
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, scenario.curves["proposed"].means
        )
        # Same keys: the scenario-batched run wrote nothing new.
        assert sorted((tmp_path / "store").rglob("*.npz")) == campaign_files
        clear_memory_cache()

    def test_fresh_scenario_batched_matches_fresh_serial(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        specs = bitflip_sweep([0.0, 0.05, 0.1])
        kwargs = dict(preset="tiny", n_runs=3, use_cache=False)
        serial = run_robustness_sweep(
            task, [proposed()], specs, executor="serial", **kwargs
        )
        scenario = run_robustness_sweep(
            task, [proposed()], specs, executor="batched",
            scenario_batched=True, **kwargs
        )
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, scenario.curves["proposed"].means
        )
        clear_memory_cache()

    def test_scenario_batched_rejected_off_batched_executor(self):
        task = build_task("audio", preset="tiny")
        with pytest.raises(ValueError, match="batched"):
            run_robustness_sweep(
                task,
                [proposed()],
                bitflip_sweep([0.0, 0.1]),
                preset="tiny",
                n_runs=2,
                executor="serial",
                scenario_batched=True,
            )
