"""Tests for fault injection orchestration and Monte Carlo campaigns."""

import numpy as np
import pytest

from repro import nn
from repro.faults import (
    FaultInjector,
    FaultSpec,
    MonteCarloCampaign,
    additive_sweep,
    bitflip_sweep,
    multiplicative_sweep,
    uniform_sweep,
)
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.tensor import Tensor, manual_seed


def binary_model():
    return nn.Sequential(
        QuantConv2d(1, 4, 3, padding=1, weight_bits=1),
        SignActivation(),
        QuantConv2d(4, 4, 3, padding=1, weight_bits=1),
        nn.GlobalAvgPool2d(),
        QuantLinear(4, 2, weight_bits=8),
    )


class TestFaultInjector:
    def test_attach_bitflip_hits_all_weight_sites(self):
        model = binary_model()
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="bitflip", level=0.1), np.random.default_rng(0))
        sites = [m for m in model.modules() if hasattr(m, "weight_fault")]
        assert all(m.weight_fault is not None for m in sites)
        injector.detach()
        assert all(m.weight_fault is None for m in sites)

    def test_variation_routes_to_activations_for_binary(self):
        model = binary_model()
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="additive", level=0.2), np.random.default_rng(0))
        convs = [m for m in model.modules() if isinstance(m, QuantConv2d)]
        linears = [m for m in model.modules() if isinstance(m, QuantLinear)]
        signs = [m for m in model.modules() if isinstance(m, SignActivation)]
        # Binary conv layers get NO weight fault (variation goes to signs).
        assert all(c.weight_fault is None for c in convs)
        # The 8-bit linear head DOES get the weight-level variation.
        assert all(l.weight_fault is not None for l in linears)
        assert all(s.pre_fault is not None for s in signs)

    def test_bitflips_always_target_weights(self):
        model = binary_model()
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="bitflip", level=0.1), np.random.default_rng(0))
        signs = [m for m in model.modules() if isinstance(m, SignActivation)]
        assert all(s.pre_fault is None for s in signs)

    def test_context_manager_detaches(self):
        model = binary_model()
        with FaultInjector(model) as injector:
            injector.attach(FaultSpec(kind="bitflip", level=0.1), np.random.default_rng(0))
        convs = [m for m in model.modules() if isinstance(m, QuantConv2d)]
        assert all(c.weight_fault is None for c in convs)

    def test_attached_fault_changes_output(self, rng):
        manual_seed(0)
        model = binary_model()
        model.eval()
        x = Tensor(rng.normal(size=(2, 1, 8, 8)))
        clean = model(x).data.copy()
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="bitflip", level=0.3), np.random.default_rng(0))
        faulty = model(x).data
        injector.detach()
        restored = model(x).data
        assert not np.allclose(clean, faulty)
        np.testing.assert_allclose(restored, clean)

    def test_layers_get_independent_patterns(self):
        manual_seed(0)
        model = nn.Sequential(
            QuantLinear(8, 8, weight_bits=8), QuantLinear(8, 8, weight_bits=8)
        )
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="bitflip", level=0.2), np.random.default_rng(0))
        x = Tensor(np.eye(8))
        model.eval()
        model(x)
        a = model[0].last_quantized
        b = model[1].last_quantized
        flips_a = model[0].weight_fault(a) != a.codes
        flips_b = model[1].weight_fault(b) != b.codes
        assert not np.array_equal(flips_a, flips_b)


class TestMonteCarloCampaign:
    def _campaign(self, n_runs=5):
        manual_seed(0)
        model = binary_model()
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(16, 1, 8, 8)))
        y = rng.integers(0, 2, 16)

        def evaluator(m):
            m.eval()
            from repro.tensor import no_grad

            with no_grad():
                return float((m(x).data.argmax(axis=1) == y).mean())

        return MonteCarloCampaign(model, evaluator, n_runs=n_runs, base_seed=0)

    def test_fault_free_runs_once(self):
        campaign = self._campaign()
        result = campaign.run(FaultSpec(kind="none", level=0.0))
        assert result.std == 0.0
        assert result.n_runs == 5  # broadcast to n_runs values

    def test_faulty_runs_vary(self):
        campaign = self._campaign(n_runs=8)
        result = campaign.run(FaultSpec(kind="bitflip", level=0.3))
        assert result.std >= 0.0
        assert len(np.unique(result.values)) >= 1

    def test_reproducible_with_same_seed(self):
        r1 = self._campaign().run(FaultSpec(kind="bitflip", level=0.2), 3)
        r2 = self._campaign().run(FaultSpec(kind="bitflip", level=0.2), 3)
        np.testing.assert_array_equal(r1.values, r2.values)

    def test_scenarios_are_independent(self):
        campaign = self._campaign()
        r1 = campaign.run(FaultSpec(kind="bitflip", level=0.2), 0)
        r2 = campaign.run(FaultSpec(kind="bitflip", level=0.2), 1)
        assert not np.array_equal(r1.values, r2.values)

    def test_sweep_order_and_progress(self):
        campaign = self._campaign(n_runs=3)
        messages = []
        results = campaign.sweep(
            bitflip_sweep([0.0, 0.1]), progress=messages.append
        )
        assert len(results) == 2
        assert len(messages) == 2
        assert "fault-free" in messages[0]

    def test_model_restored_after_campaign(self):
        campaign = self._campaign(n_runs=2)
        campaign.run(FaultSpec(kind="bitflip", level=0.3))
        sites = [
            m
            for m in campaign.model.modules()
            if hasattr(m, "weight_fault")
        ]
        assert all(m.weight_fault is None for m in sites)


class TestCampaignEdgeCases:
    def _counting_campaign(self, n_runs=5):
        manual_seed(0)
        model = binary_model()
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(8, 1, 8, 8)))
        y = rng.integers(0, 2, 8)
        calls = []

        def evaluator(m):
            calls.append(1)
            m.eval()
            from repro.tensor import no_grad

            with no_grad():
                return float((m(x).data.argmax(axis=1) == y).mean())

        return MonteCarloCampaign(model, evaluator, n_runs=n_runs, base_seed=0), calls

    def test_none_spec_evaluates_exactly_once_and_broadcasts(self):
        campaign, calls = self._counting_campaign(n_runs=5)
        result = campaign.run(FaultSpec(kind="none", level=0.0))
        assert len(calls) == 1
        assert result.n_runs == 5
        assert np.all(result.values == result.values[0])

    def test_zero_level_spec_short_circuits_like_none(self):
        campaign, calls = self._counting_campaign(n_runs=4)
        result = campaign.run(FaultSpec(kind="bitflip", level=0.0))
        assert len(calls) == 1
        assert np.all(result.values == result.values[0])

    def test_faulty_spec_evaluates_once_per_run(self):
        campaign, calls = self._counting_campaign(n_runs=4)
        campaign.run(FaultSpec(kind="bitflip", level=0.2))
        assert len(calls) == 4

    def test_attach_is_idempotent(self):
        model = binary_model()
        injector = FaultInjector(model)
        spec = FaultSpec(kind="bitflip", level=0.1)
        injector.attach(spec, np.random.default_rng(0))
        injector.attach(spec, np.random.default_rng(0))
        sites = [m for m in model.modules() if hasattr(m, "weight_fault")]
        # Re-attaching replaces hooks instead of stacking them, and one
        # detach restores the ideal chip.
        assert all(m.weight_fault is not None for m in sites)
        injector.detach()
        assert all(m.weight_fault is None for m in sites)

    def test_detach_is_idempotent_and_safe_on_clean_model(self):
        model = binary_model()
        injector = FaultInjector(model)
        injector.detach()  # never attached: must be a no-op
        injector.attach(FaultSpec(kind="additive", level=0.2), np.random.default_rng(0))
        injector.detach()
        injector.detach()
        sites = [m for m in model.modules() if hasattr(m, "weight_fault")]
        signs = [m for m in model.modules() if isinstance(m, SignActivation)]
        assert all(m.weight_fault is None for m in sites)
        assert all(s.pre_fault is None for s in signs)

    def test_layers_get_independent_variation_realizations(self):
        manual_seed(0)
        model = nn.Sequential(
            QuantLinear(8, 8, weight_bits=8), QuantLinear(8, 8, weight_bits=8)
        )
        injector = FaultInjector(model)
        injector.attach(FaultSpec(kind="additive", level=0.3), np.random.default_rng(0))
        model.eval()
        model(Tensor(np.eye(8)))
        a, b = model[0].last_quantized, model[1].last_quantized
        noise_a = model[0].weight_fault(a) - a.codes
        noise_b = model[1].weight_fault(b) - b.codes
        assert not np.array_equal(noise_a, noise_b)


class TestSweepBuilders:
    def test_zero_level_becomes_none(self):
        specs = bitflip_sweep([0.0, 0.05, 0.1])
        assert specs[0].kind == "none"
        assert specs[1].kind == "bitflip" and specs[1].level == 0.05

    @pytest.mark.parametrize(
        "builder,kind",
        [
            (additive_sweep, "additive"),
            (multiplicative_sweep, "multiplicative"),
            (uniform_sweep, "uniform"),
        ],
    )
    def test_builders_tag_kind(self, builder, kind):
        specs = builder([0.0, 0.1])
        assert specs[0].kind == "none"
        assert specs[1].kind == kind
