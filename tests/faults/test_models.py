"""Tests for the NVM non-ideality models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    ActivationNoise,
    AdditiveVariation,
    BitFlipFault,
    FaultSpec,
    MultiplicativeVariation,
    StuckAtFault,
    UniformNoiseFault,
)
from repro.quant.functional import QuantizedWeight


def binary_qw(rng, shape=(32, 32)):
    codes = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return QuantizedWeight(codes=codes, scale=np.ones((shape[0], 1)), bits=1)


def multibit_qw(rng, bits=8, shape=(32, 32)):
    qmax = 2 ** (bits - 1) - 1
    codes = rng.integers(-qmax, qmax + 1, size=shape).astype(np.float64)
    return QuantizedWeight(codes=codes, scale=np.asarray(0.01), bits=bits)


class TestBitFlipFault:
    def test_binary_flip_rate(self, rng):
        qw = binary_qw(rng, (100, 100))
        fault = BitFlipFault(0.15, np.random.default_rng(0))
        flipped = fault(qw)
        rate = (flipped != qw.codes).mean()
        assert abs(rate - 0.15) < 0.02

    def test_binary_flip_negates(self, rng):
        qw = binary_qw(rng)
        fault = BitFlipFault(0.5, np.random.default_rng(0))
        flipped = fault(qw)
        changed = flipped != qw.codes
        np.testing.assert_array_equal(flipped[changed], -qw.codes[changed])

    def test_zero_rate_identity(self, rng):
        qw = binary_qw(rng)
        fault = BitFlipFault(0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(fault(qw), qw.codes)

    def test_pattern_frozen_per_chip(self, rng):
        qw = binary_qw(rng)
        fault = BitFlipFault(0.2, np.random.default_rng(0))
        np.testing.assert_array_equal(fault(qw), fault(qw))

    def test_different_chips_different_patterns(self, rng):
        qw = binary_qw(rng)
        a = BitFlipFault(0.2, np.random.default_rng(0))(qw)
        b = BitFlipFault(0.2, np.random.default_rng(1))(qw)
        assert not np.array_equal(a, b)

    def test_multibit_codes_stay_in_range(self, rng):
        qw = multibit_qw(rng, bits=8)
        fault = BitFlipFault(0.3, np.random.default_rng(0))
        flipped = fault(qw)
        assert flipped.max() <= qw.qmax and flipped.min() >= -qw.qmax

    def test_multibit_flips_alter_magnitude_and_sign(self, rng):
        qw = multibit_qw(rng, bits=8, shape=(64, 64))
        fault = BitFlipFault(0.1, np.random.default_rng(0))
        flipped = fault(qw)
        assert (np.abs(flipped) != np.abs(qw.codes)).any()  # magnitude bits
        assert (np.sign(flipped) != np.sign(qw.codes)).any()  # sign bit

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            BitFlipFault(1.5, np.random.default_rng(0))

    @given(st.floats(0.01, 0.5))
    @settings(max_examples=20, deadline=None)
    def test_property_flip_rate_tracks_parameter(self, rate):
        rng = np.random.default_rng(7)
        codes = np.where(rng.random((80, 80)) < 0.5, -1.0, 1.0)
        qw = QuantizedWeight(codes=codes, scale=np.ones(1), bits=1)
        flipped = BitFlipFault(rate, np.random.default_rng(3))(qw)
        observed = (flipped != codes).mean()
        assert abs(observed - rate) < 0.05


class TestVariations:
    def test_additive_statistics(self, rng):
        qw = multibit_qw(rng, shape=(100, 100))
        fault = AdditiveVariation(0.1, np.random.default_rng(0))
        delta = fault(qw) - qw.codes
        assert abs(delta.std() - 0.1 * qw.qmax) / (0.1 * qw.qmax) < 0.05
        assert abs(delta.mean()) < 0.5

    def test_multiplicative_scales_with_magnitude(self, rng):
        qw = multibit_qw(rng, shape=(100, 100))
        fault = MultiplicativeVariation(0.1, np.random.default_rng(0))
        delta = fault(qw) - qw.codes
        big = np.abs(qw.codes) > 100
        small = (np.abs(qw.codes) < 20) & (np.abs(qw.codes) > 0)
        assert np.abs(delta[big]).mean() > np.abs(delta[small]).mean()

    def test_multiplicative_zero_codes_unchanged(self, rng):
        qw = multibit_qw(rng)
        qw.codes[0, :] = 0.0
        fault = MultiplicativeVariation(0.3, np.random.default_rng(0))
        np.testing.assert_array_equal(fault(qw)[0, :], 0.0)

    def test_uniform_noise_bounded(self, rng):
        qw = multibit_qw(rng)
        fault = UniformNoiseFault(0.2, np.random.default_rng(0))
        delta = fault(qw) - qw.codes
        assert np.abs(delta).max() <= 0.2 * qw.qmax + 1e-9

    def test_frozen_per_chip(self, rng):
        qw = multibit_qw(rng)
        fault = AdditiveVariation(0.1, np.random.default_rng(0))
        np.testing.assert_array_equal(fault(qw), fault(qw))

    def test_negative_sigma_raises(self):
        with pytest.raises(ValueError):
            AdditiveVariation(-0.1, np.random.default_rng(0))


class TestStuckAtFault:
    def test_stuck_rate(self, rng):
        qw = multibit_qw(rng, shape=(100, 100))
        fault = StuckAtFault(0.2, np.random.default_rng(0), stuck_to="zero")
        stuck = fault(qw)
        frac = ((stuck == 0) & (qw.codes != 0)).mean()
        assert frac > 0.15

    def test_stuck_high_and_low(self, rng):
        qw = multibit_qw(rng)
        high = StuckAtFault(0.3, np.random.default_rng(0), stuck_to="high")(qw)
        low = StuckAtFault(0.3, np.random.default_rng(0), stuck_to="low")(qw)
        assert (high == qw.qmax).sum() > (qw.codes == qw.qmax).sum()
        assert (low == -qw.qmax).sum() > (qw.codes == -qw.qmax).sum()

    def test_binary_stuck_zero_maps_to_one(self, rng):
        # Binary cells have no zero state; stuck-at-zero degenerates to +1.
        qw = binary_qw(rng)
        stuck = StuckAtFault(0.5, np.random.default_rng(0), stuck_to="zero")(qw)
        assert set(np.unique(stuck)) <= {-1.0, 1.0}

    def test_invalid_target_raises(self):
        with pytest.raises(ValueError):
            StuckAtFault(0.1, np.random.default_rng(0), stuck_to="sideways")


class TestActivationNoise:
    def test_additive(self, rng):
        noise = ActivationNoise(np.random.default_rng(0), additive_sigma=0.2)
        x = np.zeros((100, 100))
        out = noise(x)
        assert abs(out.std() - 0.2) < 0.01

    def test_multiplicative(self, rng):
        noise = ActivationNoise(np.random.default_rng(0), multiplicative_sigma=0.1)
        x = np.full((100, 100), 3.0)
        out = noise(x)
        assert abs(out.std() - 0.3) < 0.02

    def test_uniform(self, rng):
        noise = ActivationNoise(np.random.default_rng(0), uniform_strength=0.5)
        out = noise(np.zeros(10000))
        assert np.abs(out).max() <= 0.5
        assert out.std() > 0.2

    def test_fresh_per_call(self):
        noise = ActivationNoise(np.random.default_rng(0), additive_sigma=0.1)
        x = np.zeros(100)
        assert not np.array_equal(noise(x), noise(x))


class TestFaultSpec:
    def test_invalid_kind_raises(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="cosmic-rays", level=0.1)

    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("bitflip", BitFlipFault),
            ("additive", AdditiveVariation),
            ("multiplicative", MultiplicativeVariation),
            ("uniform", UniformNoiseFault),
            ("stuck", StuckAtFault),
        ],
    )
    def test_builds_correct_weight_model(self, kind, cls):
        spec = FaultSpec(kind=kind, level=0.1)
        model = spec.build_weight_model(np.random.default_rng(0))
        assert isinstance(model, cls)

    def test_none_builds_nothing(self):
        spec = FaultSpec(kind="none", level=0.0)
        assert spec.build_weight_model(np.random.default_rng(0)) is None
        assert spec.build_activation_model(np.random.default_rng(0)) is None

    def test_variation_kinds_have_activation_models(self):
        for kind in ("additive", "multiplicative", "uniform"):
            spec = FaultSpec(kind=kind, level=0.1)
            assert spec.is_variation
            assert spec.build_activation_model(np.random.default_rng(0)) is not None

    def test_bitflip_has_no_activation_model(self):
        spec = FaultSpec(kind="bitflip", level=0.1)
        assert not spec.is_variation
        assert spec.build_activation_model(np.random.default_rng(0)) is None

    def test_describe(self):
        assert FaultSpec(kind="bitflip", level=0.1).describe() == "bitflip=10%"
        assert FaultSpec(kind="additive", level=0.2).describe() == "additive=0.2"
        assert FaultSpec(kind="none", level=0.0).describe() == "fault-free"
