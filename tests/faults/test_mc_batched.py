"""Tests for MC-sample-batched Bayesian evaluation (the instance axis).

The ``batched`` executor's MC mode stacks the Monte Carlo sample loop of a
Bayesian evaluator into the chip-batched pass, so one forward carries a
``chips x mc_samples`` instance axis.  Its contract is the chip-batched
contract extended one axis: per-chip metrics must be **bit-identical** to
the serial looped reference (same ``SeedSequence``-derived per-sample
streams, drawn in the serial order).  These tests pin that contract across
all four task topologies, the Bayesian methods, and every fault kind, plus
the instance-axis primitives and edge cases (no chip batch, ``chip_limit``
sub-batching, single sample).
"""

import numpy as np
import pytest

from repro import nn
from repro.core import InvertedNorm
from repro.core.bayesian import BayesianClassifier, mc_forward
from repro.eval import build_task, make_evaluator, run_robustness_sweep, trained_model
from repro.faults import (
    FaultSpec,
    MonteCarloCampaign,
    WorkCell,
    additive_sweep,
    bitflip_sweep,
    evaluate_cell,
    evaluate_cells_batched,
    multiplicative_sweep,
    uniform_sweep,
)
from repro.models import proposed, spatial_spindrop, spindrop
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.quant.layers import deploy_cache_disabled
from repro.tensor import Tensor, manual_seed
from repro.tensor.chipbatch import (
    ChipBatchRng,
    active_chip_count,
    active_sample_count,
    chip_batch,
    mc_batching,
    mc_batching_active,
    mc_sample_axis,
    spawn_sample_streams,
)
from repro.tensor.random import scoped_rng


def build_pair(seed=0, mc_samples=3):
    """Small mixed binary/multi-bit model with a chip-aware MC evaluator."""
    manual_seed(seed)
    model = nn.Sequential(
        QuantConv2d(1, 3, 3, padding=1, weight_bits=1),
        SignActivation(),
        nn.GlobalAvgPool2d(),
        nn.Dropout(0.25),
        QuantLinear(3, 2, weight_bits=8),
    )
    data_rng = np.random.default_rng(7)
    x = data_rng.normal(size=(10, 1, 6, 6))
    y = data_rng.integers(0, 2, 10)

    def evaluator(m):
        n_chips = active_chip_count()
        inp = x if n_chips is None else np.broadcast_to(x[None], (n_chips,) + x.shape)
        logits = mc_forward(m, Tensor(inp.copy()), num_samples=mc_samples)
        pred = logits.mean(axis=0).argmax(axis=-1)
        return (pred == y).mean(axis=-1)

    return model, evaluator


ALL_FAULT_KINDS = [
    FaultSpec(kind="bitflip", level=0.1),
    FaultSpec(kind="additive", level=0.3),
    FaultSpec(kind="multiplicative", level=0.4),
    FaultSpec(kind="uniform", level=0.2),
    FaultSpec(kind="stuck", level=0.2, stuck_to="high"),
    FaultSpec(kind="drift", level=24.0),
]


class TestInstanceAxisPrimitives:
    def test_sample_axis_composes_with_chip_batch(self):
        assert active_chip_count() is None and active_sample_count() is None
        with chip_batch(5):
            assert active_chip_count() == 5
            with mc_sample_axis(3):
                assert active_chip_count() == 15
                assert active_sample_count() == 3
            assert active_chip_count() == 5
            assert active_sample_count() is None
        assert active_chip_count() is None

    def test_sample_axis_alone(self):
        with mc_sample_axis(4):
            assert active_chip_count() == 4
            assert active_sample_count() == 4

    def test_sample_axis_rejects_nonpositive(self):
        with pytest.raises(ValueError, match=">= 1"):
            with mc_sample_axis(0):
                pass

    def test_mc_batching_flag_scopes(self):
        assert not mc_batching_active()
        with mc_batching(True):
            assert mc_batching_active()
            with mc_batching(False):
                assert not mc_batching_active()
            assert mc_batching_active()
        assert not mc_batching_active()

    def test_spawn_sample_streams_plain_generator(self):
        a = np.random.default_rng(3)
        b = np.random.default_rng(3)
        per_sample, per_instance = spawn_sample_streams(a, 4)
        expected = b.spawn(4)
        assert len(per_sample) == 4 and len(per_instance) == 4
        for got, ref in zip(per_sample, expected):
            np.testing.assert_array_equal(got.random(5), ref.random(5))
        assert per_instance == per_sample

    def test_spawn_sample_streams_chip_batch_is_chip_major(self):
        seeds = [11, 22]
        stacked = ChipBatchRng([np.random.default_rng(s) for s in seeds])
        per_sample, per_instance = spawn_sample_streams(stacked, 3)
        assert all(isinstance(ps, ChipBatchRng) for ps in per_sample)
        # per_sample[s] holds chip c's s-th child; per_instance flattens
        # the same generator objects chip-major: [c0s0, c0s1, c0s2, c1s0, ...]
        for c in range(2):
            for s in range(3):
                assert per_instance[c * 3 + s] is per_sample[s].generators[c]
        # and the children are the chips' SeedSequence children
        refs = [np.random.default_rng(s).spawn(3) for s in seeds]
        flat_refs = [child for chip in refs for child in chip]
        for got, ref in zip(per_instance, flat_refs):
            np.testing.assert_array_equal(got.random(4), ref.random(4))


class TestMcForwardBatched:
    def _model(self, seed=0):
        manual_seed(seed)
        return nn.Sequential(
            nn.Linear(6, 16),
            InvertedNorm(16, p=0.4, granularity="element"),
            nn.ReLU(),
            nn.Dropout(0.3),
            nn.Linear(16, 3),
        )

    def test_batched_matches_looped_under_chip_batch(self):
        model = self._model()
        x = np.random.default_rng(1).normal(size=(5, 6))
        outs = {}
        for flag in (False, True):
            gens = [np.random.default_rng((c + 1) * 13) for c in range(3)]
            xb = np.broadcast_to(x[None], (3,) + x.shape).copy()
            with chip_batch(3), scoped_rng(ChipBatchRng(gens)), mc_batching(flag):
                outs[flag] = mc_forward(model, Tensor(xb), 4)
        assert outs[True].shape == (4, 3, 5, 3)
        np.testing.assert_array_equal(outs[False], outs[True])

    def test_batched_matches_looped_without_chip_batch(self):
        model = self._model()
        x = np.random.default_rng(2).normal(size=(5, 6))
        outs = {}
        for flag in (False, True):
            with scoped_rng(np.random.default_rng(5)), mc_batching(flag):
                outs[flag] = mc_forward(model, Tensor(x.copy()), 4)
        assert outs[True].shape == (4, 5, 3)
        np.testing.assert_array_equal(outs[False], outs[True])

    def test_single_sample_uses_looped_path(self):
        model = self._model()
        x = np.random.default_rng(3).normal(size=(2, 6))
        outs = {}
        for flag in (False, True):
            with scoped_rng(np.random.default_rng(9)), mc_batching(flag):
                outs[flag] = mc_forward(model, Tensor(x.copy()), 1)
        np.testing.assert_array_equal(outs[False], outs[True])

    def test_rejects_nonpositive_samples(self):
        model = self._model()
        with pytest.raises(ValueError, match="num_samples"):
            mc_forward(model, Tensor(np.zeros((1, 6))), 0)

    def test_classifier_rides_batched_path(self):
        model = self._model()
        x = Tensor(np.random.default_rng(4).normal(size=(6, 6)))
        probs = {}
        for flag in (False, True):
            with scoped_rng(np.random.default_rng(21)), mc_batching(flag):
                probs[flag] = BayesianClassifier(model, num_samples=5).predict_proba(x)
        np.testing.assert_array_equal(probs[False], probs[True])

    def test_context_restored_after_batched_forward(self):
        model = self._model()
        with scoped_rng(np.random.default_rng(0)), mc_batching(True):
            mc_forward(model, Tensor(np.zeros((2, 6))), 3)
            assert active_chip_count() is None
            assert active_sample_count() is None


class TestEvaluateCellsMcBatched:
    @pytest.mark.parametrize("spec", ALL_FAULT_KINDS, ids=lambda s: s.describe())
    def test_bit_identical_to_serial_looped(self, spec):
        model, evaluator = build_pair()
        cells = [WorkCell(2, run, spec) for run in range(5)]
        serial = np.array(
            [evaluate_cell(model, evaluator, cell, base_seed=5) for cell in cells]
        )
        mc = evaluate_cells_batched(
            model, evaluator, cells, base_seed=5, mc_batched=True
        )
        looped = evaluate_cells_batched(
            model, evaluator, cells, base_seed=5, mc_batched=False
        )
        np.testing.assert_array_equal(serial, mc)
        np.testing.assert_array_equal(serial, looped)

    def test_identical_with_cache_disabled(self):
        # Cached-code forwards must be bit-identical to recomputation.
        spec = FaultSpec(kind="bitflip", level=0.15)
        model, evaluator = build_pair()
        cells = [WorkCell(1, run, spec) for run in range(4)]
        cached = evaluate_cells_batched(model, evaluator, cells, base_seed=3)
        with deploy_cache_disabled():
            recomputed = evaluate_cells_batched(
                model, evaluator, cells, base_seed=3
            )
        np.testing.assert_array_equal(cached, recomputed)

    def test_mc_batched_requires_batched_executor(self):
        model, evaluator = build_pair()
        campaign = MonteCarloCampaign(
            model, evaluator, n_runs=2, executor="serial", mc_batched=True
        )
        with pytest.raises(ValueError, match="batched"):
            campaign.run(FaultSpec(kind="bitflip", level=0.1))

    @pytest.mark.parametrize("chip_limit", [1, 2, 3])
    def test_chip_limit_subbatching_is_invisible(self, chip_limit):
        model, evaluator = build_pair()
        specs = bitflip_sweep([0.0, 0.15])
        serial = MonteCarloCampaign(
            model, evaluator, n_runs=5, base_seed=3, executor="serial"
        ).sweep(specs)
        limited = MonteCarloCampaign(
            model,
            evaluator,
            n_runs=5,
            base_seed=3,
            executor="batched",
            chip_limit=chip_limit,
            mc_batched=True,
        ).sweep(specs)
        for s, b in zip(serial, limited):
            np.testing.assert_array_equal(s.values, b.values)


class TestTaskTopologyIdentity:
    """MC-batched == serial looped on all four real tiny-task topologies."""

    def _compare(self, task_name, method, specs, samples=3, n_runs=3):
        task = build_task(task_name, preset="tiny")
        model = trained_model(task, method, "tiny", seed=0)
        evaluator = make_evaluator(
            task.name, task.test_set, method, mc_samples=samples
        )
        results = {}
        for label, kwargs in (
            ("serial", dict(executor="serial")),
            ("mc", dict(executor="batched", mc_batched=True)),
            ("looped", dict(executor="batched", mc_batched=False)),
        ):
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=n_runs, base_seed=0, **kwargs
            )
            results[label] = campaign.sweep(specs)
        for s, m, l in zip(results["serial"], results["mc"], results["looped"]):
            np.testing.assert_array_equal(s.values, m.values)
            np.testing.assert_array_equal(s.values, l.values)

    # image / ResNet-18: binary weights, variation routes to activations
    def test_image_binary_bitflip_proposed(self):
        self._compare("image", proposed(), bitflip_sweep([0.0, 0.1]), n_runs=2)

    def test_image_activation_variation_spindrop(self):
        self._compare("image", spindrop(), additive_sweep([0.0, 0.3]), n_runs=2)

    # audio / M5: 8-bit conv1d
    def test_audio_multibit_bitflip_proposed(self):
        self._compare("audio", proposed(), bitflip_sweep([0.0, 0.1]))

    def test_audio_additive_spatial_spindrop(self):
        self._compare("audio", spatial_spindrop(), additive_sweep([0.0, 0.2]))

    def test_audio_stuck_at_proposed(self):
        self._compare(
            "audio", proposed(), [FaultSpec(kind="none", level=0.0),
                                  FaultSpec(kind="stuck", level=0.2)]
        )

    # co2 / LSTM: 8-bit recurrent cells, frozen (variational) masks
    def test_lstm_uniform_proposed(self):
        self._compare("co2", proposed(), uniform_sweep([0.0, 0.2]))

    def test_lstm_multiplicative_spindrop(self):
        self._compare("co2", spindrop(), multiplicative_sweep([0.0, 0.4]))

    def test_lstm_drift_proposed(self):
        self._compare(
            "co2", proposed(), [FaultSpec(kind="none", level=0.0),
                                FaultSpec(kind="drift", level=24.0)]
        )

    # vessels / U-Net: binary weights + PACT activations, group norm
    def test_unet_bitflip_proposed(self):
        self._compare("vessels", proposed(), bitflip_sweep([0.0, 0.1]), n_runs=2)

    def test_unet_additive_proposed(self):
        self._compare("vessels", proposed(), additive_sweep([0.0, 0.3]), n_runs=2)


class TestSweepPlumbing:
    def test_run_robustness_sweep_accepts_mc_flag(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        from repro.eval import clear_memory_cache

        clear_memory_cache()
        task = build_task("audio", preset="tiny")
        specs = bitflip_sweep([0.0, 0.1])
        kwargs = dict(preset="tiny", n_runs=3, use_cache=False)
        serial = run_robustness_sweep(
            task, [proposed()], specs, executor="serial", **kwargs
        )
        mc = run_robustness_sweep(
            task, [proposed()], specs, executor="batched", mc_batched=True, **kwargs
        )
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, mc.curves["proposed"].means
        )
        clear_memory_cache()
