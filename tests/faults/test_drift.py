"""Tests for the retention-drift fault model (extension; Section I lists
drift among the runtime non-idealities)."""

import numpy as np
import pytest

from repro.faults import FaultSpec, RetentionDriftFault
from repro.quant.functional import QuantizedWeight


def qw(rng, bits=8, shape=(32, 32)):
    qmax = 2 ** (bits - 1) - 1
    codes = rng.integers(-qmax, qmax + 1, size=shape).astype(np.float64)
    return QuantizedWeight(codes=codes, scale=np.asarray(0.01), bits=bits)


class TestRetentionDrift:
    def test_magnitudes_shrink(self, rng):
        fault = RetentionDriftFault(np.random.default_rng(0), t_hours=100.0)
        record = qw(rng)
        drifted = fault(record)
        assert (np.abs(drifted) <= np.abs(record.codes) + 1e-12).all()

    def test_signs_preserved(self, rng):
        fault = RetentionDriftFault(np.random.default_rng(0), t_hours=50.0)
        record = qw(rng)
        drifted = fault(record)
        nonzero = record.codes != 0
        assert (np.sign(drifted[nonzero]) == np.sign(record.codes[nonzero])).all()

    def test_longer_time_more_decay(self, rng):
        record = qw(rng)
        short = RetentionDriftFault(np.random.default_rng(0), t_hours=2.0)(record)
        long = RetentionDriftFault(np.random.default_rng(0), t_hours=1000.0)(record)
        assert np.abs(long).mean() < np.abs(short).mean()

    def test_mean_decay_matches_exponent(self, rng):
        nu, t = 0.05, 100.0
        fault = RetentionDriftFault(
            np.random.default_rng(0), t_hours=t, nu=nu, sigma_nu=0.0
        )
        record = qw(rng)
        drifted = fault(record)
        expected_factor = t ** (-nu)
        nonzero = record.codes != 0
        ratio = (drifted[nonzero] / record.codes[nonzero]).mean()
        np.testing.assert_allclose(ratio, expected_factor, rtol=1e-10)

    def test_frozen_per_chip(self, rng):
        fault = RetentionDriftFault(np.random.default_rng(0), t_hours=24.0)
        record = qw(rng)
        np.testing.assert_array_equal(fault(record), fault(record))

    def test_invalid_time_raises(self):
        with pytest.raises(ValueError):
            RetentionDriftFault(np.random.default_rng(0), t_hours=0.5)

    def test_spec_builds_drift_model(self):
        spec = FaultSpec(kind="drift", level=24.0)
        model = spec.build_weight_model(np.random.default_rng(0))
        assert isinstance(model, RetentionDriftFault)
        assert model.t_hours == 24.0
        assert not spec.is_variation  # drift targets stored weights
