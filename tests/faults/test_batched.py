"""Tests for the chip-batched campaign backend.

The ``batched`` executor's contract is the serial contract plus one word:
stacking a scenario's chip instances along a leading chip axis and
evaluating them in one vectorized pass must produce **bit-identical
per-chip metrics** to evaluating the cells one at a time.  These tests
check that contract across fault models (multi-bit bit flips, binary bit
flips, additive/uniform variation), topologies (conv nets, the LSTM
forecaster, a binary net with sign-activation injection sites), chip-axis
edge cases (C=1, chip_limit sub-batching), and the campaign-result cache
(batched runs produce and consume the same keys as serial runs).
"""

import numpy as np
import pytest

from repro import nn
from repro.core.bayesian import mc_forward
from repro.eval import (
    build_task,
    campaign_key,
    clear_memory_cache,
    load_campaign_values,
    make_evaluator,
    run_robustness_sweep,
    trained_model,
)
from repro.faults import (
    ChipBatchedWeightFault,
    FaultSpec,
    MonteCarloCampaign,
    WorkCell,
    additive_sweep,
    bitflip_sweep,
    cell_rngs,
    evaluate_cell,
    evaluate_cells_batched,
    uniform_sweep,
)
from repro.models import conventional, proposed, spindrop
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.quant.functional import QuantizedWeight
from repro.tensor import Tensor, chip_batch, manual_seed
from repro.tensor.chipbatch import ChipBatchRng, active_chip_count


def build_pair(seed=0):
    """Small mixed binary/multi-bit model with a chip-aware evaluator."""
    from repro.tensor.chipbatch import active_chip_count as chips

    manual_seed(seed)
    model = nn.Sequential(
        QuantConv2d(1, 3, 3, padding=1, weight_bits=1),
        SignActivation(),
        nn.GlobalAvgPool2d(),
        nn.Dropout(0.25),
        QuantLinear(3, 2, weight_bits=8),
    )
    data_rng = np.random.default_rng(7)
    x = data_rng.normal(size=(10, 1, 6, 6))
    y = data_rng.integers(0, 2, 10)

    def evaluator(m):
        n_chips = chips()
        inp = x if n_chips is None else np.broadcast_to(x[None], (n_chips,) + x.shape)
        logits = mc_forward(m, Tensor(inp.copy()), num_samples=3)
        pred = logits.mean(axis=0).argmax(axis=-1)
        return (pred == y).mean(axis=-1)

    return model, evaluator


def _serial_reference(model, evaluator, cells, base_seed):
    return np.array(
        [evaluate_cell(model, evaluator, cell, base_seed) for cell in cells]
    )


class TestEvaluateCellsBatched:
    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(kind="bitflip", level=0.1),  # binary + 8-bit sites
            FaultSpec(kind="additive", level=0.3),  # routed to activations
            FaultSpec(kind="stuck", level=0.2, stuck_to="high"),
            FaultSpec(kind="drift", level=24.0),
        ],
    )
    def test_bit_identical_to_serial(self, spec):
        model, evaluator = build_pair()
        cells = [WorkCell(2, run, spec) for run in range(6)]
        serial = _serial_reference(model, evaluator, cells, base_seed=5)
        batched = evaluate_cells_batched(model, evaluator, cells, base_seed=5)
        np.testing.assert_array_equal(serial, batched)

    def test_single_chip_batch(self):
        model, evaluator = build_pair()
        cells = [WorkCell(0, 3, FaultSpec(kind="bitflip", level=0.2))]
        serial = _serial_reference(model, evaluator, cells, base_seed=1)
        batched = evaluate_cells_batched(model, evaluator, cells, base_seed=1)
        np.testing.assert_array_equal(serial, batched)

    def test_rejects_mixed_scenarios(self):
        model, evaluator = build_pair()
        spec = FaultSpec(kind="bitflip", level=0.1)
        cells = [WorkCell(0, 0, spec), WorkCell(1, 0, spec)]
        with pytest.raises(ValueError, match="single-scenario"):
            evaluate_cells_batched(model, evaluator, cells, base_seed=0)

    def test_detaches_hooks_and_restores_context(self):
        model, evaluator = build_pair()
        cells = [WorkCell(0, r, FaultSpec(kind="bitflip", level=0.1)) for r in range(2)]
        evaluate_cells_batched(model, evaluator, cells, base_seed=0)
        assert active_chip_count() is None
        assert all(
            m.weight_fault is None
            for m in model.modules()
            if hasattr(m, "weight_fault")
        )


class TestBackendEquivalence:
    def _campaign(self, executor, **kwargs):
        model, evaluator = build_pair()
        return MonteCarloCampaign(
            model, evaluator, n_runs=5, base_seed=3, executor=executor, **kwargs
        )

    @pytest.mark.parametrize("sweep_builder", [bitflip_sweep, additive_sweep])
    def test_batched_matches_serial_sweep(self, sweep_builder):
        specs = sweep_builder([0.0, 0.1, 0.2])
        serial = self._campaign("serial").sweep(specs)
        batched = self._campaign("batched").sweep(specs)
        for s, b in zip(serial, batched):
            np.testing.assert_array_equal(s.values, b.values)

    @pytest.mark.parametrize("chip_limit", [1, 2, 4])
    def test_chip_limit_subbatching_is_invisible(self, chip_limit):
        specs = bitflip_sweep([0.0, 0.15])
        serial = self._campaign("serial").sweep(specs)
        limited = self._campaign("batched", chip_limit=chip_limit).sweep(specs)
        for s, b in zip(serial, limited):
            np.testing.assert_array_equal(s.values, b.values)


class TestTaskIdentity:
    """Batched == serial on the real tiny tasks (trained-model cache warm)."""

    def _compare(self, task_name, method, specs, samples=3, n_runs=3):
        task = build_task(task_name, preset="tiny")
        model = trained_model(task, method, "tiny", seed=0)
        evaluator = make_evaluator(task.name, task.test_set, method, mc_samples=samples)
        results = {}
        for executor in ("serial", "batched"):
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=n_runs, base_seed=0, executor=executor
            )
            results[executor] = campaign.sweep(specs)
        for s, b in zip(results["serial"], results["batched"]):
            np.testing.assert_array_equal(s.values, b.values)

    def test_audio_conv_multibit_bitflip(self):
        self._compare("audio", proposed(), bitflip_sweep([0.0, 0.1]))

    def test_audio_conv_additive_conventional(self):
        self._compare("audio", conventional(), additive_sweep([0.0, 0.2]))

    def test_lstm_uniform_noise(self):
        self._compare("co2", proposed(), uniform_sweep([0.0, 0.2]))

    def test_lstm_bitflip_spindrop(self):
        self._compare("co2", spindrop(), bitflip_sweep([0.0, 0.1]))

    def test_binary_resnet_activation_variation(self):
        # Additive variation on a binary net routes to the pre-sign
        # activations; exercises ChipBatchedActivationNoise.
        self._compare("image", proposed(), additive_sweep([0.0, 0.3]), n_runs=2)

    def test_unet_groupwise_bitflip(self):
        self._compare("vessels", proposed(), bitflip_sweep([0.0, 0.1]), n_runs=2)


class TestCacheEquivalence:
    @pytest.fixture
    def isolated_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_memory_cache()
        yield tmp_path
        clear_memory_cache()

    def test_batched_hits_serial_cache_keys(self, isolated_cache):
        task = build_task("audio", preset="tiny")
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1])
        serial = run_robustness_sweep(
            task, methods, specs, preset="tiny", n_runs=3, executor="serial"
        )
        keys = [
            campaign_key(task, methods[0], spec, 3, 4, 0, None) for spec in specs
        ]
        cached = [load_campaign_values(key) for key in keys]
        assert all(values is not None for values in cached)
        # A batched re-run is served entirely from the serial run's store
        # entries (same keys), and reproduces the same curves.
        store_dir = isolated_cache / "store"
        files_before = sorted(p.name for p in store_dir.rglob("*.npz"))
        batched = run_robustness_sweep(
            task, methods, specs, preset="tiny", n_runs=3, executor="batched"
        )
        files_after = sorted(p.name for p in store_dir.rglob("*.npz"))
        assert files_before == files_after
        np.testing.assert_array_equal(
            serial.curves["proposed"].means, batched.curves["proposed"].means
        )

    def test_batched_populates_cache_for_serial(self, isolated_cache):
        task = build_task("audio", preset="tiny")
        methods = [proposed()]
        specs = bitflip_sweep([0.0, 0.1])
        batched = run_robustness_sweep(
            task, methods, specs, preset="tiny", n_runs=3, executor="batched"
        )
        serial = run_robustness_sweep(
            task, methods, specs, preset="tiny", n_runs=3, executor="serial"
        )
        np.testing.assert_array_equal(
            batched.curves["proposed"].means, serial.curves["proposed"].means
        )


class TestChipBatchPrimitives:
    def test_chip_batch_rng_slices_match_generators(self):
        seeds = [11, 22, 33]
        stacked = ChipBatchRng([np.random.default_rng(s) for s in seeds])
        draws = stacked.random((3, 4, 2))
        for i, seed in enumerate(seeds):
            np.testing.assert_array_equal(
                draws[i], np.random.default_rng(seed).random((4, 2))
            )

    def test_chip_batch_rng_rejects_wrong_lead(self):
        stacked = ChipBatchRng([np.random.default_rng(0)] * 2)
        with pytest.raises(RuntimeError, match="instance axis"):
            stacked.normal(0.0, 1.0, size=(3, 4))

    def test_chip_batch_context_restores(self):
        assert active_chip_count() is None
        with chip_batch(4):
            assert active_chip_count() == 4
            with chip_batch(2):
                assert active_chip_count() == 2
            assert active_chip_count() == 4
        assert active_chip_count() is None

    def test_generate_batch_matches_per_chip_generation(self):
        spec = FaultSpec(kind="bitflip", level=0.25)
        rng = np.random.default_rng(0)
        qw = QuantizedWeight(
            codes=rng.integers(-127, 128, size=(6, 5)).astype(np.float64),
            scale=np.asarray(0.01),
            bits=8,
        )
        seeds = [101, 202, 303]
        fault = ChipBatchedWeightFault(spec, seeds)
        stacked = fault(qw)
        for i, seed in enumerate(seeds):
            serial_model = spec.build_weight_model(np.random.default_rng(seed))
            np.testing.assert_array_equal(stacked[i], serial_model(qw))

    def test_chip_batched_quant_linear_broadcasts(self):
        manual_seed(0)
        layer = QuantLinear(4, 3, weight_bits=8)
        spec = FaultSpec(kind="bitflip", level=0.3)
        layer.weight_fault = ChipBatchedWeightFault(spec, [1, 2])
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 4)))
        out = layer(x)
        assert out.shape == (2, 5, 3)
        # Chip i's slice equals a serial pass with chip i's fault model.
        for i, seed in enumerate([1, 2]):
            layer.weight_fault = spec.build_weight_model(
                np.random.default_rng(seed)
            )
            serial = layer(Tensor(x.data[i]))
            np.testing.assert_array_equal(out.data[i], serial.data)
