"""Golden seed-draw transcript: the mc2 contract as an executable fixture.

``docs/architecture.md`` documents the serial per-stream draw order every
attach flavor must reproduce verbatim: walking the model's quantized
layers in ``modules()`` order, one ``integers(0, 2**63)`` draw per weight
site (drawn even when the variation routing then skips the hook on a
binary layer), one extra draw for an installed LSTM recurrent-matrix
hook, then — for variation kinds — one draw per sign-activation site.
These tests freeze that prose into a hand-rolled golden walk and assert
that

* serial :meth:`FaultInjector.attach` consumes exactly the golden
  transcript (values *and* count — batching the draws into one
  ``integers(size=n)`` call must not shift the stream),
* :meth:`attach_batched` and :meth:`attach_scenario_batched` consume
  each chip's stream identically to a serial attach of that cell, and
* the programmed path (:meth:`FaultInjector.program`) consumes the
  serial stream on a miss and consumes **nothing** on a registry hit —
  the amortized skip draws zero seeds and derives zero generators.

A transcript mismatch here means cached campaign results under the mc2
contract would silently change — treat any edit that moves these
transcripts as a cache-contract bump, not a test fix.
"""

import numpy as np

from repro import nn
from repro.faults import FaultInjector, FaultSpec, cell_rngs, clear_programs
from repro.faults import campaign as campaign_mod
from repro.faults.models import ActivationNoise, ChipBatchedActivationNoise
from repro.quant import (
    QuantConv2d,
    QuantLinear,
    QuantLSTMCell,
    SignActivation,
)
from repro.quant.layers import QuantizedComputeLayer
from repro.tensor import manual_seed

SPEC_BY_KIND = {
    "bitflip": FaultSpec(kind="bitflip", level=0.1),
    "additive": FaultSpec(kind="additive", level=0.3),
    "multiplicative": FaultSpec(kind="multiplicative", level=0.2),
    "uniform": FaultSpec(kind="uniform", level=0.2),
    "stuck": FaultSpec(kind="stuck", level=0.1, stuck_to="high"),
    "drift": FaultSpec(kind="drift", level=24.0),
}


class TranscriptNet(nn.Module):
    """Mixed-site model covering every branch of the draw-order table.

    A binary conv (variation kinds draw its seed then skip the hook), a
    multi-bit LSTM cell (extra recurrent-matrix draw), a multi-bit head,
    and two sign activations (variation kinds draw one seed each).  The
    transcript tests never run a forward, so no ``forward`` is defined.
    """

    def __init__(self):
        super().__init__()
        self.conv = QuantConv2d(1, 2, 3, padding=1, weight_bits=1)
        self.sign = SignActivation()
        self.lstm = QuantLSTMCell(4, 3, weight_bits=8)
        self.head = QuantLinear(3, 2, weight_bits=8)
        self.sign_out = SignActivation()


def build_model():
    manual_seed(0)
    return TranscriptNet()


class TranscriptRng:
    """Generator wrapper logging every value ``integers`` hands out."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self.draws = []

    def integers(self, *args, **kwargs):
        out = self._rng.integers(*args, **kwargs)
        if np.ndim(out) == 0:
            self.draws.append(int(out))
        else:
            self.draws.extend(int(v) for v in np.asarray(out).ravel())
        return out

    def __getattr__(self, name):
        return getattr(self._rng, name)


def golden_transcript(model, spec, rng: np.random.Generator):
    """The documented serial draw order, as literal sequential scalar draws."""
    weight_sites = [
        m for m in model.modules() if isinstance(m, QuantizedComputeLayer)
    ]
    act_sites = [m for m in model.modules() if isinstance(m, SignActivation)]
    draws = []
    for layer in weight_sites:
        draws.append(int(rng.integers(0, 2**63)))
        if spec.is_variation and layer.weight_bits == 1 and act_sites:
            continue  # hook skipped on binary layers: no recurrent draw either
        if isinstance(layer, QuantLSTMCell):
            draws.append(int(rng.integers(0, 2**63)))
    if spec.is_variation:
        for _ in act_sites:
            draws.append(int(rng.integers(0, 2**63)))
    return draws


class TestSerialTranscript:
    def test_attach_matches_golden_for_every_kind(self):
        model = build_model()
        injector = FaultInjector(model)
        for kind, spec in SPEC_BY_KIND.items():
            golden = golden_transcript(model, spec, np.random.default_rng(99))
            transcript = TranscriptRng(np.random.default_rng(99))
            injector.attach(spec, transcript)
            assert transcript.draws == golden, f"kind={kind}"
            assert len(golden) > 0

    def test_degenerate_specs_draw_nothing(self):
        model = build_model()
        injector = FaultInjector(model)
        for spec in (FaultSpec(kind="none", level=0.0),
                     FaultSpec(kind="bitflip", level=0.0)):
            transcript = TranscriptRng(np.random.default_rng(5))
            injector.attach(spec, transcript)
            assert transcript.draws == []

    def test_binary_skip_still_consumes_the_weight_draw(self):
        """Variation kinds draw the binary conv's seed, then skip its hook."""
        model = build_model()
        injector = FaultInjector(model)
        spec = SPEC_BY_KIND["additive"]
        injector.attach(spec, np.random.default_rng(0))
        assert model.conv.weight_fault is None  # routed to activations
        assert model.lstm.weight_fault is not None
        bitflip = golden_transcript(
            model, SPEC_BY_KIND["bitflip"], np.random.default_rng(99)
        )
        additive = golden_transcript(model, spec, np.random.default_rng(99))
        # Same first draw (the conv seed is consumed either way), different
        # totals (bitflip hooks the conv, additive hooks the activations).
        assert bitflip[0] == additive[0]
        assert len(bitflip) != len(additive)


class TestBatchedTranscripts:
    def test_chip_batched_consumes_each_stream_serially(self):
        model = build_model()
        injector = FaultInjector(model)
        base_seed = 7
        for kind, spec in SPEC_BY_KIND.items():
            goldens = [
                golden_transcript(
                    model, spec, cell_rngs(base_seed, 0, run)[0]
                )
                for run in range(3)
            ]
            transcripts = [
                TranscriptRng(cell_rngs(base_seed, 0, run)[0])
                for run in range(3)
            ]
            injector.attach_batched(spec, transcripts)
            for run, (transcript, golden) in enumerate(
                zip(transcripts, goldens)
            ):
                assert transcript.draws == golden, f"kind={kind} run={run}"

    def test_scenario_batched_consumes_each_stream_serially(self):
        model = build_model()
        injector = FaultInjector(model)
        base_seed = 11
        for kind in ("bitflip", "uniform", "stuck"):
            spec = SPEC_BY_KIND[kind]
            specs = [spec, FaultSpec(kind=spec.kind,
                                     level=spec.level * 2,
                                     stuck_to=spec.stuck_to)]
            golden_groups = [
                [
                    golden_transcript(
                        model, s, cell_rngs(base_seed, scenario, run)[0]
                    )
                    for run in range(2)
                ]
                for scenario, s in enumerate(specs)
            ]
            transcript_groups = [
                [
                    TranscriptRng(cell_rngs(base_seed, scenario, run)[0])
                    for run in range(2)
                ]
                for scenario in range(len(specs))
            ]
            injector.attach_scenario_batched(specs, transcript_groups)
            for scenario, (t_group, g_group) in enumerate(
                zip(transcript_groups, golden_groups)
            ):
                for run, (transcript, golden) in enumerate(
                    zip(t_group, g_group)
                ):
                    assert transcript.draws == golden, (
                        f"kind={kind} scenario={scenario} run={run}"
                    )


class TestProgrammedTranscript:
    def _patched_cell_rngs(self, monkeypatch):
        """Route campaign.cell_rngs through transcript wrappers, counting calls."""
        calls = []

        def wrapped(base_seed, scenario_index, run_index):
            fault, ev = cell_rngs(base_seed, scenario_index, run_index)
            transcript = TranscriptRng(fault)
            calls.append(((base_seed, scenario_index, run_index), transcript))
            return transcript, ev

        monkeypatch.setattr(campaign_mod, "cell_rngs", wrapped)
        return calls

    def test_miss_consumes_the_serial_stream(self, monkeypatch):
        model = build_model()
        injector = FaultInjector(model)
        clear_programs(model)
        calls = self._patched_cell_rngs(monkeypatch)
        for kind, spec in SPEC_BY_KIND.items():
            calls.clear()
            installed = not injector.program(spec, 13, 2, 1)
            assert installed  # first sight of this cell: a registry miss
            assert len(calls) == 1
            coords, transcript = calls[0]
            assert coords == (13, 2, 1)
            golden = golden_transcript(
                model, spec, cell_rngs(13, 2, 1)[0]
            )
            assert transcript.draws == golden, f"kind={kind}"

    def test_hit_draws_nothing_and_derives_no_stream(self, monkeypatch):
        model = build_model()
        injector = FaultInjector(model)
        clear_programs(model)
        spec = SPEC_BY_KIND["uniform"]
        injector.program(spec, 13, 0, 0)
        calls = self._patched_cell_rngs(monkeypatch)
        assert injector.program(spec, 13, 0, 0)  # registry hit
        assert calls == []  # the skip path never touches the fault stream

    def test_hit_reinstalls_weight_hooks_but_restarts_activation_hooks(self):
        """Frozen-pattern hooks are reused; stateful noise hooks restart."""
        model = build_model()
        injector = FaultInjector(model)
        clear_programs(model)
        spec = SPEC_BY_KIND["additive"]
        injector.program(spec, 29, 0, 0)
        lstm_hook = model.lstm.weight_fault
        act_hook = model.sign.pre_fault
        assert isinstance(act_hook, ActivationNoise)
        assert injector.program(spec, 29, 0, 0)
        assert model.lstm.weight_fault is lstm_hook  # same frozen hook
        assert model.sign.pre_fault is not act_hook  # fresh stream state
        assert isinstance(model.sign.pre_fault, ActivationNoise)

    def test_batched_hit_restarts_chipbatched_activation_hooks(self):
        model = build_model()
        injector = FaultInjector(model)
        clear_programs(model)
        spec = SPEC_BY_KIND["uniform"]
        injector.program_batched(spec, 31, 0, [0, 1, 2])
        first = model.sign.pre_fault
        assert isinstance(first, ChipBatchedActivationNoise)
        assert injector.program_batched(spec, 31, 0, [0, 1, 2])
        assert model.sign.pre_fault is not first
        assert isinstance(model.sign.pre_fault, ChipBatchedActivationNoise)
