"""Test package."""
