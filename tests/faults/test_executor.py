"""Tests for the parallel campaign execution engine.

The engine's contract is that campaign values are bit-identical across
backends (serial / thread / process), worker counts, and cell scheduling
orders.  The model used here includes a Dropout module evaluated with
Monte Carlo sampling, so the tests exercise the scoped-RNG machinery that
makes stochastic evaluation hermetic per cell — not just the frozen fault
patterns.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.bayesian import mc_forward
from repro.faults import (
    FactoryHandle,
    FaultSpec,
    MonteCarloCampaign,
    WorkCell,
    additive_sweep,
    bitflip_sweep,
    cell_rngs,
    evaluate_cell,
    run_cells,
)
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.tensor import Tensor, manual_seed

_DATA_RNG_SEED = 7


def build_pair(seed=0):
    """Module-level factory so FactoryHandle can pickle it by reference."""
    manual_seed(seed)
    model = nn.Sequential(
        QuantConv2d(1, 3, 3, padding=1, weight_bits=1),
        SignActivation(),
        nn.GlobalAvgPool2d(),
        nn.Dropout(0.25),
        QuantLinear(3, 2, weight_bits=8),
    )
    data_rng = np.random.default_rng(_DATA_RNG_SEED)
    x = Tensor(data_rng.normal(size=(10, 1, 6, 6)))
    y = data_rng.integers(0, 2, 10)

    def evaluator(m):
        logits = mc_forward(m, x, num_samples=3)
        pred = logits.mean(axis=0).argmax(axis=1)
        return float((pred == y).mean())

    return model, evaluator


HANDLE = FactoryHandle(build_pair)


def _campaign(**kwargs):
    kwargs.setdefault("n_runs", 4)
    kwargs.setdefault("base_seed", 3)
    kwargs.setdefault("handle", HANDLE)
    return MonteCarloCampaign(None, None, **kwargs)


class TestBackendEquivalence:
    @pytest.mark.parametrize("sweep_builder", [bitflip_sweep, additive_sweep])
    def test_process_pool_matches_serial(self, sweep_builder):
        specs = sweep_builder([0.0, 0.1, 0.2])
        serial = _campaign().sweep(specs)
        parallel = _campaign(executor="process", workers=4).sweep(specs)
        for s, p in zip(serial, parallel):
            np.testing.assert_array_equal(s.values, p.values)

    @pytest.mark.parametrize("sweep_builder", [bitflip_sweep, additive_sweep])
    def test_thread_pool_matches_serial(self, sweep_builder):
        specs = sweep_builder([0.0, 0.1, 0.2])
        serial = _campaign().sweep(specs)
        threaded = _campaign(executor="thread", workers=4).sweep(specs)
        for s, t in zip(serial, threaded):
            np.testing.assert_array_equal(s.values, t.values)

    def test_thread_pool_with_live_model_matches_serial(self):
        # The deepcopy-replica path: no handle, a live (model, evaluator).
        model, evaluator = build_pair()
        specs = bitflip_sweep([0.0, 0.15])
        serial = MonteCarloCampaign(model, evaluator, n_runs=4, base_seed=5).sweep(specs)
        threaded = MonteCarloCampaign(
            model, evaluator, n_runs=4, base_seed=5, executor="thread", workers=3
        ).sweep(specs)
        for s, t in zip(serial, threaded):
            np.testing.assert_array_equal(s.values, t.values)

    def test_worker_count_does_not_change_values(self):
        specs = bitflip_sweep([0.0, 0.2])
        one = _campaign(executor="thread", workers=1).sweep(specs)
        many = _campaign(executor="thread", workers=5).sweep(specs)
        for a, b in zip(one, many):
            np.testing.assert_array_equal(a.values, b.values)


class TestCellSemantics:
    def test_submission_order_is_irrelevant(self):
        spec = FaultSpec(kind="bitflip", level=0.2)
        cells = [WorkCell(0, run, spec) for run in range(5)]
        forward = run_cells(cells, 3, handle=HANDLE)
        backward = run_cells(list(reversed(cells)), 3, handle=HANDLE)
        np.testing.assert_array_equal(forward, backward[::-1])

    def test_evaluate_cell_is_hermetic(self):
        model, evaluator = build_pair()
        a = WorkCell(0, 0, FaultSpec(kind="bitflip", level=0.2))
        b = WorkCell(1, 3, FaultSpec(kind="additive", level=0.3))
        first = evaluate_cell(model, evaluator, a, base_seed=3)
        evaluate_cell(model, evaluator, b, base_seed=3)  # interleaved work
        again = evaluate_cell(model, evaluator, a, base_seed=3)
        assert first == again

    def test_cell_rng_streams_are_cell_specific(self):
        fault_a, eval_a = cell_rngs(0, scenario_index=0, run_index=0)
        fault_b, eval_b = cell_rngs(0, scenario_index=0, run_index=1)
        fault_a2, eval_a2 = cell_rngs(0, scenario_index=0, run_index=0)
        assert fault_a.integers(0, 2**63) == fault_a2.integers(0, 2**63)
        assert eval_a.integers(0, 2**63) == eval_a2.integers(0, 2**63)
        assert fault_a.integers(0, 2**63) != fault_b.integers(0, 2**63)

    def test_empty_grid(self):
        assert run_cells([], 0, handle=HANDLE).size == 0


class TestValidation:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            run_cells([WorkCell(0, 0, FaultSpec("none", 0.0))], 0,
                      handle=HANDLE, executor="gpu")

    def test_process_requires_picklable_handle(self):
        model, evaluator = build_pair()
        cells = [WorkCell(0, run, FaultSpec("bitflip", 0.1)) for run in range(3)]
        with pytest.raises(ValueError, match="EvalHandle"):
            run_cells(cells, 0, model=model, evaluator=evaluator,
                      executor="process", workers=2)

    def test_missing_model_and_handle_rejected(self):
        with pytest.raises(ValueError, match="handle"):
            run_cells([WorkCell(0, 0, FaultSpec("none", 0.0))], 0)

    def test_worker_exception_propagates(self):
        def broken(_model):
            raise RuntimeError("evaluator exploded")

        model, _ = build_pair()
        cells = [WorkCell(0, run, FaultSpec("bitflip", 0.1)) for run in range(3)]
        with pytest.raises(RuntimeError, match="exploded"):
            run_cells(cells, 0, model=model, evaluator=broken,
                      executor="thread", workers=2)


class TestProgressCallback:
    def test_on_cell_done_counts_every_cell(self):
        seen = []
        specs = bitflip_sweep([0.0, 0.1, 0.2])
        _campaign().sweep(specs, on_cell_done=lambda done, total: seen.append((done, total)))
        # 1 fault-free cell + 2 faulty scenarios x 4 runs
        assert len(seen) == 9
        assert seen[-1] == (9, 9)
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)
