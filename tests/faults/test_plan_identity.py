"""Looped-vs-planned identity suite for trace-compiled forward plans.

The campaign engine routes gradient-free evaluation forwards through
:mod:`repro.tensor.plan` by default: the first forward per (input shape,
instance layout, parameter versions, fault-hook signatures) key runs
interpreted under a tracer, subsequent forwards replay the recorded flat
numpy kernel sequence with pooled buffers.  The contract pinned here —
mirroring the chip-/MC-/scenario-batched identity suites — is that the
planned path is **bit-identical** to the interpreted path for every
backend, topology, Bayesian method, and fault kind: source steps re-run
the very sampling/hook code the interpreter runs (same draws from the
same per-cell streams, in the same order), and kernel steps re-run the
same numpy calls on the same dtypes.

The suite also asserts that replays actually *happen* (via the per-model
plan-cache counters) so the identity checks cannot silently pass by
always falling back to interpretation.

The same contract extends to the trace-time IR optimizer
(:mod:`repro.tensor.plan_passes`): optimized plans must be bit-identical
to raw-trace replay *and* to interpretation across every topology,
Bayesian method, and fault kind — and the per-pass counters must show
the passes actually fired, so the identity matrix cannot pass against a
no-op optimizer.  Optimizer state is always pinned explicitly
(``plan_opt=True`` / ``False``) so the suite holds under either ambient
``REPRO_PLAN_OPT`` setting.

PR 7 extends the matrix to campaign-level attach amortization: serving a
repeated cell from the fault-program registry (``attach_amortize=True``)
must be bit-identical to a full re-attach, and the skip path must
actually fire (``program_stats(model).skipped > 0``) so the identity
checks cannot pass against a registry that never hits.  Amortization
state is likewise pinned explicitly so the suite holds under either
ambient ``REPRO_ATTACH_AMORTIZE`` setting.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.bayesian import mc_forward
from repro.eval import build_task, make_evaluator, trained_model
from repro.faults import (
    FaultSpec,
    MonteCarloCampaign,
    WorkCell,
    additive_sweep,
    bitflip_sweep,
    evaluate_cell,
    evaluate_cells_batched,
    evaluate_cells_scenario_batched,
    multiplicative_sweep,
    uniform_sweep,
)
from repro.faults.campaign import clear_programs, program_stats
from repro.models import proposed, spatial_spindrop, spindrop
from repro.quant import QuantConv2d, QuantLinear, SignActivation
from repro.tensor import Tensor, manual_seed
from repro.tensor import plan as plan_mod
from repro.tensor.chipbatch import active_chip_count


def build_pair(seed=0, mc_samples=3):
    """Small mixed binary/multi-bit model with a chip-aware MC evaluator."""
    manual_seed(seed)
    model = nn.Sequential(
        QuantConv2d(1, 3, 3, padding=1, weight_bits=1),
        SignActivation(),
        nn.GlobalAvgPool2d(),
        nn.Dropout(0.25),
        QuantLinear(3, 2, weight_bits=8),
    )
    data_rng = np.random.default_rng(7)
    x = data_rng.normal(size=(10, 1, 6, 6))
    y = data_rng.integers(0, 2, 10)

    def evaluator(m):
        n_chips = active_chip_count()
        inp = x if n_chips is None else np.broadcast_to(x[None], (n_chips,) + x.shape)
        logits = mc_forward(m, Tensor(inp.copy()), num_samples=mc_samples)
        pred = logits.mean(axis=0).argmax(axis=-1)
        return (pred == y).mean(axis=-1)

    return model, evaluator


SWEEPS_BY_KIND = {
    "bitflip": [FaultSpec(kind="bitflip", level=l) for l in (0.05, 0.1, 0.2)],
    "additive": [FaultSpec(kind="additive", level=l) for l in (0.1, 0.3)],
    "multiplicative": [
        FaultSpec(kind="multiplicative", level=l) for l in (0.2, 0.4)
    ],
    "uniform": [FaultSpec(kind="uniform", level=l) for l in (0.1, 0.2, 0.4)],
    "stuck": [
        FaultSpec(kind="stuck", level=0.1, stuck_to="zero"),
        FaultSpec(kind="stuck", level=0.2, stuck_to="high"),
    ],
    "drift": [FaultSpec(kind="drift", level=l) for l in (24.0, 100.0)],
}


class TestCellIdentity:
    """evaluate_cell* with plan=True == plan=False for every fault kind."""

    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_serial_cells_bit_identical(self, kind):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND[kind]
        cells = [
            WorkCell(idx, run, spec)
            for idx, spec in enumerate(specs)
            for run in range(3)
        ]
        interpreted = np.array(
            [evaluate_cell(model, evaluator, c, 5, plan=False) for c in cells]
        )
        planned = np.array(
            [evaluate_cell(model, evaluator, c, 5, plan=True) for c in cells]
        )
        np.testing.assert_array_equal(interpreted, planned)
        stats = plan_mod.plan_stats(model)
        assert stats.traces > 0 and stats.replays > 0

    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_scenario_batched_bit_identical(self, kind):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND[kind]
        cell_groups = [
            [WorkCell(idx, run, spec) for run in range(3)]
            for idx, spec in enumerate(specs)
        ]
        interpreted = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, plan=False
        )
        planned = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, plan=True
        )
        np.testing.assert_array_equal(interpreted, planned)

    def test_chip_batched_bit_identical(self):
        model, evaluator = build_pair()
        spec = FaultSpec(kind="additive", level=0.3)
        cells = [WorkCell(0, run, spec) for run in range(4)]
        interpreted = evaluate_cells_batched(
            model, evaluator, cells, base_seed=2, plan=False
        )
        planned = evaluate_cells_batched(
            model, evaluator, cells, base_seed=2, plan=True
        )
        np.testing.assert_array_equal(interpreted, planned)

    def test_repeated_identical_passes_replay_and_match(self):
        """A re-attach with identical seeds replays and stays identical."""
        model, evaluator = build_pair()
        spec = FaultSpec(kind="uniform", level=0.2)
        cells = [WorkCell(0, run, spec) for run in range(3)]
        first = evaluate_cells_batched(model, evaluator, cells, 9, plan=True)
        stats = plan_mod.plan_stats(model)
        traces_before = stats.traces
        second = evaluate_cells_batched(model, evaluator, cells, 9, plan=True)
        np.testing.assert_array_equal(first, second)
        assert stats.traces == traces_before  # served by replay, no re-trace
        assert stats.replays > 0


class TestCampaignIdentity:
    """Campaign sweeps: plan on == plan off across backends."""

    def test_batched_sweep_bit_identical(self):
        model, evaluator = build_pair()
        specs = bitflip_sweep([0.0, 0.05, 0.1, 0.2])
        off = MonteCarloCampaign(
            model, evaluator, n_runs=4, base_seed=3, executor="batched",
            plan=False,
        ).sweep(specs)
        on = MonteCarloCampaign(
            model, evaluator, n_runs=4, base_seed=3, executor="batched",
            plan=True,
        ).sweep(specs)
        for a, b in zip(off, on):
            np.testing.assert_array_equal(a.values, b.values)

    def test_serial_sweep_bit_identical(self):
        model, evaluator = build_pair()
        specs = uniform_sweep([0.0, 0.1, 0.2])
        off = MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=1, executor="serial",
            plan=False,
        ).sweep(specs)
        on = MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=1, executor="serial",
            plan=True,
        ).sweep(specs)
        for a, b in zip(off, on):
            np.testing.assert_array_equal(a.values, b.values)

    def test_thread_sweep_bit_identical(self):
        model, evaluator = build_pair()
        specs = additive_sweep([0.0, 0.2])
        off = MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=4, executor="thread",
            workers=2, plan=False,
        ).sweep(specs)
        on = MonteCarloCampaign(
            model, evaluator, n_runs=3, base_seed=4, executor="thread",
            workers=2, plan=True,
        ).sweep(specs)
        for a, b in zip(off, on):
            np.testing.assert_array_equal(a.values, b.values)


class TestOptimizerIdentity:
    """plan_opt=True == plan_opt=False for every fault kind (micro-model)."""

    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_serial_cells_bit_identical(self, kind):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND[kind]
        cells = [
            WorkCell(idx, run, spec)
            for idx, spec in enumerate(specs)
            for run in range(2)
        ]
        raw = np.array(
            [
                evaluate_cell(model, evaluator, c, 5, plan=True, plan_opt=False)
                for c in cells
            ]
        )
        optimized = np.array(
            [
                evaluate_cell(model, evaluator, c, 5, plan=True, plan_opt=True)
                for c in cells
            ]
        )
        np.testing.assert_array_equal(raw, optimized)
        stats = plan_mod.plan_stats(model)
        assert stats.traces > 0 and stats.replays > 0
        assert sum(stats.opt_counters.values()) > 0  # passes really fired

    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_scenario_batched_bit_identical(self, kind):
        model, evaluator = build_pair()
        specs = SWEEPS_BY_KIND[kind]
        cell_groups = [
            [WorkCell(idx, run, spec) for run in range(2)]
            for idx, spec in enumerate(specs)
        ]
        raw = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, plan=True,
            plan_opt=False,
        )
        optimized = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, plan=True,
            plan_opt=True,
        )
        np.testing.assert_array_equal(raw, optimized)


class TestAmortizeIdentity:
    """attach_amortize=True == False for every fault kind, skips proven."""

    @pytest.mark.parametrize("kind", sorted(SWEEPS_BY_KIND), ids=str)
    def test_serial_cells_bit_identical_with_skips(self, kind):
        model, evaluator = build_pair()
        clear_programs(model)
        specs = SWEEPS_BY_KIND[kind]
        cells = [
            WorkCell(idx, run, spec)
            for idx, spec in enumerate(specs)
            for run in range(2)
        ]
        full = np.array(
            [
                evaluate_cell(model, evaluator, c, 5, attach_amortize=False)
                for c in cells
            ]
        )
        amortized = np.array(
            [
                evaluate_cell(model, evaluator, c, 5, attach_amortize=True)
                for c in cells
            ]
        )
        repeated = np.array(
            [
                evaluate_cell(model, evaluator, c, 5, attach_amortize=True)
                for c in cells
            ]
        )
        np.testing.assert_array_equal(full, amortized)
        np.testing.assert_array_equal(full, repeated)
        stats = program_stats(model)
        assert stats.attached == len(cells)  # first amortized pass: all misses
        assert stats.skipped == len(cells)  # second pass: all registry hits

    @pytest.mark.parametrize("kind", ("additive", "stuck"), ids=str)
    def test_scenario_batched_bit_identical_with_skips(self, kind):
        model, evaluator = build_pair()
        clear_programs(model)
        specs = SWEEPS_BY_KIND[kind]
        cell_groups = [
            [WorkCell(idx, run, spec) for run in range(2)]
            for idx, spec in enumerate(specs)
        ]
        full = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, attach_amortize=False
        )
        amortized = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, attach_amortize=True
        )
        repeated = evaluate_cells_scenario_batched(
            model, evaluator, cell_groups, base_seed=5, attach_amortize=True
        )
        np.testing.assert_array_equal(full, amortized)
        np.testing.assert_array_equal(full, repeated)
        assert program_stats(model).skipped > 0


class TestTaskTopologyIdentity:
    """interpreted == raw-trace replay == optimized replay, all topologies."""

    def _compare(self, task_name, method, specs, samples=3, n_runs=3):
        task = build_task(task_name, preset="tiny")
        model = trained_model(task, method, "tiny", seed=0)
        clear_programs(model)
        evaluator = make_evaluator(
            task.name, task.test_set, method, mc_samples=samples
        )
        results = {}
        for label, plan, plan_opt, amortize in (
            ("interpreted", False, None, False),
            ("planned-raw", True, False, False),
            ("planned-opt", True, True, False),
            ("planned-amortized", True, True, True),
        ):
            campaign = MonteCarloCampaign(
                model, evaluator, n_runs=n_runs, base_seed=0,
                executor="batched", plan=plan, plan_opt=plan_opt,
                attach_amortize=amortize,
            )
            results[label] = campaign.sweep(specs)
            if amortize:
                # A second identical sweep is served from the program
                # registry — the skip path must fire *and* stay identical.
                results["planned-amortized-repeat"] = campaign.sweep(specs)
        for label in (
            "planned-raw", "planned-opt",
            "planned-amortized", "planned-amortized-repeat",
        ):
            for a, b in zip(results["interpreted"], results[label]):
                np.testing.assert_array_equal(a.values, b.values)
        stats = plan_mod.plan_stats(model)
        assert stats.traces > 0 and stats.replays > 0
        assert sum(stats.opt_counters.values()) > 0  # passes really fired
        assert program_stats(model).skipped > 0  # registry hits really served

    # image / ResNet-18: binary weights, variation routes to activations
    def test_image_binary_bitflip_proposed(self):
        self._compare("image", proposed(), bitflip_sweep([0.0, 0.05, 0.1]), n_runs=2)

    def test_image_activation_variation_spindrop(self):
        self._compare("image", spindrop(), additive_sweep([0.0, 0.2, 0.4]), n_runs=2)

    # audio / M5: 8-bit conv1d
    def test_audio_multibit_bitflip_proposed(self):
        self._compare("audio", proposed(), bitflip_sweep([0.0, 0.05, 0.1]))

    def test_audio_additive_spatial_spindrop(self):
        self._compare(
            "audio", spatial_spindrop(), additive_sweep([0.0, 0.1, 0.2])
        )

    # co2 / LSTM: 8-bit recurrent cells, frozen (variational) masks
    def test_lstm_uniform_proposed(self):
        self._compare("co2", proposed(), uniform_sweep([0.0, 0.1, 0.2, 0.4]))

    def test_lstm_multiplicative_spindrop(self):
        self._compare("co2", spindrop(), multiplicative_sweep([0.0, 0.2, 0.4]))

    # vessels / U-Net: binary weights + PACT activations, group norm
    def test_unet_bitflip_proposed(self):
        self._compare("vessels", proposed(), bitflip_sweep([0.0, 0.05, 0.1]), n_runs=2)

    def test_unet_additive_proposed(self):
        self._compare("vessels", proposed(), additive_sweep([0.0, 0.2, 0.3]), n_runs=2)
