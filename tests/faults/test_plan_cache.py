"""Plan-cache keying and invalidation for trace-compiled forwards.

Plans capture deployment-frozen state (quantized weight codes, faulty
dequantized weights) as constants, so the cache key must rotate whenever
that state can change: optimizer steps and ``load_state_dict`` bump
every touched :class:`~repro.nn.module.Parameter`'s ``(uid, version)``
counter (the same counters the PR 3 quantization cache keys on), and a
newly attached stateful fault hook signs with a fresh ``fault_token``.
Seed-frozen batched hooks sign by value (spec + seeds) instead — an
*identical* re-attach replays, anything else re-traces.  Ad-hoc callable
hooks have no signature at all and force the interpreted path.
"""

import numpy as np
import pytest

from repro import nn
from repro.faults import FaultSpec, FaultInjector, ChipBatchedWeightFault
from repro.nn.dropout import set_mask_scope
from repro.quant import QuantLinear
from repro.tensor import Tensor, manual_seed, no_grad
from repro.tensor import plan as plan_mod
from repro.train import Adam, mse_loss


def build_model(seed=0):
    manual_seed(seed)
    model = nn.Sequential(
        QuantLinear(6, 5, weight_bits=8),
        nn.Dropout(0.2),
        QuantLinear(5, 2, weight_bits=8),
    )
    model.eval()
    return model


def forward_planned(model, x, rng_seed=0):
    from repro.tensor.random import scoped_rng

    with no_grad(), scoped_rng(np.random.default_rng(rng_seed)):
        with plan_mod.plan_execution(True):
            return model(Tensor(x)).data


X = np.random.default_rng(3).normal(size=(4, 6))


class TestTraceReplayLifecycle:
    def test_second_call_replays(self):
        model = build_model()
        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        assert (stats.traces, stats.replays) == (1, 0)
        forward_planned(model, X)
        assert (stats.traces, stats.replays) == (1, 1)

    def test_replay_matches_interpreted(self):
        model = build_model()
        forward_planned(model, X)  # trace
        planned = forward_planned(model, X, rng_seed=11)
        from repro.tensor.random import scoped_rng

        with no_grad(), scoped_rng(np.random.default_rng(11)):
            interpreted = model(Tensor(X)).data
        np.testing.assert_array_equal(planned, interpreted)

    def test_new_input_shape_new_plan(self):
        model = build_model()
        forward_planned(model, X)
        forward_planned(model, X[:2])
        assert plan_mod.plan_stats(model).traces == 2

    def test_no_plan_routing_disabled(self):
        model = build_model()
        with no_grad(), plan_mod.plan_execution(False):
            model(Tensor(X))
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 0 and stats.replays == 0

    def test_returned_array_detached_from_buffers(self):
        """Held outputs must survive later replays (buffers are pooled)."""
        model = build_model()
        forward_planned(model, X)
        first = forward_planned(model, X, rng_seed=7)
        kept = first.copy()
        forward_planned(model, X, rng_seed=8)  # overwrites pooled buffers
        np.testing.assert_array_equal(first, kept)

    def test_lru_eviction_bounds_cache(self):
        model = build_model()
        for n in range(1, plan_mod.MAX_PLANS_PER_MODULE + 4):
            forward_planned(model, X[: max(1, n % 5 + 1)])
        assert (
            len(plan_mod.plan_stats(model).plans)
            <= plan_mod.MAX_PLANS_PER_MODULE
        )


class TestLRUBoundary:
    """Exact behavior at the MAX_PLANS_PER_MODULE=8 capacity edge."""

    def _fill(self, model, count, offset=0):
        """Trace ``count`` distinct plans (keyed by input row count)."""
        for n in range(count):
            forward_planned(model, X[: 1 + ((n + offset) % (X.shape[0]))])

    def test_capacity_exactly_reached_keeps_all_plans(self):
        model = build_model()
        cap = plan_mod.MAX_PLANS_PER_MODULE
        assert cap == 8  # the boundary these tests pin
        for n in range(1, cap + 1):
            forward_planned(model, np.tile(X, (n, 1)))
        stats = plan_mod.plan_stats(model)
        assert len(stats.plans) == cap and stats.traces == cap
        # Every resident plan replays — nothing was evicted at capacity.
        for n in range(1, cap + 1):
            forward_planned(model, np.tile(X, (n, 1)))
        assert stats.traces == cap and stats.replays == cap

    def test_one_past_capacity_evicts_exactly_the_oldest(self):
        model = build_model()
        cap = plan_mod.MAX_PLANS_PER_MODULE
        for n in range(1, cap + 2):
            forward_planned(model, np.tile(X, (n, 1)))
        stats = plan_mod.plan_stats(model)
        assert len(stats.plans) == cap and stats.traces == cap + 1
        # n=2..cap+1 survived; only n=1 (the oldest) was evicted.
        forward_planned(model, np.tile(X, (2, 1)))
        assert stats.traces == cap + 1 and stats.replays == 1
        forward_planned(model, np.tile(X, (1, 1)))
        assert stats.traces == cap + 2  # evicted key re-traces on re-entry

    def test_replay_refreshes_recency(self):
        """A replayed plan moves to MRU and survives the next eviction."""
        model = build_model()
        cap = plan_mod.MAX_PLANS_PER_MODULE
        for n in range(1, cap + 1):
            forward_planned(model, np.tile(X, (n, 1)))
        stats = plan_mod.plan_stats(model)
        forward_planned(model, np.tile(X, (1, 1)))  # touch the LRU entry
        assert stats.replays == 1
        forward_planned(model, np.tile(X, (cap + 1, 1)))  # evicts n=2 now
        forward_planned(model, np.tile(X, (1, 1)))
        assert stats.traces == cap + 1 and stats.replays == 2
        forward_planned(model, np.tile(X, (2, 1)))
        assert stats.traces == cap + 2  # n=2 paid for n=1's refresh

    def test_opt_counters_accumulate_across_eviction(self):
        """Optimizer counters are monotone totals, not per-resident sums."""
        model = build_model()
        cap = plan_mod.MAX_PLANS_PER_MODULE
        forward_planned(model, np.tile(X, (1, 1)))
        stats = plan_mod.plan_stats(model)
        after_first = dict(stats.opt_counters)
        assert sum(after_first.values()) > 0  # the optimizer did something
        for n in range(2, cap + 3):  # overflow: n=1 evicted along the way
            forward_planned(model, np.tile(X, (n, 1)))
        accumulated = dict(stats.opt_counters)
        forward_planned(model, np.tile(X, (1, 1)))  # re-trace evicted key
        assert stats.traces == cap + 3
        for name, value in accumulated.items():
            assert stats.opt_counters[name] >= value  # never reset
        # The re-trace re-ran the passes: totals grew by the first trace's
        # contribution again (same shape, same plan, same counters).
        for name, value in after_first.items():
            assert stats.opt_counters[name] == accumulated[name] + value


class TestParameterVersionInvalidation:
    def test_optimizer_step_forces_retrace(self):
        model = build_model()
        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 1
        # One training step: backward + Adam.step() bumps every parameter's
        # version counter.
        model.train()
        optimizer = Adam(model.parameters(), lr=1e-2)
        pred = model(Tensor(X))
        loss = mse_loss(pred, np.zeros(pred.shape))
        model.zero_grad()
        loss.backward()
        optimizer.step()
        model.eval()
        before = forward_planned(model, X)
        assert stats.traces == 2  # new versions -> new key -> re-trace
        np.testing.assert_array_equal(before, forward_planned(model, X))
        assert stats.traces == 2 and stats.replays >= 1

    def test_load_state_dict_forces_retrace(self):
        model = build_model()
        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        model.load_state_dict(model.state_dict())  # bumps versions
        forward_planned(model, X)
        assert stats.traces == 2

    def test_stale_plan_never_served_after_weight_change(self):
        model = build_model()
        forward_planned(model, X)
        reference = forward_planned(model, X, rng_seed=1)
        layer = model[0]
        layer.weight.data[...] += 0.5
        layer.weight.mark_updated()
        changed = forward_planned(model, X, rng_seed=1)
        assert not np.array_equal(reference, changed)


class TestFaultHookInvalidation:
    def test_new_fault_token_forces_retrace(self):
        """Each freshly attached stateful hook re-traces (token keying)."""
        model = build_model()
        injector = FaultInjector(model)
        spec = FaultSpec(kind="bitflip", level=0.2)
        stats = plan_mod.plan_stats(model)
        values = []
        for attach_round in range(2):
            injector.attach(spec, np.random.default_rng(99))
            values.append(forward_planned(model, X, rng_seed=1))
            injector.detach()
        # Same attach rng => same fault patterns => same values, but the
        # hooks carry fresh fault tokens, so each attach traced anew.
        np.testing.assert_array_equal(values[0], values[1])
        assert stats.traces == 2
        assert stats.replays == 0

    def test_identical_batched_hook_reuses_plan(self):
        """Seed-frozen batched hooks sign by value: same seeds replay."""
        model = build_model()
        spec = FaultSpec(kind="additive", level=0.3)
        stats = plan_mod.plan_stats(model)
        for _ in range(2):
            for layer in (model[0], model[2]):
                layer.weight_fault = ChipBatchedWeightFault(spec, [11, 22])
            from repro.tensor.chipbatch import chip_batch

            with chip_batch(2):
                forward_planned(
                    model, np.broadcast_to(X[None], (2,) + X.shape).copy()
                )
            for layer in (model[0], model[2]):
                layer.weight_fault = None
        assert stats.traces == 1 and stats.replays == 1

    def test_different_batched_seeds_force_retrace(self):
        model = build_model()
        spec = FaultSpec(kind="additive", level=0.3)
        stats = plan_mod.plan_stats(model)
        from repro.tensor.chipbatch import chip_batch

        for seeds in ([11, 22], [33, 44]):
            for layer in (model[0], model[2]):
                layer.weight_fault = ChipBatchedWeightFault(spec, seeds)
            with chip_batch(2):
                forward_planned(
                    model, np.broadcast_to(X[None], (2,) + X.shape).copy()
                )
            for layer in (model[0], model[2]):
                layer.weight_fault = None
        assert stats.traces == 2

    def test_ad_hoc_hook_falls_back_to_interpretation(self):
        model = build_model()
        model[0].weight_fault = lambda qw: qw.codes  # no plan_signature
        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 0 and stats.replays == 0
        model[0].weight_fault = None


class TestSamplingStateKeying:
    def test_mask_scope_change_forces_retrace(self):
        model = build_model()
        from repro.core.bayesian import enable_stochastic_inference

        enable_stochastic_inference(model, True)
        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        set_mask_scope(model, "frozen")
        forward_planned(model, X)
        assert stats.traces == 2
        enable_stochastic_inference(model, False)

    def test_stochastic_inference_toggle_forces_retrace(self):
        model = build_model()
        from repro.core.bayesian import enable_stochastic_inference

        forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        enable_stochastic_inference(model, True)
        forward_planned(model, X)
        assert stats.traces == 2
        enable_stochastic_inference(model, False)

    def test_training_mode_never_planned(self):
        model = build_model()
        model.train()
        with no_grad(), plan_mod.plan_execution(True):
            model(Tensor(X))
        assert plan_mod.plan_stats(model).traces == 0


class TestTracePoisoning:
    def test_kernel_less_op_poisons_and_falls_back(self):
        class Odd(nn.Module):
            def forward(self, x):
                data = x.data * 2.0

                def backward(grad):
                    x._accumulate(2.0 * grad)

                return Tensor._make(data, [x], backward, "odd")  # no kernel

        model = nn.Sequential(Odd())
        model.eval()
        first = forward_planned(model, X)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 0 and stats.fallbacks >= 1
        second = forward_planned(model, X)
        np.testing.assert_array_equal(first, second)
        assert stats.replays == 0  # poisoned key keeps interpreting

    def test_frozen_mask_predating_trace_poisons(self):
        manual_seed(0)
        model = nn.Sequential(nn.Dropout(0.3))
        model.eval()
        from repro.core.bayesian import enable_stochastic_inference

        enable_stochastic_inference(model, True)
        set_mask_scope(model, "frozen")
        from repro.tensor.random import scoped_rng

        with no_grad(), scoped_rng(np.random.default_rng(0)):
            model(Tensor(X))  # freezes a mask outside any trace
            with plan_mod.plan_execution(True):
                planned = model(Tensor(X)).data
            interpreted = model(Tensor(X)).data
        stats = plan_mod.plan_stats(model)
        assert stats.fallbacks >= 1 and stats.traces == 0
        np.testing.assert_array_equal(planned, interpreted)
