"""Tests for OOD evaluation (Fig. 7 protocol)."""

import numpy as np
import pytest

from repro import nn
from repro.core import BayesianClassifier, InvertedNorm
from repro.data import make_image_dataset
from repro.tensor import Tensor, manual_seed
from repro.train import Adam, Trainer, cross_entropy
from repro.uncertainty import evaluate_shift_sweep, nll_threshold


@pytest.fixture(scope="module")
def trained_classifier():
    """A small CNN trained on the synthetic image task (module-scoped)."""
    manual_seed(0)
    from repro.quant import QuantConv2d, SignActivation

    dataset = make_image_dataset(n_per_class=20, size=12)
    model = nn.Sequential(
        nn.Conv2d(3, 8, 3, padding=1),
        InvertedNorm(8, p=0.3),
        nn.ReLU(),
        nn.Conv2d(8, 16, 3, stride=2, padding=1),
        InvertedNorm(16, p=0.3),
        nn.ReLU(),
        nn.GlobalAvgPool2d(),
        nn.Linear(16, 10),
    )
    trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), cross_entropy)
    trainer.fit(dataset, epochs=12, batch_size=32)
    clf = BayesianClassifier(model, num_samples=6)
    test = make_image_dataset(n_per_class=6, size=12)
    return clf, test.inputs, test.targets


class TestThreshold:
    def test_threshold_is_mean_clean_nll(self, trained_classifier):
        clf, inputs, _ = trained_classifier
        manual_seed(5)
        threshold = nll_threshold(clf, inputs)
        manual_seed(5)
        per_input = clf.per_input_nll(Tensor(inputs))
        assert threshold == pytest.approx(per_input.mean())


class TestShiftSweep:
    def test_rejects_unknown_kind(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        with pytest.raises(ValueError):
            evaluate_shift_sweep(clf, inputs, labels, "blur", [0.0])

    def test_uniform_noise_degrades_accuracy_and_raises_nll(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        manual_seed(1)
        result = evaluate_shift_sweep(
            clf, inputs, labels, "uniform", [0.0, 1.5, 3.0]
        )
        assert result.accuracies[0] > result.accuracies[-1]
        assert result.nlls[-1] > result.nlls[0]

    def test_rotation_degrades_accuracy(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        manual_seed(2)
        result = evaluate_shift_sweep(
            clf, inputs, labels, "rotation", [0.0, 45.0]
        )
        assert result.accuracies[1] < result.accuracies[0]

    def test_detection_rate_grows_with_shift(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        manual_seed(3)
        result = evaluate_shift_sweep(
            clf, inputs, labels, "uniform", [0.0, 2.0, 4.0]
        )
        assert result.stages[-1].detection_rate >= result.stages[0].detection_rate
        assert 0.0 <= result.overall_detection_rate() <= 1.0

    def test_stage_arrays_aligned(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        result = evaluate_shift_sweep(clf, inputs, labels, "uniform", [0.0, 1.0])
        assert len(result.magnitudes) == len(result.accuracies) == 2
        np.testing.assert_array_equal(result.magnitudes, [0.0, 1.0])

    def test_explicit_threshold_respected(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        result = evaluate_shift_sweep(
            clf, inputs, labels, "uniform", [5.0], threshold=-1.0
        )
        # Impossible threshold (NLL always > -1) → everything flagged.
        assert result.stages[0].detection_rate == 1.0

    def test_overall_rate_ignores_clean_stage(self, trained_classifier):
        clf, inputs, labels = trained_classifier
        result = evaluate_shift_sweep(
            clf, inputs, labels, "uniform", [0.0, 3.0], threshold=-1.0
        )
        assert result.overall_detection_rate() == 1.0
