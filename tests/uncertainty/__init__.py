"""Test package."""
