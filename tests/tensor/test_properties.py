"""Property-based tests for autograd algebra using hypothesis."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.tensor import Tensor, no_grad, unbroadcast

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
    elements=st.floats(-10, 10, allow_nan=False, allow_infinity=False),
)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_add_commutes(a):
    x, y = Tensor(a), Tensor(a * 0.5 + 1.0)
    np.testing.assert_allclose((x + y).data, (y + x).data)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_sum_linear_in_scaling(a):
    x = Tensor(a, requires_grad=True)
    (x * 3.0).sum().backward()
    np.testing.assert_allclose(x.grad, 3.0 * np.ones_like(a))


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_mean_gradient_uniform(a):
    x = Tensor(a, requires_grad=True)
    x.mean().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a) / a.size)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_reshape_roundtrip_preserves_gradient(a):
    x = Tensor(a, requires_grad=True)
    x.reshape(-1).reshape(a.shape).sum().backward()
    np.testing.assert_allclose(x.grad, np.ones_like(a))

@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_chain_rule_product(a):
    # d/dx sum(x * x * x) == 3 x^2
    x = Tensor(a, requires_grad=True)
    (x * x * x).sum().backward()
    np.testing.assert_allclose(x.grad, 3.0 * a**2, rtol=1e-10, atol=1e-10)


@given(finite_arrays)
@settings(max_examples=50, deadline=None)
def test_no_grad_outputs_are_plain(a):
    x = Tensor(a, requires_grad=True)
    with no_grad():
        y = (x * 2.0 + 1.0).sum()
    assert not y.requires_grad


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(1, 4)),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_unbroadcast_row_inverse(a):
    # broadcasting a row vector up then unbroadcasting a ones-gradient
    # counts how many copies were made
    row = a[:1]
    grad = np.ones((3,) + a.shape)
    reduced = unbroadcast(grad, row.shape)
    np.testing.assert_allclose(reduced, 3.0 * a.shape[0] * np.ones_like(row))


@given(st.integers(1, 6), st.integers(1, 6), st.integers(1, 6))
@settings(max_examples=30, deadline=None)
def test_matmul_shapes(n, k, m):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(n, k)), requires_grad=True)
    b = Tensor(rng.normal(size=(k, m)), requires_grad=True)
    out = a @ b
    assert out.shape == (n, m)
    out.sum().backward()
    assert a.grad.shape == (n, k)
    assert b.grad.shape == (k, m)
