"""Finite-difference gradient checks for every differentiable op."""

import numpy as np
import pytest

from repro.tensor import Tensor, check_gradients, concatenate, ops, stack_tensors


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestArithmeticGradients:
    def test_add_broadcast(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4)
        check_gradients(lambda: a + b, [a, b])

    def test_sub_broadcast(self, rng):
        a, b = t(rng, 2, 3, 4), t(rng, 3, 1)
        check_gradients(lambda: a - b, [a, b])

    def test_rsub(self, rng):
        a = t(rng, 3)
        check_gradients(lambda: 5.0 - a, [a])

    def test_mul_broadcast(self, rng):
        a, b = t(rng, 3, 4), t(rng, 3, 1)
        check_gradients(lambda: a * b, [a, b])

    def test_div(self, rng):
        a, b = t(rng, 3, 4), t(rng, 3, 4)
        b.data += 5.0  # keep away from zero
        check_gradients(lambda: a / b, [a, b])

    def test_rdiv(self, rng):
        a = t(rng, 3)
        a.data += 5.0
        check_gradients(lambda: 2.0 / a, [a])

    def test_neg(self, rng):
        a = t(rng, 3, 2)
        check_gradients(lambda: -a, [a])

    def test_pow(self, rng):
        a = t(rng, 4)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: a**3.0, [a])

    def test_pow_rejects_tensor_exponent(self, rng):
        a = t(rng, 3)
        with pytest.raises(TypeError):
            a ** t(rng, 3)


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4, 5)
        check_gradients(lambda: a @ b, [a, b])

    def test_matrix_vector(self, rng):
        a, b = t(rng, 3, 4), t(rng, 4)
        check_gradients(lambda: a @ b, [a, b])

    def test_vector_matrix(self, rng):
        a, b = t(rng, 4), t(rng, 4, 5)
        check_gradients(lambda: a @ b, [a, b])

    def test_batched_matmul(self, rng):
        a, b = t(rng, 2, 3, 4), t(rng, 2, 4, 5)
        check_gradients(lambda: a @ b, [a, b])

    def test_broadcast_batched_matmul(self, rng):
        a, b = t(rng, 2, 3, 4), t(rng, 4, 5)
        check_gradients(lambda: a @ b, [a, b])


class TestReductionGradients:
    def test_sum_all(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.sum(), [a])

    def test_sum_axis_keepdims(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.sum(axis=1, keepdims=True), [a])

    def test_sum_multi_axis(self, rng):
        a = t(rng, 2, 3, 4)
        check_gradients(lambda: a.sum(axis=(0, 2)), [a])

    def test_mean(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.mean(axis=0), [a])

    def test_var(self, rng):
        a = t(rng, 3, 5)
        check_gradients(lambda: a.var(axis=1), [a])

    def test_var_matches_numpy_population(self, rng):
        a = t(rng, 4, 6)
        np.testing.assert_allclose(a.var(axis=1).data, a.data.var(axis=1))

    def test_max_axis(self, rng):
        a = t(rng, 3, 5)
        check_gradients(lambda: a.max(axis=1), [a])

    def test_max_all(self, rng):
        a = t(rng, 3, 5)
        check_gradients(lambda: a.max(), [a])

    def test_min(self, rng):
        a = t(rng, 3, 5)
        check_gradients(lambda: a.min(axis=0), [a])

    def test_max_splits_ties(self):
        a = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])


class TestShapeGradients:
    def test_reshape(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.reshape(2, 6), [a])

    def test_reshape_infer(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.reshape(-1), [a])

    def test_flatten(self, rng):
        a = t(rng, 2, 3, 4)
        assert a.flatten(start_dim=1).shape == (2, 12)
        check_gradients(lambda: a.flatten(start_dim=1), [a])

    def test_transpose_default(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.T, [a])

    def test_transpose_axes(self, rng):
        a = t(rng, 2, 3, 4)
        check_gradients(lambda: a.transpose(1, 2, 0), [a])

    def test_swapaxes(self, rng):
        a = t(rng, 2, 3, 4)
        check_gradients(lambda: a.swapaxes(0, 2), [a])

    def test_expand_dims_squeeze(self, rng):
        a = t(rng, 3, 4)
        check_gradients(lambda: a.expand_dims(1), [a])
        b = t(rng, 3, 1, 4)
        check_gradients(lambda: b.squeeze(1), [b])

    def test_getitem_slice(self, rng):
        a = t(rng, 5, 4)
        check_gradients(lambda: a[1:4, ::2], [a])

    def test_getitem_fancy_repeated_indices(self):
        a = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        a[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 0.0, 1.0])

    def test_concatenate(self, rng):
        a, b = t(rng, 2, 3), t(rng, 4, 3)
        check_gradients(lambda: concatenate([a, b], axis=0), [a, b])

    def test_concatenate_axis1(self, rng):
        a, b = t(rng, 2, 3), t(rng, 2, 5)
        check_gradients(lambda: concatenate([a, b], axis=1), [a, b])

    def test_stack(self, rng):
        a, b = t(rng, 2, 3), t(rng, 2, 3)
        check_gradients(lambda: stack_tensors([a, b], axis=1), [a, b])


class TestElementwiseOpGradients:
    @pytest.mark.parametrize(
        "fn",
        [ops.exp, ops.tanh, ops.sigmoid, ops.relu, ops.leaky_relu, ops.abs_],
        ids=["exp", "tanh", "sigmoid", "relu", "leaky_relu", "abs"],
    )
    def test_unary(self, rng, fn):
        a = t(rng, 3, 4)
        a.data += 0.05  # keep relu/abs kinks away from sample points
        check_gradients(lambda: fn(a), [a])

    def test_log_sqrt_positive_domain(self, rng):
        a = t(rng, 3, 4)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: ops.log(a), [a])
        check_gradients(lambda: ops.sqrt(a), [a])

    def test_hardtanh(self, rng):
        a = t(rng, 20)
        a.data *= 2.0
        a.data += 0.01
        check_gradients(lambda: ops.hardtanh(a), [a])

    def test_clip(self, rng):
        a = t(rng, 20)
        a.data *= 2.0
        a.data += 0.013
        check_gradients(lambda: ops.clip(a, -1.0, 1.0), [a])

    def test_clip_one_sided(self, rng):
        a = t(rng, 10)
        a.data += 0.017
        check_gradients(lambda: ops.clip(a, None, 0.5), [a])
        check_gradients(lambda: ops.clip(a, -0.5, None), [a])

    def test_maximum(self, rng):
        a, b = t(rng, 4, 3), t(rng, 4, 3)
        check_gradients(lambda: ops.maximum(a, b), [a, b])

    def test_where(self, rng):
        a, b = t(rng, 4, 3), t(rng, 4, 3)
        cond = rng.random((4, 3)) > 0.5
        check_gradients(lambda: ops.where(cond, a, b), [a, b])

    def test_softmax(self, rng):
        a = t(rng, 3, 5)
        coeff = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda: ops.softmax(a) * coeff, [a])

    def test_softmax_rows_sum_to_one(self, rng):
        a = t(rng, 3, 5)
        np.testing.assert_allclose(ops.softmax(a).data.sum(axis=-1), np.ones(3))

    def test_log_softmax(self, rng):
        a = t(rng, 3, 5)
        coeff = Tensor(rng.normal(size=(3, 5)))
        check_gradients(lambda: ops.log_softmax(a) * coeff, [a])

    def test_log_softmax_stability_large_logits(self):
        a = Tensor([[1000.0, 1000.0]], requires_grad=True)
        out = ops.log_softmax(a)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, np.log(0.5) * np.ones((1, 2)))

    def test_sigmoid_stability_extremes(self):
        a = Tensor([-1000.0, 1000.0])
        out = ops.sigmoid(a)
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_pad(self, rng):
        a = t(rng, 2, 3, 4)
        check_gradients(lambda: ops.pad(a, [(0, 0), (1, 2), (2, 1)]), [a])

    def test_dropout_mask_apply(self, rng):
        a = t(rng, 4, 5)
        mask = (rng.random((4, 5)) > 0.3).astype(float)
        check_gradients(lambda: ops.dropout_mask_apply(a, mask, scale=2.0), [a])

    def test_add_noise_passthrough_gradient(self, rng):
        a = t(rng, 4, 5)
        noise = rng.normal(size=(4, 5))
        check_gradients(lambda: ops.add_noise(a, noise), [a])
