"""Tests for the cached im2col gather-index path.

The flat gather index is a pure function of the convolution geometry and
is cached across calls (campaigns hit the same shapes thousands of times).
The gathered column matrix must be bit-identical to the strided window
copy it replaced — pinned here against an inline as_strided reference —
and convolution results must be unaffected by cache warmth.
"""

import numpy as np
import pytest
from numpy.lib.stride_tricks import as_strided

from repro.tensor import Tensor, conv2d
from repro.tensor.conv import (
    _IM2COL_INDEX_CACHE,
    _im2col2d,
    _im2col2d_chips,
    _im2col_indices,
)


def _strided_reference(xp, kh, kw, sh, sw):
    """The pre-cache im2col implementation, kept as the bit-exact oracle."""
    n, c, hp, wp = xp.shape
    oh = (hp - kh) // sh + 1
    ow = (wp - kw) // sw + 1
    s0, s1, s2, s3 = xp.strides
    windows = as_strided(
        xp,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * sh, s3 * sw),
    )
    cols = np.ascontiguousarray(windows.transpose(0, 4, 5, 1, 2, 3))
    return cols.reshape(n * oh * ow, c * kh * kw), oh, ow


GEOMETRIES = [
    ((2, 3, 8, 8), 3, 3, 1, 1),
    ((1, 1, 6, 6), 3, 3, 2, 2),
    ((4, 2, 10, 7), 5, 3, 1, 2),
    ((3, 4, 5, 5), 1, 1, 1, 1),
]


class TestGatherMatchesStridedCopy:
    @pytest.mark.parametrize("shape,kh,kw,sh,sw", GEOMETRIES)
    def test_serial_columns_identical(self, shape, kh, kw, sh, sw):
        xp = np.random.default_rng(0).normal(size=shape)
        ref_cols, ref_oh, ref_ow = _strided_reference(xp, kh, kw, sh, sw)
        cols, oh, ow = _im2col2d(xp, kh, kw, sh, sw)
        assert (oh, ow) == (ref_oh, ref_ow)
        np.testing.assert_array_equal(cols, ref_cols)

    @pytest.mark.parametrize("shape,kh,kw,sh,sw", GEOMETRIES)
    def test_chip_batched_columns_identical_per_chip(self, shape, kh, kw, sh, sw):
        n_chips = 3
        xp = np.random.default_rng(1).normal(size=(n_chips,) + shape)
        cols, oh, ow = _im2col2d_chips(xp, kh, kw, sh, sw)
        for chip in range(n_chips):
            ref_cols, _, _ = _strided_reference(xp[chip], kh, kw, sh, sw)
            np.testing.assert_array_equal(cols[chip], ref_cols)

    def test_noncontiguous_input(self):
        # np.pad outputs are contiguous, but guard the general contract.
        base = np.random.default_rng(2).normal(size=(2, 3, 12, 12))
        view = base[:, :, ::2, ::2]
        ref_cols, _, _ = _strided_reference(np.ascontiguousarray(view), 3, 3, 1, 1)
        cols, _, _ = _im2col2d(view, 3, 3, 1, 1)
        np.testing.assert_array_equal(cols, ref_cols)


class TestDilatedIndices:
    @pytest.mark.parametrize("dil", [1, 2, 3])
    def test_dilated_index_matches_bruteforce(self, dil):
        # The cache key includes dilation (reserved for dilated convs);
        # pin the dilated index math against an explicit loop.
        c, hp, wp, kh, kw, sh, sw = 2, 11, 10, 3, 2, 2, 1
        idx, oh, ow = _im2col_indices(c, hp, wp, kh, kw, sh, sw, dil, dil)
        assert oh == (hp - ((kh - 1) * dil + 1)) // sh + 1
        assert ow == (wp - ((kw - 1) * dil + 1)) // sw + 1
        expected = np.empty((oh * ow, c * kh * kw), dtype=idx.dtype)
        for oi in range(oh):
            for oj in range(ow):
                col = 0
                for ci in range(c):
                    for ki in range(kh):
                        for kj in range(kw):
                            expected[oi * ow + oj, col] = (
                                ci * hp * wp
                                + (oi * sh + ki * dil) * wp
                                + (oj * sw + kj * dil)
                            )
                            col += 1
        np.testing.assert_array_equal(idx, expected)

    def test_dilation_distinguishes_cache_entries(self):
        _IM2COL_INDEX_CACHE.clear()
        a, _, _ = _im2col_indices(1, 9, 9, 3, 3, 1, 1, 1, 1)
        b, _, _ = _im2col_indices(1, 9, 9, 3, 3, 1, 1, 2, 2)
        assert len(_IM2COL_INDEX_CACHE) == 2
        assert not np.array_equal(a, b)


class TestIndexCache:
    def test_index_is_cached_per_geometry(self):
        _IM2COL_INDEX_CACHE.clear()
        idx1, oh, ow = _im2col_indices(3, 8, 8, 3, 3, 1, 1)
        idx2, _, _ = _im2col_indices(3, 8, 8, 3, 3, 1, 1)
        assert idx1 is idx2
        assert len(_IM2COL_INDEX_CACHE) == 1
        _im2col_indices(3, 8, 8, 3, 3, 2, 2)  # different stride → new entry
        assert len(_IM2COL_INDEX_CACHE) == 2

    def test_cache_is_bounded(self):
        _IM2COL_INDEX_CACHE.clear()
        from repro.tensor import conv as conv_mod

        for i in range(conv_mod._IM2COL_INDEX_CACHE_MAX + 5):
            _im2col_indices(1, 8 + i, 8, 3, 3, 1, 1)
        assert len(_IM2COL_INDEX_CACHE) <= conv_mod._IM2COL_INDEX_CACHE_MAX

    def test_conv2d_result_unaffected_by_cache_warmth(self):
        rng = np.random.default_rng(3)
        x = Tensor(rng.normal(size=(2, 3, 9, 9)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        _IM2COL_INDEX_CACHE.clear()
        cold = conv2d(x, w, stride=2, padding=1).data
        warm = conv2d(x, w, stride=2, padding=1).data
        np.testing.assert_array_equal(cold, warm)
