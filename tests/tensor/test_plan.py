"""Unit tests for the forward-plan tracer, replayer, and buffer pool.

Covers the mechanics below the campaign engine: slot registration,
kernel/source step recording, constant capture, liveness-pooled ``out=``
buffers (including view aliasing), replay bit-identity for a plain
module stack, and the profiling stage accumulator.
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, manual_seed, no_grad, ops
from repro.tensor import plan as plan_mod
from repro.tensor.random import scoped_rng


def planned_forward(model, x, rng_seed=0, optimize=None):
    with no_grad(), scoped_rng(np.random.default_rng(rng_seed)):
        with plan_mod.plan_execution(True, optimize=optimize):
            return model(Tensor(x)).data


class TestRoutingState:
    def test_routing_off_by_default(self):
        assert not plan_mod.plan_routing_active()

    def test_plan_execution_scopes_and_restores(self):
        with plan_mod.plan_execution(True):
            assert plan_mod.plan_routing_active()
            with plan_mod.plan_execution(False):
                assert not plan_mod.plan_routing_active()
            assert plan_mod.plan_routing_active()
        assert not plan_mod.plan_routing_active()

    def test_routing_inactive_while_tracing(self):
        seen = []

        class Probe(nn.Module):
            def forward(self, x):
                seen.append(plan_mod.plan_routing_active())
                return x * 2.0

        model = nn.Sequential(Probe())
        model.eval()
        planned_forward(model, np.ones((2, 3)))
        assert seen == [False]  # nested calls interpret during the trace


class TestKernelIdentity:
    def test_dense_stack_replay_bit_identical(self):
        manual_seed(0)
        model = nn.Sequential(
            nn.Linear(8, 16),
            nn.Tanh(),
            nn.Linear(16, 4),
            nn.Softmax(),
        )
        model.eval()
        x = np.random.default_rng(1).normal(size=(5, 8))
        traced = planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(traced, interpreted)
        np.testing.assert_array_equal(replayed, interpreted)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 1 and stats.replays == 1

    def test_conv_pool_stack_replay_bit_identical(self):
        manual_seed(0)
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.GroupNorm(2, 4),
            nn.GlobalAvgPool2d(),
        )
        model.eval()
        x = np.random.default_rng(2).normal(size=(3, 2, 8, 8))
        planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)

    def test_fresh_inputs_flow_through_replay(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 3), nn.Sigmoid())
        model.eval()
        rng = np.random.default_rng(3)
        x1, x2 = rng.normal(size=(6, 4)), rng.normal(size=(6, 4))
        planned_forward(model, x1)  # trace on x1
        replayed = planned_forward(model, x2)  # replay with new input
        with no_grad():
            interpreted = model(Tensor(x2)).data
        np.testing.assert_array_equal(replayed, interpreted)


class TestSourceSteps:
    def test_stochastic_replay_draws_fresh_per_pass(self):
        manual_seed(0)
        from repro.core.bayesian import enable_stochastic_inference

        model = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        model.eval()
        enable_stochastic_inference(model, True)
        x = np.ones((3, 4))
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            with plan_mod.plan_execution(True):
                a = model(Tensor(x)).data  # trace: draws mask 1
                b = model(Tensor(x)).data  # replay: draws mask 2
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            ref_a = model(Tensor(x)).data
            ref_b = model(Tensor(x)).data
        np.testing.assert_array_equal(a, ref_a)
        np.testing.assert_array_equal(b, ref_b)
        assert not np.array_equal(a, b)  # masks really differ per pass

    def test_traced_source_records_and_returns(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            value = plan_mod.traced_source(lambda: np.ones(2))
        finally:
            plan_mod._STATE.trace = None
        assert isinstance(value, np.ndarray)
        assert len(trace.steps) == 1 and trace.steps[0][0] == "s"

    def test_source_tuple_outputs_register_slots(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            value = plan_mod.traced_source(lambda: (np.ones(2), np.zeros(2)))
        finally:
            plan_mod._STATE.trace = None
        assert trace.failed is None
        assert all(id(v) in trace.slot_of for v in value)

    def test_ensure_known_poisons_on_foreign_array(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            plan_mod.ensure_known(np.ones(4))
        finally:
            plan_mod._STATE.trace = None
        assert trace.failed is not None


class TestBufferPool:
    def _plan_for(self, model, x, optimize=None):
        planned_forward(model, x, optimize=optimize)
        cache = plan_mod.plan_stats(model)
        (entry,) = cache.plans.values()
        return entry

    def test_pool_smaller_than_step_count(self):
        # Raw (unoptimized) plan: fusion would collapse the whole stack
        # into a couple of composite steps, hiding the pooling behaviour
        # this test pins down.
        manual_seed(0)
        layers = []
        for _ in range(6):
            layers += [nn.Linear(8, 8), nn.Tanh()]
        model = nn.Sequential(*layers)
        model.eval()
        entry = self._plan_for(model, np.zeros((4, 8)), optimize=False)
        outable_steps = sum(
            1
            for step in entry._steps
            if step[0] == "k" and step[4] is not None
        )
        assert outable_steps > entry.n_buffers  # buffers genuinely reused

    def test_views_pin_underlying_buffers(self):
        """A reshape view of a pooled result must survive buffer reuse."""

        class Viewy(nn.Module):
            def forward(self, x):
                y = x + 1.0          # pooled buffer A
                v = y.reshape(-1)    # view of A
                z = x * 2.0          # must NOT steal A while v is live
                return v + z.reshape(-1)

        model = nn.Sequential(Viewy())
        model.eval()
        x = np.arange(12.0).reshape(3, 4)
        planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)

    def test_output_copy_detaches_from_pool(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 4), nn.Tanh())
        model.eval()
        x = np.random.default_rng(0).normal(size=(2, 4))
        planned_forward(model, x)
        first = planned_forward(model, x)
        snapshot = first.copy()
        planned_forward(model, x * 3.0)
        np.testing.assert_array_equal(first, snapshot)


class TestPoisoning:
    def test_where_poisons_trace(self):
        class UsesWhere(nn.Module):
            def forward(self, x):
                return ops.where(x.data > 0, x, x * 0.5)

        model = nn.Sequential(UsesWhere())
        model.eval()
        x = np.random.default_rng(0).normal(size=(3, 3))
        first = planned_forward(model, x)
        second = planned_forward(model, x)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 0 and stats.fallbacks >= 2
        np.testing.assert_array_equal(first, second)

    def test_record_op_without_kernel_fails_trace(self):
        trace = plan_mod._Trace(np.zeros(3))
        trace.record_op(None, [np.zeros(3)], np.ones(3), "mystery")
        assert trace.failed is not None

    def test_non_tensor_output_not_planned(self):
        class TupleOut(nn.Module):
            def forward(self, x):
                return x, x

        model = TupleOut()
        model.eval()
        with no_grad(), plan_mod.plan_execution(True):
            out = model(Tensor(np.ones(3)))
        assert isinstance(out, tuple)
        assert plan_mod.plan_stats(model).traces == 0


class TestOptimizerPasses:
    """Per-pass unit tests for the trace-time IR optimizer.

    All tests pin the optimizer state explicitly (``optimize=True`` /
    ``False``) so they hold regardless of the ambient ``REPRO_PLAN_OPT``
    setting CI flips.
    """

    @staticmethod
    def _outable(fn):
        return plan_mod.outable(fn)

    def test_all_constant_kernel_step_folds(self):
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)
        w = np.ones(3)
        neg_w = np.negative(w)
        trace.record_op(
            self._outable(lambda a, out=None: np.negative(a, out=out)),
            [w], neg_w, "neg",
        )
        y = x + neg_w
        trace.record_op(
            self._outable(lambda a, b, out=None: np.add(a, b, out=out)),
            [x, neg_w], y, "add",
        )
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(y)])
        assert stats["folded"] == 1 and stats["eliminated"] == 0
        assert trace.constant[trace.slot_of[id(neg_w)]]
        assert len(steps) == 1 and steps[0][0] == "k"

    def test_entry_dependent_step_never_folds(self):
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)
        y = x + 1.0
        trace.record_op(
            self._outable(lambda a, b, out=None: np.add(a, b, out=out)),
            [x, np.ones(3)], y, "add",
        )
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(y)])
        assert stats["folded"] == 0 and len(steps) == 1

    def test_source_step_never_folded_or_eliminated(self):
        """Sources survive even with all-constant inputs and a dead output."""
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)
        c = np.ones(3)
        draw = c * 0.5
        trace.record_source(lambda a: a * 0.5, draw, in_arrays=(c,))
        y = x + 1.0
        trace.record_op(
            self._outable(lambda a, b, out=None: np.add(a, b, out=out)),
            [x, np.ones(3)], y, "add",
        )
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(y)])
        assert stats["folded"] == 0 and stats["eliminated"] == 0
        assert sum(1 for s in steps if s[0] == "s") == 1
        assert not trace.constant[trace.slot_of[id(draw)]]

    def test_dead_steps_eliminated_and_replay_identical(self):
        class Deady(nn.Module):
            def forward(self, x):
                unused = x * 3.0
                _chained = unused + 1.0
                return x + 1.0

        model = nn.Sequential(Deady())
        model.eval()
        x = np.arange(6.0).reshape(2, 3)
        planned_forward(model, x, optimize=True)
        replayed = planned_forward(model, x, optimize=True)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)
        cache = plan_mod.plan_stats(model)
        (entry,) = cache.plans.values()
        assert entry.opt_stats["eliminated"] == 2
        assert cache.opt_counters["eliminated"] == 2

    def test_elimination_keeps_peak_live_pool_of_survivors(self):
        """Dead steps don't shrink the pool below the survivors' needs."""

        class Deady(nn.Module):
            def forward(self, x):
                _unused = x * 3.0
                y = x + 1.0
                z = y * 2.0
                return z + y

        class Lean(nn.Module):
            def forward(self, x):
                y = x + 1.0
                z = y * 2.0
                return z + y

        x = np.arange(6.0).reshape(2, 3)
        plans = []
        for cls in (Deady, Lean):
            model = nn.Sequential(cls())
            model.eval()
            planned_forward(model, x, optimize=True)
            (entry,) = plan_mod.plan_stats(model).plans.values()
            plans.append(entry)
        deady, lean = plans
        assert deady.opt_stats["eliminated"] == 1
        assert lean.opt_stats["eliminated"] == 0
        assert deady.n_buffers == lean.n_buffers

    def test_fused_kernels_reuse_pooled_buffers(self):
        from repro.tensor.plan_passes import FusedKernel

        manual_seed(0)
        layers = []
        for _ in range(4):
            layers += [nn.Linear(8, 8), nn.Tanh()]
        model = nn.Sequential(*layers)
        model.eval()
        x = np.random.default_rng(0).normal(size=(4, 8))
        planned_forward(model, x, optimize=True)
        replayed = planned_forward(model, x, optimize=True)
        unopt = planned_forward(model, x, optimize=False)
        np.testing.assert_array_equal(replayed, unopt)

        cache = plan_mod.plan_stats(model)
        assert len(cache.plans) == 2  # optimize flag is part of the key
        by_opt = {
            bool(entry.opt_stats["fused"]): entry
            for entry in cache.plans.values()
        }
        fused_plan, raw_plan = by_opt[True], by_opt[False]
        fused_steps = [
            step for step in fused_plan._steps
            if step[0] == "k" and isinstance(step[1], FusedKernel)
        ]
        assert fused_steps
        # Fused composites draw their out= targets from the pooled set,
        # and sinking never inflates the pool past the raw plan's.
        assert all(step[4] is not None for step in fused_steps)
        assert fused_plan.n_buffers <= raw_plan.n_buffers
        assert fused_plan.opt_stats["steps_after"] < raw_plan.opt_stats[
            "steps_before"
        ]

    def test_source_step_bounds_fusion_window(self):
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)
        fus = plan_mod.fusable(
            self._outable(lambda a, b, out=None: np.add(a, b, out=out))
        )
        y = x + 1.0
        trace.record_op(fus, [x, np.ones(3)], y, "add")
        draw = np.full(3, 0.5)
        trace.record_source(lambda: draw.copy(), draw)
        z = y + draw
        trace.record_op(fus, [y, draw], z, "add")
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(z)])
        assert stats["fused"] == 0  # the source barrier splits the chain
        assert [s[0] for s in steps] == ["k", "s", "k"]

    def test_duplicate_steps_deduped_and_readers_remapped(self):
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)

        def add_kernel():
            # Fresh object per call, shared code object — the tracer sees
            # exactly this shape for dunder-op kernels built per Tensor op.
            return self._outable(lambda a, b, out=None: np.add(a, b, out=out))

        ones = np.ones(3)
        y1 = x + ones
        trace.record_op(add_kernel(), [x, ones], y1, "add")
        y2 = x + ones
        trace.record_op(add_kernel(), [x, ones], y2, "add")
        z = y1 + y2
        trace.record_op(add_kernel(), [y1, y2], z, "add")
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(z)])
        assert stats["deduped"] == 1
        s1 = trace.slot_of[id(y1)]
        assert steps[-1][2] == (s1, s1)  # both reads remap to the survivor

    def test_distinct_closure_values_never_deduped(self):
        from repro.tensor import plan_passes

        x = np.zeros(3)
        trace = plan_mod._Trace(x)

        def mul_by(c):
            return self._outable(
                lambda a, out=None: np.multiply(a, c, out=out)
            )

        y1 = x * 2.0
        trace.record_op(mul_by(2.0), [x], y1, "mul")
        y2 = x * -0.0
        trace.record_op(mul_by(-0.0), [x], y2, "mul")
        y3 = x * 0.0
        trace.record_op(mul_by(0.0), [x], y3, "mul")
        z = y1 + y2 + y3
        trace.record_op(
            self._outable(lambda a, b, c, out=None: np.add(np.add(a, b), c, out=out)),
            [y1, y2, y3], z, "add3",
        )
        _, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(z)])
        # 2.0 vs -0.0 vs 0.0: closure values all distinct bit patterns
        assert stats["deduped"] == 0

    def test_cse_replay_bit_identical(self):
        class Twice(nn.Module):
            def forward(self, x):
                s = x.sum(axis=1, keepdims=True)
                a = x - s
                b = x - s  # same subexpression, same operands
                return a + b

        model = nn.Sequential(Twice())
        model.eval()
        x = np.random.default_rng(3).normal(size=(4, 5))
        planned_forward(model, x, optimize=True)
        replayed = planned_forward(model, x, optimize=True)
        unopt = planned_forward(model, x, optimize=False)
        np.testing.assert_array_equal(replayed, unopt)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)
        cache = plan_mod.plan_stats(model)
        deduped = [
            entry.opt_stats["deduped"]
            for entry in cache.plans.values()
            if entry.opt_stats["deduped"]
        ]
        assert deduped  # the duplicate subtraction was merged

    def test_gap_strided_view_densified(self):
        from repro.tensor import plan_passes

        x = np.zeros((32, 32))
        trace = plan_mod._Trace(x)
        wide = x + 1.0
        trace.record_op(
            self._outable(lambda a, b, out=None: np.add(a, b, out=out)),
            [x, np.ones((32, 32))], wide, "add",
        )
        gate = wide[:, :16]
        trace.record_op(
            plan_mod.viewing(lambda a: a[:, :16]), [wide], gate, "slice",
        )
        y = np.tanh(gate)
        trace.record_op(
            self._outable(lambda a, out=None: np.tanh(a, out=out)),
            [gate], y, "tanh",
        )
        steps, stats = plan_passes.optimize_trace(trace, trace.slot_of[id(y)])
        assert stats["densified"] == 1
        kernel = steps[1][1]
        # The rewritten step pools like any compute kernel: it takes an
        # out= target and no longer advertises aliasing.
        assert getattr(kernel, "supports_out", False)
        assert not getattr(kernel, "may_alias", False)
        out = np.empty((32, 16))
        res = kernel(wide, out=out)
        assert res is out and res.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(res, wide[:, :16])

    def test_cheap_contiguous_and_transpose_views_left_alone(self):
        from repro.tensor import plan_passes

        def densified_count(base_shape, view_fn):
            x = np.zeros(base_shape)
            trace = plan_mod._Trace(x)
            wide = x + 1.0
            trace.record_op(
                self._outable(lambda a, b, out=None: np.add(a, b, out=out)),
                [x, np.ones(base_shape)], wide, "add",
            )
            view = view_fn(wide)
            trace.record_op(plan_mod.viewing(view_fn), [wide], view, "view")
            y = np.tanh(view)
            trace.record_op(
                self._outable(lambda a, out=None: np.tanh(a, out=out)),
                [view], y, "tanh",
            )
            _, stats = plan_passes.optimize_trace(
                trace, trace.slot_of[id(y)],
            )
            return stats["densified"]

        assert densified_count((32, 32), lambda a: a[:, :16]) == 1
        # Contiguous views cost nothing to consume as-is.
        assert densified_count((32, 32), lambda a: a.reshape(-1)) == 0
        # Below the cutoff the strided ufunc beats copy + contiguous pass.
        assert densified_count((8, 8), lambda a: a[:, :4]) == 0
        # empty_like keeps transposed strides, so the pooled replacement
        # buffer would be just as strided -- nothing to gain.
        assert densified_count((32, 32), lambda a: a.T) == 0

    def test_densified_replay_bit_identical(self):
        class GateSlice(nn.Module):
            def forward(self, x):
                wide = x * 2.0
                return ops.tanh(wide[:, :16])

        model = nn.Sequential(GateSlice())
        model.eval()
        x = np.random.default_rng(2).normal(size=(32, 32))
        planned_forward(model, x, optimize=True)
        replayed = planned_forward(model, x, optimize=True)
        unopt = planned_forward(model, x, optimize=False)
        np.testing.assert_array_equal(replayed, unopt)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)
        cache = plan_mod.plan_stats(model)
        densified = [
            entry for entry in cache.plans.values()
            if entry.opt_stats["densified"]
        ]
        assert len(densified) == 1

    def test_optimizer_counters_reach_profile(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 4), nn.Tanh())
        model.eval()
        x = np.zeros((2, 4))
        with plan_mod.profiled() as stages:
            planned_forward(model, x, optimize=True)
        assert stages["opt.steps_before"] >= stages["opt.steps_after"]
        plan_mod.clear_plans(model)
        with plan_mod.profiled() as stages:
            planned_forward(model, x, optimize=False)
        assert not any(k.startswith("opt.") for k in stages)


class TestProfiling:
    def test_stage_accumulates_only_when_profiled(self):
        with plan_mod.stage("attach"):
            pass  # no-op outside profiled()
        with plan_mod.profiled() as stages:
            with plan_mod.stage("attach"):
                pass
            with plan_mod.stage("attach"):
                pass
            assert stages["attach"] >= 0.0
        assert set(stages) == {"attach"}

    def test_trace_and_replay_stages_recorded(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3))
        model.eval()
        x = np.zeros((2, 3))
        with plan_mod.profiled() as stages:
            planned_forward(model, x)
            planned_forward(model, x)
        assert "trace" in stages and "replay" in stages

    def test_format_profile_renders_breakdown(self):
        from repro.eval.reporting import format_profile

        text = format_profile(
            {"attach": 0.01, "trace": 0.02, "replay": 0.03, "metric": 0.06}
        )
        assert "attach" in text and "replay" in text
        assert "metric (other)" in text

    def test_format_profile_omits_absent_stages(self):
        """--no-plan runs record no trace/replay: no misleading zero rows."""
        from repro.eval.reporting import format_profile

        text = format_profile({"attach": 0.01, "metric": 0.06})
        assert "attach" in text and "metric (other)" in text
        assert "trace" not in text and "replay" not in text

    def test_format_profile_handles_empty_stages(self):
        from repro.eval.reporting import format_profile

        assert "no stages recorded" in format_profile({})

    def test_format_profile_renders_optimizer_counters(self):
        from repro.eval.reporting import format_profile

        text = format_profile(
            {
                "attach": 0.01, "metric": 0.06,
                "opt.deduped": 4.0, "opt.folded": 3.0, "opt.fused": 5.0,
                "opt.eliminated": 1.0, "opt.densified": 2.0,
                "opt.steps_before": 20.0, "opt.steps_after": 11.0,
            }
        )
        assert (
            "plan optimizer: 4 deduped, 3 folded, 5 fused, "
            "1 eliminated, 2 densified"
            in text
        )
        assert "(20 -> 11 steps)" in text


class TestPrefixFold:
    """Entry-stable prefix skipping: analysis bounds and replay identity."""

    @staticmethod
    def _kernel(may_alias=False):
        import types

        return types.SimpleNamespace(may_alias=may_alias)

    def test_prefix_length_counts_leading_kernels(self):
        from repro.tensor.plan_passes import prefix_length

        k = self._kernel()
        steps = [("k", k, (0,), 1), ("k", k, (1,), 2), ("k", k, (2,), 3)]
        assert prefix_length(steps, entry_id=0, output_id=3) == 3

    def test_source_step_bounds_the_prefix(self):
        from repro.tensor.plan_passes import prefix_length

        k = self._kernel()
        steps = [
            ("k", k, (0,), 1),
            ("k", k, (1,), 2),
            ("s", lambda: None, (), 3),
            ("k", k, (2, 3), 4),
        ]
        assert prefix_length(steps, entry_id=0, output_id=4) == 2

    def test_short_prefix_not_worth_the_comparison(self):
        from repro.tensor.plan_passes import prefix_length

        k = self._kernel()
        steps = [("k", k, (0,), 1), ("s", lambda: None, (), 2)]
        assert prefix_length(steps, entry_id=0, output_id=1) == 0

    def test_entry_view_read_past_boundary_shrinks_prefix(self):
        """A view of the entry consumed after the prefix would replay
        against a stale entry array — its producer must leave the prefix."""
        from repro.tensor.plan_passes import prefix_length

        view = self._kernel(may_alias=True)
        k = self._kernel()
        steps = [
            ("k", view, (0,), 1),  # entry view
            ("k", k, (0,), 2),
            ("s", lambda: None, (), 3),
            ("k", k, (1, 3), 4),  # reads the view after the boundary
        ]
        assert prefix_length(steps, entry_id=0, output_id=4) == 0

    def test_entry_view_as_output_shrinks_prefix(self):
        from repro.tensor.plan_passes import prefix_length

        view = self._kernel(may_alias=True)
        k = self._kernel()
        steps = [
            ("k", k, (0,), 1),
            ("k", k, (1,), 2),
            ("k", view, (0,), 3),  # the plan output aliases the entry
        ]
        assert prefix_length(steps, entry_id=0, output_id=3) == 2

    def test_entry_view_consumed_inside_prefix_is_fine(self):
        from repro.tensor.plan_passes import prefix_length

        view = self._kernel(may_alias=True)
        k = self._kernel()
        steps = [
            ("k", view, (0,), 1),
            ("k", k, (1,), 2),  # view read inside the prefix: safe
            ("k", k, (2,), 3),
        ]
        assert prefix_length(steps, entry_id=0, output_id=3) == 3

    def test_non_entry_view_does_not_shrink(self):
        """Views of constants/pool buffers are stable across replays."""
        from repro.tensor.plan_passes import prefix_length

        view = self._kernel(may_alias=True)
        k = self._kernel()
        steps = [
            ("k", k, (0,), 1),
            ("k", view, (5,), 2),  # view of a constant slot, not the entry
            ("s", lambda: None, (), 3),
            ("k", k, (1, 2, 3), 4),
        ]
        assert prefix_length(steps, entry_id=0, output_id=4) == 2

    def test_deterministic_stack_skips_prefix_on_repeat(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(6, 8), nn.ReLU(), nn.Linear(8, 4))
        model.eval()
        x = np.random.default_rng(3).normal(size=(5, 6))
        with no_grad():
            interpreted = model(Tensor(x)).data
        traced = planned_forward(model, x, optimize=True)
        first = planned_forward(model, x, optimize=True)  # prefix miss
        second = planned_forward(model, x, optimize=True)  # prefix hit
        np.testing.assert_array_equal(traced, interpreted)
        np.testing.assert_array_equal(first, interpreted)
        np.testing.assert_array_equal(second, interpreted)
        cache = plan_mod.plan_stats(model)
        (entry,) = cache.plans.values()
        assert entry.opt_stats["prefixed"] == entry._prefix_len > 0
        assert entry.prefix_misses == 1 and entry.prefix_hits == 1
        assert cache.opt_counters["prefixed"] == entry._prefix_len

    def test_changed_entry_misses_and_recomputes(self):
        manual_seed(0)
        # ReLU keeps the stack multi-step: a fully fused single-kernel
        # plan is (by design) below PREFIX_MIN_STEPS and never prefixes.
        model = nn.Sequential(nn.Linear(4, 4), nn.ReLU(), nn.Linear(4, 2))
        model.eval()
        rng = np.random.default_rng(4)
        x1 = rng.normal(size=(3, 4))
        x2 = rng.normal(size=(3, 4))
        planned_forward(model, x1, optimize=True)  # trace
        planned_forward(model, x1, optimize=True)  # miss, caches x1
        a = planned_forward(model, x1, optimize=True)  # hit
        b = planned_forward(model, x2, optimize=True)  # miss: new content
        c = planned_forward(model, x2, optimize=True)  # hit on x2
        with no_grad():
            ref1 = model(Tensor(x1)).data
            ref2 = model(Tensor(x2)).data
        np.testing.assert_array_equal(a, ref1)
        np.testing.assert_array_equal(b, ref2)
        np.testing.assert_array_equal(c, ref2)
        (entry,) = plan_mod.plan_stats(model).plans.values()
        assert entry.prefix_hits == 2 and entry.prefix_misses == 2

    def test_stochastic_stack_prefix_stops_at_source(self):
        """Layers ahead of the first RNG draw skip; draws stay fresh."""
        manual_seed(0)
        from repro.core.bayesian import enable_stochastic_inference

        model = nn.Sequential(
            nn.Linear(4, 6), nn.ReLU(), nn.Linear(6, 4), nn.Dropout(0.5)
        )
        model.eval()
        enable_stochastic_inference(model, True)
        x = np.ones((3, 4))
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            with plan_mod.plan_execution(True, optimize=True):
                outs = [model(Tensor(x)).data for _ in range(4)]
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            refs = [model(Tensor(x)).data for _ in range(4)]
        for out, ref in zip(outs, refs):
            np.testing.assert_array_equal(out, ref)
        (entry,) = plan_mod.plan_stats(model).plans.values()
        assert 0 < entry._prefix_len < len(entry._steps)
        assert entry.prefix_hits == 2 and entry.prefix_misses == 1

    def test_optimize_false_disables_prefixing(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 3))
        model.eval()
        x = np.zeros((2, 3))
        planned_forward(model, x, optimize=False)
        planned_forward(model, x, optimize=False)
        (entry,) = plan_mod.plan_stats(model).plans.values()
        assert entry.opt_stats["prefixed"] == 0
        assert entry._prefix_len == 0
        assert entry.prefix_hits == 0 and entry.prefix_misses == 0

    def test_prefixed_counter_reaches_profile_stages(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 3))
        model.eval()
        x = np.zeros((2, 3))
        with plan_mod.profiled() as stages:
            planned_forward(model, x, optimize=True)
        assert stages.get("opt.prefixed", 0) > 0

    def test_format_profile_renders_prefixed_counter(self):
        from repro.eval.reporting import format_profile

        text = format_profile(
            {
                "attach": 0.01, "metric": 0.06,
                "opt.deduped": 0.0, "opt.folded": 1.0, "opt.fused": 0.0,
                "opt.eliminated": 0.0, "opt.densified": 0.0,
                "opt.prefixed": 3.0,
                "opt.steps_before": 5.0, "opt.steps_after": 4.0,
            }
        )
        assert "3 prefixed" in text


class TestClearPlans:
    def test_clear_plans_resets_module_cache(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3))
        model.eval()
        planned_forward(model, np.zeros((2, 3)))
        assert plan_mod.plan_stats(model).traces == 1
        plan_mod.clear_plans(model)
        assert plan_mod.plan_stats(model).traces == 0
