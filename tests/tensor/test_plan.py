"""Unit tests for the forward-plan tracer, replayer, and buffer pool.

Covers the mechanics below the campaign engine: slot registration,
kernel/source step recording, constant capture, liveness-pooled ``out=``
buffers (including view aliasing), replay bit-identity for a plain
module stack, and the profiling stage accumulator.
"""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, manual_seed, no_grad, ops
from repro.tensor import plan as plan_mod
from repro.tensor.random import scoped_rng


def planned_forward(model, x, rng_seed=0):
    with no_grad(), scoped_rng(np.random.default_rng(rng_seed)):
        with plan_mod.plan_execution(True):
            return model(Tensor(x)).data


class TestRoutingState:
    def test_routing_off_by_default(self):
        assert not plan_mod.plan_routing_active()

    def test_plan_execution_scopes_and_restores(self):
        with plan_mod.plan_execution(True):
            assert plan_mod.plan_routing_active()
            with plan_mod.plan_execution(False):
                assert not plan_mod.plan_routing_active()
            assert plan_mod.plan_routing_active()
        assert not plan_mod.plan_routing_active()

    def test_routing_inactive_while_tracing(self):
        seen = []

        class Probe(nn.Module):
            def forward(self, x):
                seen.append(plan_mod.plan_routing_active())
                return x * 2.0

        model = nn.Sequential(Probe())
        model.eval()
        planned_forward(model, np.ones((2, 3)))
        assert seen == [False]  # nested calls interpret during the trace


class TestKernelIdentity:
    def test_dense_stack_replay_bit_identical(self):
        manual_seed(0)
        model = nn.Sequential(
            nn.Linear(8, 16),
            nn.Tanh(),
            nn.Linear(16, 4),
            nn.Softmax(),
        )
        model.eval()
        x = np.random.default_rng(1).normal(size=(5, 8))
        traced = planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(traced, interpreted)
        np.testing.assert_array_equal(replayed, interpreted)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 1 and stats.replays == 1

    def test_conv_pool_stack_replay_bit_identical(self):
        manual_seed(0)
        model = nn.Sequential(
            nn.Conv2d(2, 4, 3, padding=1),
            nn.ReLU(),
            nn.MaxPool2d(2),
            nn.GroupNorm(2, 4),
            nn.GlobalAvgPool2d(),
        )
        model.eval()
        x = np.random.default_rng(2).normal(size=(3, 2, 8, 8))
        planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)

    def test_fresh_inputs_flow_through_replay(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 3), nn.Sigmoid())
        model.eval()
        rng = np.random.default_rng(3)
        x1, x2 = rng.normal(size=(6, 4)), rng.normal(size=(6, 4))
        planned_forward(model, x1)  # trace on x1
        replayed = planned_forward(model, x2)  # replay with new input
        with no_grad():
            interpreted = model(Tensor(x2)).data
        np.testing.assert_array_equal(replayed, interpreted)


class TestSourceSteps:
    def test_stochastic_replay_draws_fresh_per_pass(self):
        manual_seed(0)
        from repro.core.bayesian import enable_stochastic_inference

        model = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        model.eval()
        enable_stochastic_inference(model, True)
        x = np.ones((3, 4))
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            with plan_mod.plan_execution(True):
                a = model(Tensor(x)).data  # trace: draws mask 1
                b = model(Tensor(x)).data  # replay: draws mask 2
        with no_grad(), scoped_rng(np.random.default_rng(42)):
            ref_a = model(Tensor(x)).data
            ref_b = model(Tensor(x)).data
        np.testing.assert_array_equal(a, ref_a)
        np.testing.assert_array_equal(b, ref_b)
        assert not np.array_equal(a, b)  # masks really differ per pass

    def test_traced_source_records_and_returns(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            value = plan_mod.traced_source(lambda: np.ones(2))
        finally:
            plan_mod._STATE.trace = None
        assert isinstance(value, np.ndarray)
        assert len(trace.steps) == 1 and trace.steps[0][0] == "s"

    def test_source_tuple_outputs_register_slots(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            value = plan_mod.traced_source(lambda: (np.ones(2), np.zeros(2)))
        finally:
            plan_mod._STATE.trace = None
        assert trace.failed is None
        assert all(id(v) in trace.slot_of for v in value)

    def test_ensure_known_poisons_on_foreign_array(self):
        trace = plan_mod._Trace(np.zeros(3))
        plan_mod._STATE.trace = trace
        try:
            plan_mod.ensure_known(np.ones(4))
        finally:
            plan_mod._STATE.trace = None
        assert trace.failed is not None


class TestBufferPool:
    def _plan_for(self, model, x):
        planned_forward(model, x)
        cache = plan_mod.plan_stats(model)
        (entry,) = cache.plans.values()
        return entry

    def test_pool_smaller_than_step_count(self):
        manual_seed(0)
        layers = []
        for _ in range(6):
            layers += [nn.Linear(8, 8), nn.Tanh()]
        model = nn.Sequential(*layers)
        model.eval()
        entry = self._plan_for(model, np.zeros((4, 8)))
        outable_steps = sum(
            1
            for step in entry._steps
            if step[0] == "k" and step[4] is not None
        )
        assert outable_steps > entry.n_buffers  # buffers genuinely reused

    def test_views_pin_underlying_buffers(self):
        """A reshape view of a pooled result must survive buffer reuse."""

        class Viewy(nn.Module):
            def forward(self, x):
                y = x + 1.0          # pooled buffer A
                v = y.reshape(-1)    # view of A
                z = x * 2.0          # must NOT steal A while v is live
                return v + z.reshape(-1)

        model = nn.Sequential(Viewy())
        model.eval()
        x = np.arange(12.0).reshape(3, 4)
        planned_forward(model, x)
        replayed = planned_forward(model, x)
        with no_grad():
            interpreted = model(Tensor(x)).data
        np.testing.assert_array_equal(replayed, interpreted)

    def test_output_copy_detaches_from_pool(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(4, 4), nn.Tanh())
        model.eval()
        x = np.random.default_rng(0).normal(size=(2, 4))
        planned_forward(model, x)
        first = planned_forward(model, x)
        snapshot = first.copy()
        planned_forward(model, x * 3.0)
        np.testing.assert_array_equal(first, snapshot)


class TestPoisoning:
    def test_where_poisons_trace(self):
        class UsesWhere(nn.Module):
            def forward(self, x):
                return ops.where(x.data > 0, x, x * 0.5)

        model = nn.Sequential(UsesWhere())
        model.eval()
        x = np.random.default_rng(0).normal(size=(3, 3))
        first = planned_forward(model, x)
        second = planned_forward(model, x)
        stats = plan_mod.plan_stats(model)
        assert stats.traces == 0 and stats.fallbacks >= 2
        np.testing.assert_array_equal(first, second)

    def test_record_op_without_kernel_fails_trace(self):
        trace = plan_mod._Trace(np.zeros(3))
        trace.record_op(None, [np.zeros(3)], np.ones(3), "mystery")
        assert trace.failed is not None

    def test_non_tensor_output_not_planned(self):
        class TupleOut(nn.Module):
            def forward(self, x):
                return x, x

        model = TupleOut()
        model.eval()
        with no_grad(), plan_mod.plan_execution(True):
            out = model(Tensor(np.ones(3)))
        assert isinstance(out, tuple)
        assert plan_mod.plan_stats(model).traces == 0


class TestProfiling:
    def test_stage_accumulates_only_when_profiled(self):
        with plan_mod.stage("attach"):
            pass  # no-op outside profiled()
        with plan_mod.profiled() as stages:
            with plan_mod.stage("attach"):
                pass
            with plan_mod.stage("attach"):
                pass
            assert stages["attach"] >= 0.0
        assert set(stages) == {"attach"}

    def test_trace_and_replay_stages_recorded(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3))
        model.eval()
        x = np.zeros((2, 3))
        with plan_mod.profiled() as stages:
            planned_forward(model, x)
            planned_forward(model, x)
        assert "trace" in stages and "replay" in stages

    def test_format_profile_renders_breakdown(self):
        from repro.eval.reporting import format_profile

        text = format_profile(
            {"attach": 0.01, "trace": 0.02, "replay": 0.03, "metric": 0.06}
        )
        assert "attach" in text and "replay" in text
        assert "metric (other)" in text


class TestClearPlans:
    def test_clear_plans_resets_module_cache(self):
        manual_seed(0)
        model = nn.Sequential(nn.Linear(3, 3))
        model.eval()
        planned_forward(model, np.zeros((2, 3)))
        assert plan_mod.plan_stats(model).traces == 1
        plan_mod.clear_plans(model)
        assert plan_mod.plan_stats(model).traces == 0
