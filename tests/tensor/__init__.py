"""Test package."""
