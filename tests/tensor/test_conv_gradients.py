"""Gradient and shape checks for conv / pool / upsample kernels."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool1d,
    avg_pool2d,
    check_gradients,
    conv1d,
    conv2d,
    conv_transpose2d,
    max_pool1d,
    max_pool2d,
    upsample_nearest2d,
)


def t(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestConv2d:
    def test_output_shape_basic(self, rng):
        out = conv2d(t(rng, 2, 3, 8, 8), t(rng, 5, 3, 3, 3), padding=1)
        assert out.shape == (2, 5, 8, 8)

    def test_output_shape_strided(self, rng):
        out = conv2d(t(rng, 2, 3, 8, 8), t(rng, 5, 3, 3, 3), stride=2, padding=1)
        assert out.shape == (2, 5, 4, 4)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv2d(t(rng, 1, 3, 4, 4), t(rng, 2, 4, 3, 3))

    def test_matches_direct_computation(self, rng):
        x = t(rng, 1, 2, 5, 5)
        w = t(rng, 3, 2, 3, 3)
        out = conv2d(x, w).data
        # brute-force cross-correlation
        ref = np.zeros((1, 3, 3, 3))
        for o in range(3):
            for i in range(3):
                for j in range(3):
                    patch = x.data[0, :, i : i + 3, j : j + 3]
                    ref[0, o, i, j] = (patch * w.data[o]).sum()
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_gradients(self, rng):
        x, w, b = t(rng, 2, 3, 6, 6), t(rng, 4, 3, 3, 3), t(rng, 4)
        check_gradients(lambda: conv2d(x, w, b, stride=2, padding=1), [x, w, b])

    def test_gradients_1x1(self, rng):
        x, w = t(rng, 2, 3, 4, 4), t(rng, 5, 3, 1, 1)
        check_gradients(lambda: conv2d(x, w), [x, w])

    def test_gradients_asymmetric_kernel(self, rng):
        x, w = t(rng, 1, 2, 6, 6), t(rng, 3, 2, 1, 3)
        check_gradients(lambda: conv2d(x, w, padding=(0, 1)), [x, w])


class TestConv1d:
    def test_output_shape(self, rng):
        out = conv1d(t(rng, 2, 3, 20), t(rng, 4, 3, 5), stride=4, padding=2)
        assert out.shape == (2, 4, 5)

    def test_gradients(self, rng):
        x, w, b = t(rng, 2, 3, 12), t(rng, 4, 3, 5), t(rng, 4)
        check_gradients(lambda: conv1d(x, w, b, stride=2, padding=2), [x, w, b])

    def test_matches_numpy_correlate(self, rng):
        x = t(rng, 1, 1, 10)
        w = t(rng, 1, 1, 3)
        out = conv1d(x, w).data[0, 0]
        ref = np.correlate(x.data[0, 0], w.data[0, 0], mode="valid")
        np.testing.assert_allclose(out, ref, atol=1e-12)


class TestConvTranspose2d:
    def test_output_shape(self, rng):
        out = conv_transpose2d(t(rng, 2, 4, 5, 5), t(rng, 4, 3, 2, 2), stride=2)
        assert out.shape == (2, 3, 10, 10)

    def test_gradients(self, rng):
        x, w, b = t(rng, 2, 3, 4, 4), t(rng, 3, 2, 2, 2), t(rng, 2)
        check_gradients(lambda: conv_transpose2d(x, w, b, stride=2), [x, w, b])

    def test_inverts_stride_structure(self, rng):
        # transpose conv of a delta spreads the kernel at the right offset
        x = Tensor(np.zeros((1, 1, 3, 3)))
        x.data[0, 0, 1, 1] = 1.0
        w = Tensor(rng.normal(size=(1, 1, 2, 2)))
        out = conv_transpose2d(x, w, stride=2).data
        np.testing.assert_allclose(out[0, 0, 2:4, 2:4], w.data[0, 0])

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            conv_transpose2d(t(rng, 1, 3, 4, 4), t(rng, 2, 3, 2, 2))


class TestPooling:
    def test_max_pool2d_shape_and_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_max_pool2d_gradients(self, rng):
        x = t(rng, 2, 3, 6, 6)
        check_gradients(lambda: max_pool2d(x, 2), [x])

    def test_max_pool2d_overlapping_gradients(self, rng):
        x = t(rng, 1, 2, 6, 6)
        check_gradients(lambda: max_pool2d(x, 3, stride=2), [x])

    def test_avg_pool2d_values(self):
        x = Tensor(np.arange(16, dtype=float).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool2d_gradients(self, rng):
        x = t(rng, 2, 3, 6, 6)
        check_gradients(lambda: avg_pool2d(x, 2), [x])

    def test_max_pool1d_gradients(self, rng):
        x = t(rng, 2, 3, 12)
        check_gradients(lambda: max_pool1d(x, 4), [x])

    def test_avg_pool1d_gradients(self, rng):
        x = t(rng, 2, 3, 12)
        check_gradients(lambda: avg_pool1d(x, 3), [x])


class TestUpsample:
    def test_values(self):
        x = Tensor([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = upsample_nearest2d(x, 2)
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(out.data[0, 0, :2, :2], [[1, 1], [1, 1]])

    def test_gradients(self, rng):
        x = t(rng, 2, 3, 3, 3)
        check_gradients(lambda: upsample_nearest2d(x, 2), [x])
