"""Property-based fuzz harness for the plan-IR trace/optimize/replay stack.

Hand-rolled (no third-party property-testing dependency): a seeded
:class:`random.Random` generates random op-DAG programs over the traced
``Tensor`` surface — elementwise chains, frozen constants (plan-constant
folding fodder), shape views (transpose / reshape / reductions), and
``traced_source`` draws that act as optimization *barriers* — and every
program is executed three ways:

* **eager** — plain interpreted ``forward`` (the reference semantics);
* **raw replay** — traced once, replayed with the optimizer disabled;
* **optimized replay** — traced once with the IR passes of
  :mod:`repro.tensor.plan_passes` enabled, then replayed.

All three must agree bit-for-bit (``equal_nan`` — a program that
deterministically manufactures a NaN must reproduce *that* NaN).  Every
path also re-scopes an identically seeded generator, so source steps
prove they re-run in the recorded order rather than being folded,
reordered, or dropped.

On failure the harness *shrinks*: instructions are deleted one at a time
while the failure reproduces, and the assertion reports the minimal
failing program plus the case seed that regenerates it.  Operand
references resolve modulo the live value count, so any deletion leaves a
well-formed program — no repair pass needed.

Budget: ``REPRO_FUZZ_PROGRAMS`` (default 40) fixes how many seeded
programs run; CI pins it explicitly so the corpus is stable run to run.
"""

import os
import random

import numpy as np

from repro.nn.module import Module
from repro.tensor import no_grad, ops
from repro.tensor import plan as plan_mod
from repro.tensor.random import scoped_rng
from repro.tensor.tensor import Tensor

N_PROGRAMS = int(os.environ.get("REPRO_FUZZ_PROGRAMS", "40"))
BASE_SHAPE = (3, 4)
MIN_LEN, MAX_LEN = 3, 14
EVAL_SEED = 1234  # the scoped generator every execution path re-seeds

# Instruction vocabulary.  Each entry is (tag, weight); generation picks
# by weight, execution dispatches on tag.  Unary/binary ops stay in the
# saturating family (no exp/log) so long random chains cannot overflow
# into platform-dependent math.
UNARY = ("neg", "sigmoid", "tanh", "relu", "abs")
BINARY = ("add", "sub", "mul")
CONST = ("addc", "mulc")
VIEW = ("transpose", "reshape", "flatten")
INSTR_WEIGHTS = (
    ("unary", 4),
    ("binary", 4),
    ("const", 2),
    ("view", 2),
    ("reduce", 1),
    ("source", 2),
)


def generate_program(case_seed: int) -> list:
    """One random instruction list; fully determined by ``case_seed``."""
    rng = random.Random(case_seed)
    length = rng.randint(MIN_LEN, MAX_LEN)
    tags = [t for t, w in INSTR_WEIGHTS for _ in range(w)]
    program = []
    for _ in range(length):
        tag = rng.choice(tags)
        if tag == "unary":
            program.append(("unary", rng.choice(UNARY), rng.randrange(64)))
        elif tag == "binary":
            program.append(
                ("binary", rng.choice(BINARY), rng.randrange(64), rng.randrange(64))
            )
        elif tag == "const":
            program.append(
                ("const", rng.choice(CONST), rng.randrange(64), rng.randrange(2**31))
            )
        elif tag == "view":
            program.append(("view", rng.choice(VIEW), rng.randrange(64)))
        elif tag == "reduce":
            program.append(("reduce", rng.randrange(64)))
        else:
            program.append(("source", rng.randrange(64)))
    return program


def _pick(vals, index):
    return vals[index % len(vals)]


def _pick_like(vals, anchor, index):
    """A previous value shaped like ``anchor`` (binary operands must match)."""
    same = [v for v in vals if v.shape == anchor.shape]
    return same[index % len(same)]


def _execute(instr, vals):
    tag = instr[0]
    if tag == "unary":
        _, op, src = instr
        v = _pick(vals, src)
        return {
            "neg": lambda t: -t,
            "sigmoid": ops.sigmoid,
            "tanh": ops.tanh,
            "relu": ops.relu,
            "abs": ops.abs_,
        }[op](v)
    if tag == "binary":
        _, op, a_idx, b_idx = instr
        a = _pick(vals, a_idx)
        b = _pick_like(vals, a, b_idx)
        return {"add": lambda x, y: x + y,
                "sub": lambda x, y: x - y,
                "mul": lambda x, y: x * y}[op](a, b)
    if tag == "const":
        _, op, src, const_seed = instr
        v = _pick(vals, src)
        # Frozen per-instruction constant: identical on every execution
        # path, captured as a plan constant (and folding fodder) by the
        # tracer.
        const = Tensor(np.random.default_rng(const_seed).normal(size=v.shape))
        return v + const if op == "addc" else v * const
    if tag == "view":
        _, kind, src = instr
        v = _pick(vals, src)
        if kind == "transpose" and v.ndim >= 2:
            return v.transpose()
        if kind == "reshape" and v.ndim >= 2:
            return v.reshape(v.shape[-1], -1)
        return v.flatten()
    if tag == "reduce":
        _, src = instr
        return _pick(vals, src).sum(axis=0, keepdims=True)
    # source: add a traced stochastic draw — a barrier the optimizer must
    # not fold, reorder, or eliminate.
    _, src = instr
    v = _pick(vals, src)
    shape = v.shape

    def draw(shape=shape):
        from repro.tensor.random import get_rng

        return get_rng().standard_normal(shape)

    return v + Tensor(plan_mod.traced_source(draw))


class FuzzProgram(Module):
    """Executes one generated instruction list as a root forward."""

    def __init__(self, program):
        super().__init__()
        self.program = program

    def forward(self, x):
        vals = [x]
        for instr in self.program:
            vals.append(_execute(instr, vals))
        # Anchor on the last value and fold in a mid-program value's sum,
        # leaving everything else dead — live DCE fodder on most programs.
        anchor = vals[-1]
        extra = vals[(len(vals) // 2) % len(vals)]
        return anchor + extra.sum()


def _input_for(case_seed: int) -> np.ndarray:
    return np.random.default_rng(case_seed ^ 0x5EED).normal(size=BASE_SHAPE)


def _run_eager(program, x):
    module = FuzzProgram(program)
    with no_grad(), scoped_rng(np.random.default_rng(EVAL_SEED)):
        return module.forward(Tensor(x.copy())).data.copy()


def _run_planned(program, x, optimize):
    """Trace once, then replay; returns (traced_out, replayed_out, stats)."""
    module = FuzzProgram(program).eval()
    with no_grad(), plan_mod.plan_execution(True, optimize=optimize):
        with scoped_rng(np.random.default_rng(EVAL_SEED)):
            traced = module(Tensor(x.copy())).data.copy()
        with scoped_rng(np.random.default_rng(EVAL_SEED)):
            replayed = module(Tensor(x.copy())).data.copy()
    return traced, replayed, plan_mod.plan_stats(module)


def _check_case(program, x):
    """Returns None if the program holds the property, else a reason."""
    try:
        eager = _run_eager(program, x)
        raw_traced, raw_replayed, raw_stats = _run_planned(program, x, False)
        opt_traced, opt_replayed, opt_stats = _run_planned(program, x, True)
    except Exception as exc:  # crashes shrink just like mismatches
        return f"raised {type(exc).__name__}: {exc}"
    for label, stats in (("raw", raw_stats), ("optimized", opt_stats)):
        if stats.replays != 1 or stats.fallbacks:
            return (
                f"{label} path did not replay (traces={stats.traces}, "
                f"replays={stats.replays}, fallbacks={stats.fallbacks})"
            )
    for label, got in (
        ("raw trace", raw_traced),
        ("raw replay", raw_replayed),
        ("optimized trace", opt_traced),
        ("optimized replay", opt_replayed),
    ):
        if not np.array_equal(eager, got, equal_nan=True):
            return f"{label} diverged from eager (max |diff| where finite)"
    return None


def _shrink(program, x, reason):
    """Greedy one-deletion shrinking: smallest program keeping *a* failure."""
    current, current_reason = list(program), reason
    progress = True
    while progress:
        progress = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if not candidate:
                continue
            candidate_reason = _check_case(candidate, x)
            if candidate_reason is not None:
                current, current_reason = candidate, candidate_reason
                progress = True
                break
    return current, current_reason


def test_fuzz_plan_replay_matches_eager():
    failures = []
    for case_seed in range(N_PROGRAMS):
        program = generate_program(case_seed)
        x = _input_for(case_seed)
        reason = _check_case(program, x)
        if reason is None:
            continue
        minimal, minimal_reason = _shrink(program, x, reason)
        failures.append(
            f"case_seed={case_seed}: {reason}\n"
            f"  minimal ({len(minimal)} instrs): {minimal}\n"
            f"  minimal failure: {minimal_reason}"
        )
    assert not failures, (
        f"{len(failures)}/{N_PROGRAMS} fuzz programs violated "
        "plan-replay identity:\n" + "\n".join(failures)
    )


def test_fuzz_generator_is_deterministic():
    """Same seed, same program — the corpus is stable across runs."""
    for case_seed in (0, 7, N_PROGRAMS - 1):
        assert generate_program(case_seed) == generate_program(case_seed)


def test_shrinker_reaches_a_minimal_program():
    """Shrinking a synthetic failure deletes every deletable instruction.

    The predicate ("program still contains a mul") stands in for a real
    divergence; greedy deletion must strip everything else and keep
    exactly the one instruction the predicate needs.
    """
    program = generate_program(3)
    program.append(("binary", "mul", 0, 0))

    def fails(candidate):
        return any(i[0] == "binary" and i[1] == "mul" for i in candidate)

    current = list(program)
    progress = True
    while progress:
        progress = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1 :]
            if candidate and fails(candidate):
                current = candidate
                progress = True
                break
    assert len(current) == 1 and current[0][1] == "mul"
