"""Tests for gradient-mode switching and RNG management."""

import numpy as np

from repro.tensor import (
    Tensor,
    enable_grad,
    get_rng,
    is_grad_enabled,
    manual_seed,
    no_grad,
    set_grad_enabled,
    spawn_rng,
)


class TestGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2.0
            z = x * 3.0
        assert y.requires_grad
        assert not z.requires_grad

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            x = Tensor([1.0], requires_grad=True)
            assert not (x * 2.0).requires_grad
        finally:
            set_grad_enabled(True)


class TestRNG:
    def test_manual_seed_reproduces_stream(self):
        manual_seed(123)
        a = get_rng().random(5)
        manual_seed(123)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rng_independent_of_global(self):
        manual_seed(0)
        r1 = spawn_rng(1)
        global_draw_before = get_rng().random()
        r2 = spawn_rng(1)
        np.testing.assert_array_equal(r1.random(3), r2.random(3))

    def test_spawn_different_tags_differ(self):
        manual_seed(0)
        a = spawn_rng(1).random(3)
        b = spawn_rng(2).random(3)
        assert not np.array_equal(a, b)

    def test_spawn_accepts_string_tag(self):
        manual_seed(0)
        a = spawn_rng("chip-7").random(3)
        b = spawn_rng("chip-7").random(3)
        np.testing.assert_array_equal(a, b)


class TestThreadIsolation:
    """Grad mode and scoped RNGs are per-thread: parallel campaign workers
    must not corrupt the main thread's autograd or random state."""

    def test_concurrent_no_grad_does_not_leak_across_threads(self):
        import threading

        # Force the lost-restore interleave of a process-global flag:
        # w1 enters no_grad, w2 enters (and with a shared flag would snap
        # previous=False), w1 exits, w2 exits last.  A shared flag ends
        # disabled; the thread-local one must stay enabled.
        w1_inside = threading.Event()
        w2_inside = threading.Event()
        w1_done = threading.Event()

        def w1():
            with no_grad():
                w1_inside.set()
                assert w2_inside.wait(5)
            w1_done.set()

        def w2():
            assert w1_inside.wait(5)
            with no_grad():
                w2_inside.set()
                assert w1_done.wait(5)
                assert not is_grad_enabled()

        threads = [threading.Thread(target=w1), threading.Thread(target=w2)]
        for t in threads:
            t.start()
        assert w1_inside.wait(5)
        assert is_grad_enabled()  # main thread unaffected mid-flight
        for t in threads:
            t.join()
        assert is_grad_enabled()

    def test_scoped_rng_is_thread_local(self):
        import threading

        from repro.tensor import scoped_rng

        manual_seed(42)
        expected = np.random.default_rng(42).random(3)
        seen = {}

        def worker():
            with scoped_rng(np.random.default_rng(7)):
                seen["worker"] = get_rng().random(3)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        # The worker's override never touched the main thread's stream.
        np.testing.assert_array_equal(get_rng().random(3), expected)
        np.testing.assert_array_equal(
            seen["worker"], np.random.default_rng(7).random(3)
        )

    def test_scoped_rng_restores_previous_override(self):
        from repro.tensor import scoped_rng

        outer = np.random.default_rng(1)
        inner = np.random.default_rng(2)
        with scoped_rng(outer):
            with scoped_rng(inner):
                assert get_rng() is inner
            assert get_rng() is outer
