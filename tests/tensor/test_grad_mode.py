"""Tests for gradient-mode switching and RNG management."""

import numpy as np

from repro.tensor import (
    Tensor,
    enable_grad,
    get_rng,
    is_grad_enabled,
    manual_seed,
    no_grad,
    set_grad_enabled,
    spawn_rng,
)


class TestGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        try:
            with no_grad():
                assert not is_grad_enabled()
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_enable_grad_inside_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with enable_grad():
                y = x * 2.0
            z = x * 3.0
        assert y.requires_grad
        assert not z.requires_grad

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_set_grad_enabled(self):
        set_grad_enabled(False)
        try:
            x = Tensor([1.0], requires_grad=True)
            assert not (x * 2.0).requires_grad
        finally:
            set_grad_enabled(True)


class TestRNG:
    def test_manual_seed_reproduces_stream(self):
        manual_seed(123)
        a = get_rng().random(5)
        manual_seed(123)
        b = get_rng().random(5)
        np.testing.assert_array_equal(a, b)

    def test_spawn_rng_independent_of_global(self):
        manual_seed(0)
        r1 = spawn_rng(1)
        global_draw_before = get_rng().random()
        r2 = spawn_rng(1)
        np.testing.assert_array_equal(r1.random(3), r2.random(3))

    def test_spawn_different_tags_differ(self):
        manual_seed(0)
        a = spawn_rng(1).random(3)
        b = spawn_rng(2).random(3)
        assert not np.array_equal(a, b)

    def test_spawn_accepts_string_tag(self):
        manual_seed(0)
        a = spawn_rng("chip-7").random(3)
        b = spawn_rng("chip-7").random(3)
        np.testing.assert_array_equal(a, b)
