"""Unit tests for Tensor construction, introspection and graph mechanics."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, zeros, ones


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_numpy_shares_dtype_upcast(self):
        t = Tensor(np.array([1, 2], dtype=np.int32))
        assert t.dtype == np.float64

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_item_nonscalar_raises(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_len_and_size(self):
        t = Tensor(np.zeros((4, 5)))
        assert len(t) == 4
        assert t.size == 20
        assert t.ndim == 2

    def test_zeros_ones_helpers(self):
        assert np.all(zeros(2, 3).data == 0)
        assert np.all(ones(2, 3).data == 1)
        assert zeros(2, requires_grad=True).requires_grad

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestGraphMechanics:
    def test_backward_scalar_default_seed(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0, 6.0])

    def test_backward_nonscalar_without_grad_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_backward_grad_shape_mismatch_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 3.0).backward(np.array([1.0]))

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_shared_subexpression_gradient(self):
        # y = x*x used twice; d/dx (x^2 + x^2) = 4x
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_diamond_graph(self):
        x = Tensor([2.0], requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        (a * b).sum().backward()
        # d/dx 15x^2 = 30x
        np.testing.assert_allclose(x.grad, [60.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad
        z = y * 3.0
        assert not z.requires_grad

    def test_clone_is_differentiable_copy(self):
        x = Tensor([2.0], requires_grad=True)
        y = x.clone()
        assert y.data is not x.data
        (y * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0])

    def test_no_grad_blocks_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_constant_operand_gets_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (x * c).sum().backward()
        assert c.grad is None

    def test_interior_node_grad_not_retained(self):
        x = Tensor([1.0], requires_grad=True)
        mid = x * 2.0
        (mid * 3.0).sum().backward()
        assert mid.grad is None
        np.testing.assert_allclose(x.grad, [6.0])


class TestComparisons:
    def test_comparisons_return_numpy_bool(self):
        a = Tensor([1.0, 2.0, 3.0])
        res = a > 1.5
        assert isinstance(res, np.ndarray)
        np.testing.assert_array_equal(res, [False, True, True])
        np.testing.assert_array_equal(a >= 2.0, [False, True, True])
        np.testing.assert_array_equal(a < 2.0, [True, False, False])
        np.testing.assert_array_equal(a <= 1.0, [True, False, False])
