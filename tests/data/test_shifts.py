"""Tests for the OOD distribution-shift transforms."""

import numpy as np

from repro.data import (
    ROTATION_STAGES,
    ROTATION_STEP_DEGREES,
    add_uniform_noise,
    noise_stages,
    rotate_images,
    rotation_stages,
)


class TestRotation:
    def test_zero_rotation_is_copy(self, rng):
        images = rng.normal(size=(3, 2, 8, 8))
        out = rotate_images(images, 0.0)
        np.testing.assert_array_equal(out, images)
        assert out is not images

    def test_shape_preserved(self, rng):
        images = rng.normal(size=(3, 2, 8, 8))
        assert rotate_images(images, 30.0).shape == images.shape

    def test_ninety_degrees_matches_rot90(self, rng):
        images = rng.normal(size=(1, 1, 9, 9))
        rotated = rotate_images(images, 90.0)
        expected = np.rot90(images[0, 0], k=-1)  # scipy rotates clockwise here
        alt = np.rot90(images[0, 0], k=1)
        err1 = np.abs(rotated[0, 0] - expected).mean()
        err2 = np.abs(rotated[0, 0] - alt).mean()
        assert min(err1, err2) < 1e-8

    def test_rotation_changes_content(self, rng):
        images = rng.normal(size=(2, 1, 8, 8))
        assert not np.allclose(rotate_images(images, 45.0), images)

    def test_schedule_matches_paper(self):
        stages = rotation_stages()
        assert len(stages) == ROTATION_STAGES + 1
        assert stages[0] == 0.0
        assert stages[1] == ROTATION_STEP_DEGREES == 7.0
        assert stages[-1] == 84.0


class TestUniformNoise:
    def test_zero_strength_is_copy(self, rng):
        x = rng.normal(size=(4, 3))
        out = add_uniform_noise(x, 0.0)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_noise_bounded(self, rng):
        x = np.zeros((100, 100))
        out = add_uniform_noise(x, 0.3, rng=rng)
        assert np.abs(out).max() <= 0.3

    def test_schedule_starts_clean(self):
        stages = noise_stages(max_strength=1.0, stages=10)
        assert stages[0] == 0.0 and stages[-1] == 1.0 and len(stages) == 11
