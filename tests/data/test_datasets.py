"""Tests for dataset containers and synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    co2_series,
    generate_image,
    generate_vessel_sample,
    generate_waveform,
    make_audio_task,
    make_co2_task,
    make_forecast_windows,
    make_image_task,
    make_vessel_task,
)


class TestArrayDataset:
    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_indexing(self):
        ds = ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6))
        x, y = ds[2]
        np.testing.assert_array_equal(x, [4, 5])
        assert y == 2

    def test_subset(self):
        ds = ArrayDataset(np.arange(12).reshape(6, 2), np.arange(6))
        sub = ds.subset(np.array([1, 3]))
        assert len(sub) == 2
        np.testing.assert_array_equal(sub.targets, [1, 3])

    def test_split_fractions(self):
        ds = ArrayDataset(np.zeros((100, 1)), np.arange(100))
        train, test = ds.split(0.8)
        assert len(train) == 80 and len(test) == 20
        assert set(train.targets) | set(test.targets) == set(range(100))
        assert not set(train.targets) & set(test.targets)

    def test_split_invalid_fraction(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        with pytest.raises(ValueError):
            ds.split(1.0)

    def test_tensors(self):
        ds = ArrayDataset(np.ones((4, 2)), np.arange(4))
        x, y = ds.tensors()
        assert x.shape == (4, 2)


class TestDataLoader:
    def test_covers_all_samples(self):
        ds = ArrayDataset(np.arange(10).reshape(10, 1), np.arange(10))
        loader = DataLoader(ds, batch_size=3, shuffle=False)
        seen = np.concatenate([y for _, y in loader])
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_batch_count(self):
        ds = ArrayDataset(np.zeros((10, 1)), np.zeros(10))
        assert len(DataLoader(ds, batch_size=3)) == 4

    def test_shuffle_changes_order(self):
        ds = ArrayDataset(np.arange(50).reshape(50, 1), np.arange(50))
        loader = DataLoader(ds, batch_size=50, shuffle=True)
        first = next(iter(loader))[1]
        assert not np.array_equal(first, np.arange(50))


class TestImageDataset:
    def test_image_shape_and_determinism(self):
        rng = np.random.default_rng(0)
        img = generate_image(3, 16, rng)
        assert img.shape == (3, 16, 16)
        rng2 = np.random.default_rng(0)
        np.testing.assert_array_equal(img, generate_image(3, 16, rng2))

    def test_task_is_balanced(self):
        train, test = make_image_task(n_train_per_class=5, n_test_per_class=2, size=8)
        assert len(train) == 50 and len(test) == 20
        counts = np.bincount(train.targets, minlength=10)
        np.testing.assert_array_equal(counts, 5)

    def test_classes_are_distinguishable(self):
        """Class means must differ — otherwise the task is unlearnable."""
        train, _ = make_image_task(n_train_per_class=20, n_test_per_class=1, size=12)
        means = np.stack(
            [train.inputs[train.targets == c].mean(axis=0).ravel() for c in range(10)]
        )
        dists = np.linalg.norm(means[:, None] - means[None, :], axis=-1)
        off_diag = dists[~np.eye(10, dtype=bool)]
        assert off_diag.min() > 0.5

    def test_intra_class_variation_exists(self):
        rng = np.random.default_rng(0)
        a = generate_image(0, 12, rng)
        b = generate_image(0, 12, rng)
        assert not np.allclose(a, b)

    def test_train_test_disjoint_draws(self):
        train, test = make_image_task(n_train_per_class=3, n_test_per_class=3, size=8)
        assert not np.array_equal(train.inputs[:10], test.inputs[:10])


class TestAudioDataset:
    def test_waveform_shape(self):
        rng = np.random.default_rng(0)
        for label in range(10):
            wave = generate_waveform(label, 128, rng)
            assert wave.shape == (1, 128)
            assert np.isfinite(wave).all()

    def test_task_sizes(self):
        train, test = make_audio_task(n_train_per_class=4, n_test_per_class=2, length=64)
        assert len(train) == 40 and len(test) == 20
        assert train.inputs.shape[1:] == (1, 64)

    def test_classes_have_distinct_spectra(self):
        rng = np.random.default_rng(0)
        spectra = []
        for label in [2, 3]:  # low tone vs high tone
            waves = np.stack(
                [generate_waveform(label, 256, rng, noise=0.0) for _ in range(10)]
            )
            spectra.append(np.abs(np.fft.rfft(waves[:, 0])).mean(axis=0))
        low_peak = spectra[0].argmax()
        high_peak = spectra[1].argmax()
        assert high_peak > low_peak


class TestCO2Dataset:
    def test_series_has_trend(self):
        series = co2_series(240, noise=0.0)
        assert series[-1] > series[0] + 10

    def test_series_has_annual_cycle(self):
        series = co2_series(480, noise=0.0)
        detrended = series - np.poly1d(np.polyfit(np.arange(480), series, 2))(
            np.arange(480)
        )
        spectrum = np.abs(np.fft.rfft(detrended))
        annual_bin = 480 // 12
        assert spectrum[annual_bin] == spectrum[1:].max()

    def test_forecast_windows_shapes(self):
        x, y = make_forecast_windows(np.arange(30.0), 5)
        assert x.shape == (25, 5, 1)
        np.testing.assert_array_equal(y, np.arange(5.0, 30.0))

    def test_window_too_long_raises(self):
        with pytest.raises(ValueError):
            make_forecast_windows(np.arange(5.0), 10)

    def test_task_split_is_chronological(self):
        task = make_co2_task(n_months=120, window=12, noise=0.0)
        # Later test targets (trend) exceed train targets on average.
        assert task.test.targets.mean() > task.train.targets.mean()

    def test_normalization_statistics_from_train(self):
        task = make_co2_task(n_months=240, window=12)
        denorm = task.denormalize(task.train.targets)
        assert 300 < denorm.mean() < 400  # ppm range

    def test_targets_follow_windows(self):
        task = make_co2_task(n_months=120, window=12)
        np.testing.assert_allclose(
            task.train.inputs[1, -1, 0], task.train.targets[0], atol=1e-12
        )


class TestVesselDataset:
    def test_sample_shapes(self):
        rng = np.random.default_rng(0)
        image, mask = generate_vessel_sample(32, rng)
        assert image.shape == (1, 32, 32)
        assert mask.shape == (32, 32)
        assert set(np.unique(mask)) <= {0.0, 1.0}

    def test_vessels_occupy_reasonable_fraction(self):
        rng = np.random.default_rng(0)
        fractions = [generate_vessel_sample(32, rng)[1].mean() for _ in range(10)]
        assert 0.01 < np.mean(fractions) < 0.5

    def test_vessels_darker_than_background(self):
        rng = np.random.default_rng(0)
        image, mask = generate_vessel_sample(32, rng, noise=0.0)
        vessel_mean = image[0][mask == 1].mean()
        background_mean = image[0][mask == 0].mean()
        assert vessel_mean < background_mean

    def test_task_sizes(self):
        train, test = make_vessel_task(n_train=4, n_test=2, size=16)
        assert len(train) == 4 and len(test) == 2
        assert train.targets.shape == (4, 16, 16)
