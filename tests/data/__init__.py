"""Test package."""
