"""Shared fixtures: deterministic seeding for every test."""

import numpy as np
import pytest

from repro.tensor import manual_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    manual_seed(1234)
    yield


@pytest.fixture
def rng():
    return np.random.default_rng(99)
