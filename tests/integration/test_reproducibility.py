"""Reproducibility guarantees: seeds pin every stochastic component."""

import numpy as np
import pytest

from repro.core import InvertedNorm
from repro.data import make_audio_dataset, make_image_dataset
from repro.eval import build_task
from repro.faults import FaultInjector, FaultSpec
from repro.models import ResNet18, proposed
from repro.tensor import Tensor, manual_seed


class TestConstructionReproducibility:
    def test_model_construction_pinned_by_seed(self):
        manual_seed(11)
        a = ResNet18(proposed(), base_width=8)
        manual_seed(11)
        b = ResNet18(proposed(), base_width=8)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_different_seeds_give_different_models(self):
        manual_seed(1)
        a = InvertedNorm(32)
        manual_seed(2)
        b = InvertedNorm(32)
        assert not np.array_equal(a.weight.data, b.weight.data)

    def test_dataset_generation_pinned_by_seed(self):
        manual_seed(5)
        a = make_image_dataset(n_per_class=3, size=8)
        manual_seed(5)
        b = make_image_dataset(n_per_class=3, size=8)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.targets, b.targets)

    def test_audio_generation_pinned_by_seed(self):
        manual_seed(5)
        a = make_audio_dataset(n_per_class=2, length=64)
        manual_seed(5)
        b = make_audio_dataset(n_per_class=2, length=64)
        np.testing.assert_array_equal(a.inputs, b.inputs)


class TestTrainingReproducibility:
    def test_identical_training_runs(self):
        task1 = build_task("audio", preset="tiny", seed=3)
        model1 = task1.train_model(proposed(), seed=3)
        task2 = build_task("audio", preset="tiny", seed=3)
        model2 = task2.train_model(proposed(), seed=3)
        for (_, pa), (_, pb) in zip(
            model1.named_parameters(), model2.named_parameters()
        ):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_task_seed_changes_data(self):
        a = build_task("audio", preset="tiny", seed=1)
        b = build_task("audio", preset="tiny", seed=2)
        assert not np.array_equal(a.train_set.inputs, b.train_set.inputs)


class TestFaultReproducibility:
    def test_same_chip_rng_same_faulty_output(self):
        manual_seed(0)
        model = ResNet18(proposed(), base_width=8)
        model.eval()
        rng = np.random.default_rng(9)
        x = Tensor(rng.normal(size=(2, 3, 12, 12)))
        injector = FaultInjector(model)
        spec = FaultSpec(kind="bitflip", level=0.2)

        injector.attach(spec, np.random.default_rng(4))
        a = model(x).data.copy()
        injector.detach()
        injector.attach(spec, np.random.default_rng(4))
        b = model(x).data.copy()
        injector.detach()
        np.testing.assert_array_equal(a, b)

    def test_different_chip_rng_different_output(self):
        manual_seed(0)
        model = ResNet18(proposed(), base_width=8)
        model.eval()
        x = Tensor(np.random.default_rng(9).normal(size=(2, 3, 12, 12)))
        injector = FaultInjector(model)
        spec = FaultSpec(kind="bitflip", level=0.2)
        outputs = []
        for chip in range(2):
            injector.attach(spec, np.random.default_rng(chip))
            outputs.append(model(x).data.copy())
            injector.detach()
        assert not np.array_equal(outputs[0], outputs[1])
