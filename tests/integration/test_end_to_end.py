"""Integration tests: full train → deploy → fault-campaign pipelines."""

import numpy as np
import pytest

from repro.core import BayesianClassifier, enable_stochastic_inference
from repro.eval import build_task, make_evaluator
from repro.eval.evaluators import (
    classification_accuracy,
    regression_rmse,
    segmentation_miou,
)
from repro.faults import FaultSpec, MonteCarloCampaign, bitflip_sweep
from repro.models import all_methods, conventional, proposed
from repro.tensor import Tensor, manual_seed


class TestTrainingAcrossMethods:
    """Every method must train on every task without errors (tiny scale)."""

    @pytest.mark.parametrize("task_name", ["image", "audio", "co2", "vessels"])
    @pytest.mark.parametrize(
        "method_name", ["conventional", "spindrop", "spatial-spindrop", "proposed"]
    )
    def test_train_and_evaluate(self, task_name, method_name):
        from repro.models import MethodConfig

        method = MethodConfig(name=method_name)
        task = build_task(task_name, preset="tiny")
        model = task.train_model(method, seed=0)
        evaluator = make_evaluator(task.name, task.test_set, method, mc_samples=2)
        value = evaluator(model)
        assert np.isfinite(value)
        if task.metric_name in ("accuracy", "mIoU"):
            assert 0.0 <= value <= 1.0


class TestLearnability:
    """On a slightly larger budget the proposed method must actually learn."""

    def test_audio_learns_above_chance(self):
        task = build_task("audio", preset="tiny")
        bigger = build_task("audio", preset="tiny")
        # Train longer than the tiny default to verify learning dynamics.
        bigger.epochs = 12
        model = bigger.train_model(proposed(), seed=0)
        acc = classification_accuracy(model, task.test_set, proposed(), mc_samples=4)
        assert acc > 0.2  # 10 classes, chance = 0.1

    def test_co2_beats_trivial_persistence_forecast(self):
        task = build_task("co2", preset="tiny")
        task.epochs = 12
        model = task.train_model(proposed(), seed=0)
        value = regression_rmse(model, task.test_set, proposed(), mc_samples=4)
        persistence = np.sqrt(
            ((task.test_set.inputs[:, -1, 0] - task.test_set.targets) ** 2).mean()
        )
        assert value < persistence * 1.5


class TestFaultPipeline:
    def test_campaign_on_trained_binary_model(self):
        manual_seed(0)
        task = build_task("image", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        evaluator = make_evaluator("image", task.test_set, proposed(), mc_samples=2)
        campaign = MonteCarloCampaign(model, evaluator, n_runs=3, base_seed=1)
        results = campaign.sweep(bitflip_sweep([0.0, 0.4]))
        clean, faulty = results[0].mean, results[1].mean
        assert np.isfinite(clean) and np.isfinite(faulty)
        # 40% bit flips on a binary net must not *improve* accuracy.
        assert faulty <= clean + 0.15

    def test_fault_hooks_do_not_leak_between_methods(self):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        evaluator = make_evaluator("audio", task.test_set, proposed(), mc_samples=2)
        clean_before = evaluator(model)
        campaign = MonteCarloCampaign(model, evaluator, n_runs=2, base_seed=0)
        campaign.run(FaultSpec(kind="additive", level=0.5))
        clean_after = evaluator(model)
        # Stochastic MC sampling differs slightly, but no fault residue.
        assert abs(clean_before - clean_after) < 0.35

    def test_variation_campaign_on_lstm(self):
        manual_seed(0)
        task = build_task("co2", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        evaluator = make_evaluator("co2", task.test_set, proposed(), mc_samples=2)
        campaign = MonteCarloCampaign(model, evaluator, n_runs=3, base_seed=0)
        clean = campaign.run(FaultSpec(kind="none", level=0.0)).mean
        noisy = campaign.run(FaultSpec(kind="multiplicative", level=0.6), 1).mean
        assert noisy >= clean * 0.8  # RMSE should not magically improve much

    def test_segmentation_campaign(self):
        manual_seed(0)
        task = build_task("vessels", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        evaluator = make_evaluator("vessels", task.test_set, proposed(), mc_samples=2)
        campaign = MonteCarloCampaign(model, evaluator, n_runs=2, base_seed=0)
        result = campaign.run(FaultSpec(kind="bitflip", level=0.2), 1)
        assert 0.0 <= result.mean <= 1.0


class TestBayesianPipeline:
    def test_mc_prediction_seed_reproducible(self):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        clf = BayesianClassifier(model, num_samples=4)
        x = Tensor(task.test_set.inputs[:8])
        manual_seed(77)
        a = clf.predict_proba(x)
        manual_seed(77)
        b = clf.predict_proba(x)
        np.testing.assert_array_equal(a, b)

    def test_stochastic_flag_restored_after_prediction(self):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        clf = BayesianClassifier(model, num_samples=2)
        clf.predict(Tensor(task.test_set.inputs[:4]))
        from repro.nn import StochasticModule

        flags = [
            m.stochastic_inference
            for m in model.modules()
            if isinstance(m, StochasticModule)
        ]
        assert not any(flags)

    def test_conventional_model_is_deterministic_at_eval(self):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(conventional(), seed=0)
        model.eval()
        from repro.tensor import no_grad

        x = Tensor(task.test_set.inputs[:4])
        with no_grad():
            np.testing.assert_array_equal(model(x).data, model(x).data)


class TestCheckpointing:
    def test_trained_model_round_trips_through_disk(self, tmp_path):
        manual_seed(0)
        task = build_task("audio", preset="tiny")
        model = task.train_model(proposed(), seed=0)
        path = str(tmp_path / "model.npz")
        model.save(path)
        clone = task.build_model(proposed(), seed=0)
        clone.load(path)
        x = Tensor(task.test_set.inputs[:4])
        model.eval()
        clone.eval()
        from repro.tensor import no_grad

        with no_grad():
            np.testing.assert_allclose(model(x).data, clone(x).data)
