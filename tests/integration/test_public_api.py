"""Public-API surface tests: imports, exports and docstrings."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.tensor",
    "repro.nn",
    "repro.quant",
    "repro.core",
    "repro.faults",
    "repro.imc",
    "repro.data",
    "repro.models",
    "repro.baselines",
    "repro.train",
    "repro.uncertainty",
    "repro.eval",
]


class TestImports:
    def test_top_level_import(self):
        import repro

        assert repro.__version__

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} needs a module docstring"

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.{symbol} in __all__ but missing"

    def test_headline_symbols_at_top_level(self):
        import repro

        for symbol in (
            "Tensor",
            "manual_seed",
            "InvertedNorm",
            "BayesianClassifier",
            "BayesianRegressor",
        ):
            assert hasattr(repro, symbol)


class TestDocstrings:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_classes_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if isinstance(obj, type) and not obj.__doc__:
                undocumented.append(symbol)
        assert not undocumented, f"{name}: classes without docstrings: {undocumented}"


class TestBaselinesFacade:
    def test_baselines_reexport_methods(self):
        from repro import baselines
        from repro.models import MethodConfig

        assert isinstance(baselines.spindrop(), MethodConfig)
        assert isinstance(baselines.spatial_spindrop(), MethodConfig)
        assert isinstance(baselines.conventional(), MethodConfig)
        names = [m.name for m in baselines.all_methods()]
        assert names == [
            "conventional",
            "spindrop",
            "spatial-spindrop",
            "proposed",
        ]

    def test_quickstart_snippet_from_readme(self):
        """The README quickstart must actually run."""
        import numpy as np

        from repro import nn
        from repro.core import BayesianClassifier, InvertedNorm
        from repro.tensor import Tensor

        model = nn.Sequential(
            nn.Linear(16, 64),
            InvertedNorm(64, p=0.3),
            nn.ReLU(),
            nn.Linear(64, 10),
        )
        clf = BayesianClassifier(model, num_samples=10)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 16)))
        probs = clf.predict_proba(x)
        assert probs.shape == (4, 10)
        assert clf.per_input_nll(x).shape == (4,)
