"""Failure-injection tests: the library must fail loudly and precisely."""

import numpy as np
import pytest

from repro import nn
from repro.core import BayesianClassifier, InvertedNorm
from repro.data import ArrayDataset
from repro.faults import FaultSpec
from repro.imc import CrossbarArray, CrossbarConfig
from repro.models import MethodConfig, UNet
from repro.quant.functional import QuantizedWeight
from repro.tensor import Tensor
from repro.train import Adam, SGD, Trainer, cross_entropy


class TestShapeErrors:
    def test_inverted_norm_wrong_channels(self, rng):
        layer = InvertedNorm(8)
        with pytest.raises(ValueError, match="channels"):
            layer(Tensor(rng.normal(size=(2, 4, 3, 3))))

    def test_conv_channel_mismatch_names_sizes(self, rng):
        conv = nn.Conv2d(3, 4, 3)
        with pytest.raises(ValueError, match="3"):
            conv(Tensor(rng.normal(size=(1, 5, 8, 8))))

    def test_dataset_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            ArrayDataset(np.zeros((2, 1)), np.zeros(3))

    def test_crossbar_input_width(self, rng):
        qw = QuantizedWeight(
            codes=np.ones((4, 8)), scale=np.asarray(1.0), bits=8
        )
        arr = CrossbarArray(qw, CrossbarConfig.ideal(), rng)
        with pytest.raises(ValueError, match="8"):
            arr.matvec(np.zeros((1, 5)))


class TestConfigurationErrors:
    def test_unknown_fault_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="gamma-rays", level=0.1)

    def test_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            MethodConfig(name="mystery")

    def test_unet_width_validation(self):
        from repro.models import proposed

        with pytest.raises(ValueError, match="multiple of 8"):
            UNet(proposed(), base_width=12)

    def test_optimizer_empty_params(self):
        with pytest.raises(ValueError, match="no parameters"):
            SGD([], lr=0.1)

    def test_bayesian_zero_samples(self):
        with pytest.raises(ValueError, match="num_samples"):
            BayesianClassifier(nn.Identity(), num_samples=0)


class TestNumericalRobustness:
    def test_inverted_norm_constant_input_finite(self):
        """A constant feature map (zero variance) must not produce NaNs."""
        layer = InvertedNorm(4, p=0.0)
        layer.eval()
        out = layer(Tensor(np.full((2, 4, 3, 3), 7.0)))
        assert np.isfinite(out.data).all()

    def test_cross_entropy_huge_logits_finite(self):
        logits = Tensor(np.array([[1e6, -1e6, 0.0]]), requires_grad=True)
        loss = cross_entropy(logits, np.array([0]))
        assert np.isfinite(loss.item())
        loss.backward()
        assert np.isfinite(logits.grad).all()

    def test_training_on_constant_features_does_not_nan(self):
        ds = ArrayDataset(np.zeros((16, 4)), np.zeros(16, dtype=np.int64))
        model = nn.Sequential(nn.Linear(4, 8), InvertedNorm(8, p=0.3), nn.Linear(8, 2))
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-2), cross_entropy)
        history = trainer.fit(ds, epochs=3, batch_size=8)
        assert np.isfinite(history.loss).all()

    def test_quantizing_all_zero_weights(self, rng):
        from repro.quant import QuantLinear

        layer = QuantLinear(4, 2, weight_bits=8)
        layer.weight.data[:] = 0.0
        out = layer(Tensor(rng.normal(size=(2, 4))))
        assert np.isfinite(out.data).all()

    def test_extreme_fault_levels_still_finite(self, rng):
        from repro.faults import BitFlipFault
        qw = QuantizedWeight(
            codes=rng.integers(-127, 128, size=(8, 8)).astype(float),
            scale=np.asarray(0.01),
            bits=8,
        )
        flipped = BitFlipFault(1.0, np.random.default_rng(0))(qw)
        assert np.isfinite(flipped).all()
        assert np.abs(flipped).max() <= 127
