"""Test package."""
